#!/usr/bin/env python
"""Dependency-free function-coverage gate for ``make cov``.

The container this repo targets has no ``coverage.py``; this tool fills
the gap with the stdlib only.  A ``sys.setprofile`` hook records every
function *called* under ``src/repro`` while the tier-1 pytest suite runs
in-process; the set of functions *defined* comes from compiling every
source file and walking its code objects.  Coverage is the quotient.

Function coverage is coarser than line coverage, but it is exact, has no
dependencies, and catches the regression that matters at this repo's
scale: a subsystem silently falling out of the test net.  When a real
``coverage.py`` is available, prefer it -- ``pyproject.toml`` carries a
``[tool.coverage]`` configuration for exactly that case, and this tool
defers to it with ``--prefer-coverage-py``.

Usage:
    PYTHONPATH=src python tools/funccov.py [--fail-under PCT] [pytest args]

Exit status: pytest's if the suite fails, else 0/1 on the threshold.
Writes ``.funccov.json`` (gitignored) with the full per-module table.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
PKG = os.path.join(SRC, "repro")

sys.path.insert(0, SRC)

#: Synthetic code-object names that are not functions worth counting.
_SKIP_NAMES = ("<module>", "<lambda>", "<genexpr>", "<listcomp>",
               "<setcomp>", "<dictcomp>")


def defined_functions() -> set[tuple[str, str, int]]:
    """Every function/method defined under ``src/repro``, as
    (relative path, qualname, first line)."""
    out: set[tuple[str, str, int]] = set()
    for dirpath, _dirnames, filenames in os.walk(PKG):
        for fn in filenames:
            if not fn.endswith(".py"):
                continue
            path = os.path.join(dirpath, fn)
            with open(path, "r") as fh:
                try:
                    code = compile(fh.read(), path, "exec")
                except SyntaxError:  # pragma: no cover - repo must compile
                    continue
            rel = os.path.relpath(path, ROOT)
            stack = [code]
            while stack:
                co = stack.pop()
                for const in co.co_consts:
                    if hasattr(const, "co_code"):
                        stack.append(const)
                if co.co_name not in _SKIP_NAMES:
                    out.add((rel, co.co_qualname, co.co_firstlineno))
    return out


def run_suite_with_profile(pytest_args: list[str]) -> tuple[int, set]:
    """Run pytest in-process with a call profiler; returns (exit code,
    set of called functions keyed like :func:`defined_functions`)."""
    import pytest

    called: set[tuple[str, str, int]] = set()
    prefix = PKG + os.sep

    def profiler(frame, event, arg):
        if event == "call":
            co = frame.f_code
            path = co.co_filename
            if path.startswith(prefix) or path == PKG:
                called.add((os.path.relpath(path, ROOT), co.co_qualname,
                            co.co_firstlineno))

    threading.setprofile(profiler)
    sys.setprofile(profiler)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.setprofile(None)
        threading.setprofile(None)
    return rc, called


def report(defined: set, called: set, fail_under: float) -> int:
    covered = defined & called
    # Functions seen at runtime but missing from the static walk (e.g.
    # decorators synthesising code) still count toward the numerator of
    # their module, not the denominator.
    by_module: dict[str, list[int]] = {}
    for rel, _q, _l in defined:
        by_module.setdefault(rel, [0, 0])[1] += 1
    for rel, _q, _l in covered:
        by_module[rel][0] += 1

    pct = 100.0 * len(covered) / len(defined) if defined else 100.0
    width = max(len(m) for m in by_module)
    print(f"\n{'module':<{width}}  funcs  covered      %")
    print("-" * (width + 26))
    for rel in sorted(by_module):
        got, total = by_module[rel]
        mark = "" if got == total else ("  <-- uncovered" if got == 0 else "")
        print(f"{rel:<{width}}  {total:5d}  {got:7d}  {100.0 * got / total:5.1f}{mark}")
    print("-" * (width + 26))
    print(f"{'TOTAL':<{width}}  {len(defined):5d}  {len(covered):7d}  {pct:5.1f}")

    with open(os.path.join(ROOT, ".funccov.json"), "w") as fh:
        json.dump(
            {
                "percent": round(pct, 2),
                "functions": len(defined),
                "covered": len(covered),
                "fail_under": fail_under,
                "modules": {
                    m: {"functions": t, "covered": g,
                        "percent": round(100.0 * g / t, 2)}
                    for m, (g, t) in sorted(by_module.items())
                },
            },
            fh, indent=2,
        )
        fh.write("\n")

    if pct < fail_under:
        print(f"\nFAIL: function coverage {pct:.1f}% < required {fail_under:.1f}%")
        return 1
    print(f"\nOK: function coverage {pct:.1f}% >= required {fail_under:.1f}%")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fail-under", type=float, default=85.0,
                    help="minimum function coverage percent (default 85)")
    ap.add_argument("--prefer-coverage-py", action="store_true",
                    help="delegate to coverage.py when it is installed")
    ap.add_argument("pytest_args", nargs="*",
                    help="extra pytest arguments (default: tier-1 tests/)")
    args = ap.parse_args(argv)

    if args.prefer_coverage_py:
        try:
            import coverage  # noqa: F401
        except ImportError:
            pass
        else:
            os.execvp(sys.executable, [
                sys.executable, "-m", "coverage", "run", "-m", "pytest",
                *(args.pytest_args or ["tests"]),
            ])

    pytest_args = args.pytest_args or ["tests", "-q"]
    defined = defined_functions()
    rc, called = run_suite_with_profile(pytest_args)
    if rc not in (0, None):
        print(f"\npytest exited with {rc}; coverage not evaluated")
        return int(rc)
    return report(defined, called, args.fail_under)


if __name__ == "__main__":
    raise SystemExit(main())
