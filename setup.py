"""Setup shim for environments without the `wheel` package.

Metadata lives in pyproject.toml; this file only enables pip's legacy
editable-install path (`pip install -e .`) in offline environments where
PEP 660 editable wheels cannot be built.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "OC-Bcast: RMA-based broadcast on a simulated Intel SCC "
        "(reproduction of Petrovic et al., SPAA 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
