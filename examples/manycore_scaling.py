#!/usr/bin/env python
"""Scale OC-Bcast past the SCC: the 1000-core chips the paper anticipates.

The simulator's mesh is parametric, so we grow it from the SCC's 6x4
(48 cores) to 16x16 tiles (512 cores) and 16x32 (1024 cores), compare
OC-Bcast against the binomial baseline at each scale, and show the k
trade-off shifting: deeper meshes reward larger fan-out (up to the MPB
contention threshold of ~24 concurrent getters, Section 3.3).

Run:  python examples/manycore_scaling.py   (takes a minute or two)
"""

from repro.bench import BcastSpec, format_table, run_broadcast
from repro.scc import SccConfig

MESHES = [
    ("SCC 6x4", SccConfig()),
    ("8x8", SccConfig(mesh_cols=8, mesh_rows=8)),
    ("16x16", SccConfig(mesh_cols=16, mesh_rows=16)),
    ("16x32", SccConfig(mesh_cols=16, mesh_rows=32)),
]

NCL = 96  # one full chunk


def main() -> None:
    rows = []
    for label, cfg in MESHES:
        cores = cfg.num_cores
        oc7 = run_broadcast(BcastSpec("oc", k=7), NCL * 32, config=cfg,
                            iters=1, warmup=1)
        oc16 = run_broadcast(BcastSpec("oc", k=16), NCL * 32, config=cfg,
                             iters=1, warmup=1)
        binom = run_broadcast(BcastSpec("binomial"), NCL * 32, config=cfg,
                              iters=1, warmup=1)
        assert oc7.verified and oc16.verified and binom.verified
        rows.append(
            [
                f"{label} ({cores})",
                oc7.mean_latency,
                oc16.mean_latency,
                binom.mean_latency,
                binom.mean_latency / min(oc7.mean_latency, oc16.mean_latency),
            ]
        )
        print(f"done {label} ({cores} cores)")

    print()
    print(
        format_table(
            ["mesh (cores)", "OC k=7 (us)", "OC k=16 (us)", "binomial (us)", "win"],
            rows,
            title=f"{NCL}-cache-line broadcast latency vs chip size",
        )
    )
    print(
        "\nOC-Bcast's advantage persists at 1024 cores: its critical path "
        "keeps exactly\ntwo off-chip memory passes, while the binomial tree "
        "pays one per tree level."
    )


if __name__ == "__main__":
    main()
