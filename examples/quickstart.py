#!/usr/bin/env python
"""Quickstart: broadcast a message across the simulated SCC with OC-Bcast.

Builds the default 48-core chip, broadcasts a 12 KB message from core 0's
private memory to every other core's private memory, verifies the bytes,
and prints the latency on the chip's global clock -- the paper's basic
experiment in a dozen lines of user code.

Run:  python examples/quickstart.py
"""

from repro import Comm, OcBcast, SccChip, run_spmd


def main() -> None:
    chip = SccChip()  # 6x4 mesh, 48 cores, Table 1 timing
    comm = Comm(chip)  # all cores, ranks 0..47
    oc = OcBcast(comm)  # k=7, 96-line chunks, double buffering

    message = b"The Intel SCC says hello from all 48 cores! " * 280  # ~12 KB

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(len(message))
        if cc.rank == 0:
            buf.write(message)
        yield from oc.bcast(cc, root=0, buf=buf, nbytes=len(message))
        return buf.read()

    result = run_spmd(chip, program)

    assert all(v == message for v in result.values), "payload mismatch!"
    mb_s = len(message) / result.makespan
    print(f"broadcast {len(message)} bytes to {chip.num_cores} cores")
    print(f"latency   {result.makespan:10.2f} us (root call -> last core done)")
    print(f"rate      {mb_s:10.2f} MB/s")
    print(f"first core finished at {min(result.finish_times):.2f} us, "
          f"last at {max(result.finish_times):.2f} us")


if __name__ == "__main__":
    main()
