#!/usr/bin/env python
"""A realistic SPMD application mixing the library's collectives.

Models the inner loop of a data-parallel solver on the SCC -- the kind of
MPI-style workload the paper's introduction motivates:

1. the root *broadcasts* a parameter block (OC-Bcast),
2. every core computes on its shard (plain local work),
3. a global residual is *reduced* to the root (OC-Reduce),
4. everyone synchronises at a *barrier* (OC-Barrier),

repeated for several iterations, with the two-sided RCCE_comm versions
run side by side for comparison.

Run:  python examples/collective_pipeline.py
"""

import numpy as np

from repro import (
    BarrierState,
    Comm,
    OcBarrier,
    OcBcast,
    OcBcastConfig,
    OcReduce,
    ReduceOp,
    SccChip,
    binomial_bcast,
    binomial_reduce,
    dissemination_barrier,
    run_spmd,
)

ITERATIONS = 4
PARAM_BYTES = 96 * 32 * 2      # two chunks of parameters
RESIDUAL_BYTES = 48 * 8        # 48 doubles
COMPUTE_US = 50.0              # per-iteration local work


def run_variant(use_oc: bool) -> float:
    chip = SccChip()
    comm = Comm(chip)
    op = ReduceOp.sum("<i8")
    if use_oc:
        # One MPB hosts all three collectives: budget the 256 lines as
        # 2x64 bcast buffers, 7x12 reduce slots, and the flag lines.
        bcaster = OcBcast(comm, OcBcastConfig(k=7, chunk_lines=64))
        reducer = OcReduce(comm, k=7, chunk_lines=12)
        barrier = OcBarrier(comm, k=7)
    else:
        barrier_state = BarrierState(comm)

    final_residuals = []

    def program(core):
        cc = comm.attach(core)
        params = cc.alloc(PARAM_BYTES)
        resid_in = cc.alloc(RESIDUAL_BYTES)
        resid_out = cc.alloc(RESIDUAL_BYTES)
        for it in range(ITERATIONS):
            if cc.rank == 0:
                params.write(bytes([it % 256]) * PARAM_BYTES)
            # (1) parameters out to everyone.
            if use_oc:
                yield from bcaster.bcast(cc, 0, params, PARAM_BYTES)
            else:
                yield from binomial_bcast(cc, 0, params, PARAM_BYTES)
            assert params.read()[:1] == bytes([it % 256])
            # (2) local compute on the shard.
            yield core.compute(COMPUTE_US)
            resid_in.write(
                np.full(RESIDUAL_BYTES // 8, cc.rank + it, dtype="<i8").tobytes()
            )
            # (3) residual back to the root.
            if use_oc:
                yield from reducer.reduce(cc, 0, resid_in, resid_out,
                                          RESIDUAL_BYTES, op)
            else:
                yield from binomial_reduce(cc, 0, resid_in, resid_out,
                                           RESIDUAL_BYTES, op)
            # (4) everyone in lockstep before the next iteration.
            if use_oc:
                yield from barrier.barrier(cc)
            else:
                yield from dissemination_barrier(cc, barrier_state)
            if cc.rank == 0:
                total = int(np.frombuffer(resid_out.read(), "<i8")[0])
                expected = sum(r + it for r in range(comm.size))
                assert total == expected, (total, expected)
                final_residuals.append(total)

    result = run_spmd(chip, program)
    assert len(final_residuals) == ITERATIONS
    return result.makespan


def main() -> None:
    oc_time = run_variant(use_oc=True)
    ts_time = run_variant(use_oc=False)
    print(f"{ITERATIONS} solver iterations on 48 cores "
          f"({PARAM_BYTES} B params, {RESIDUAL_BYTES} B residual):")
    print(f"  RMA collectives (OC-*):        {oc_time:10.1f} us")
    print(f"  two-sided collectives (RCCE):  {ts_time:10.1f} us")
    print(f"  speedup from one-sided RMA:    {ts_time / oc_time:10.2f}x")
    print("\nall residuals verified identical between variants.")


if __name__ == "__main__":
    main()
