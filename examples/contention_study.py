#!/usr/bin/env python
"""Explore the contention behaviour that shapes OC-Bcast's design.

Reproduces Section 3.3 interactively: sweeps the number of cores hitting
one MPB (the Figure 4 experiment), shows the ~24-accessor knee and the
unfairness at full chip, runs the loaded-mesh-link probe, and then shows
the consequence for algorithm design -- what happens to OC-Bcast when k
exceeds the contention threshold.

Run:  python examples/contention_study.py   (about a minute)
"""

from repro.bench import BcastSpec, format_table, mesh_link_probe, run_broadcast
from repro.bench.contention import contention_sweep


def main() -> None:
    print("sweeping concurrent 128-line gets from core 0's MPB...")
    rows = contention_sweep("get", 128, counts=(1, 8, 16, 24, 32, 47), iters=8)
    print(
        format_table(
            ["cores", "mean (us)", "fastest", "slowest", "slow/fast"],
            [[r.n_cores, r.mean, r.fastest, r.slowest, r.spread] for r in rows],
            title="MPB contention (cf. Figure 4a)",
        )
    )
    knee = rows[-1].mean / rows[0].mean
    print(f"\nfull-chip slowdown: {knee:.2f}x; "
          f"unfairness (slow/fast): {rows[-1].spread:.2f}x")

    print("\nstress-loading mesh link (2,2)-(3,2) with 44 cores...")
    probe = mesh_link_probe(probe_iters=6)
    print(f"probe get latency: unloaded {probe.unloaded:.2f} us, "
          f"loaded {probe.loaded:.2f} us ({probe.slowdown:.3f}x)")
    print("=> the mesh is not the bottleneck; the MPB port is (Section 3.3)")

    print("\nconsequence for OC-Bcast: throughput at 4096 CL by fan-out k")
    table = []
    for k in (7, 24, 47):
        res = run_broadcast(BcastSpec("oc", k=k), 4096 * 32, iters=2, warmup=1)
        assert res.verified
        table.append([k, res.steady_throughput_mb_s])
    print(format_table(["k", "throughput (MB/s)"], table))
    print(
        "\nk=47 exceeds the ~24-getter contention threshold at the root's "
        "MPB and loses\nthroughput -- the measured effect the paper reports "
        "as ~16% below the model."
    )


if __name__ == "__main__":
    main()
