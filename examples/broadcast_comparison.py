#!/usr/bin/env python
"""Compare all three broadcast algorithms across message sizes.

Reruns the heart of the paper's evaluation (Figures 8a/8b) in one script:
OC-Bcast (k = 2, 7, 47), the binomial tree, and scatter-allgather, over
small (latency) and large (throughput) messages, printing the same
who-wins story the paper tells -- OC-Bcast at least ~27% faster on small
messages and ~3x the throughput on large ones.

Run:  python examples/broadcast_comparison.py
"""

from repro.bench import BcastSpec, format_series, sweep_broadcast

LATENCY_SIZES = (1, 16, 48, 96, 192)       # cache lines
THROUGHPUT_SIZES = (96, 1024, 4096)        # cache lines

SPECS = [
    BcastSpec("oc", k=2),
    BcastSpec("oc", k=7),
    BcastSpec("oc", k=47),
    BcastSpec("binomial"),
    BcastSpec("scatter_allgather"),
]


def main() -> None:
    print("running latency sweep (small messages)...")
    lat = sweep_broadcast(SPECS, LATENCY_SIZES, iters=2, warmup=1)
    print(
        format_series(
            "CL",
            list(LATENCY_SIZES),
            {label: [r.mean_latency for r in rows] for label, rows in lat.items()},
            title="Broadcast latency (us), 48 cores",
        )
    )

    oc7 = lat["OC-Bcast k=7"][0].mean_latency
    binom = lat["binomial"][0].mean_latency
    print(f"\n1-CL improvement of OC-Bcast k=7 over binomial: "
          f"{(1 - oc7 / binom) * 100:.0f}% (paper: >= 27%)")

    print("\nrunning throughput sweep (large messages)...")
    tput = sweep_broadcast(SPECS, THROUGHPUT_SIZES, iters=3, warmup=1)
    print(
        format_series(
            "CL",
            list(THROUGHPUT_SIZES),
            {
                label: [r.steady_throughput_mb_s for r in rows]
                for label, rows in tput.items()
            },
            title="Steady-state broadcast throughput (MB/s), 48 cores",
        )
    )

    peak_oc = max(r.steady_throughput_mb_s for r in tput["OC-Bcast k=7"])
    peak_sag = max(r.steady_throughput_mb_s for r in tput["scatter-allgather"])
    print(f"\npeak OC-Bcast vs scatter-allgather: {peak_oc:.1f} vs "
          f"{peak_sag:.1f} MB/s ({peak_oc / peak_sag:.1f}x; paper: almost 3x)")


if __name__ == "__main__":
    main()
