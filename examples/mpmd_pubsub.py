#!/usr/bin/env python
"""MPMD publish/subscribe with interrupt-driven broadcast (paper §7).

The paper's ongoing work: extend OC-Bcast "to handle the MPMD programming
model by leveraging parallel inter-core interrupts", with many-core
operating systems as the use case.  This example runs a multikernel-style
scenario on the simulated SCC:

- core 0 is a *name server* publishing configuration epochs at its own
  pace;
- every other core runs a different-looking "service" that computes on
  its own schedule and consumes configuration updates whenever it gets
  around to them -- no matching collective calls anywhere;
- a per-core daemon (started by the library) handles the interrupts and
  pulls the data with the OC-Bcast protocol in the background.

Run:  python examples/mpmd_pubsub.py
"""

from repro import Comm, SccChip, run_spmd
from repro.core import MpmdBcast

EPOCHS = 4
CONFIG_BYTES = 96 * 32  # one chunk of "configuration"


def main() -> None:
    chip = SccChip()
    comm = Comm(chip)
    channel = MpmdBcast(comm, publisher=0, k=7)
    channel.start_daemons(chip)

    consumed: dict[int, list[int]] = {}
    publish_times: list[float] = []

    def name_server(core):
        cc = comm.attach(core)
        for epoch in range(1, EPOCHS + 1):
            yield core.compute(200.0)  # time between config changes
            config = bytes([epoch]) * CONFIG_BYTES
            buf = cc.alloc(CONFIG_BYTES)
            buf.write(config)
            publish_times.append(chip.now)
            yield from channel.publish(cc, buf, CONFIG_BYTES)
        yield from channel.stop_daemons(cc)

    def service(core):
        cc = comm.attach(core)
        seen = []
        # Every service has a different duty cycle: some check often,
        # some are busy for long stretches and batch-consume.
        busy = 50.0 + (core.id % 7) * 130.0
        while len(seen) < EPOCHS:
            yield core.compute(busy)  # "real work"
            while True:
                payload = channel.poll(cc)
                if payload is None:
                    break
                seen.append(payload[0])
            if len(seen) < EPOCHS and busy > 600.0:
                # The slowest services block for the next update instead
                # of spinning.
                payload = yield from channel.deliver(cc)
                seen.append(payload[0])
        consumed[core.id] = seen

    result = run_spmd(chip, lambda c: name_server(c) if c.id == 0 else service(c))

    assert len(consumed) == chip.num_cores - 1
    assert all(seen == list(range(1, EPOCHS + 1)) for seen in consumed.values())
    print(f"{EPOCHS} configuration epochs pushed to {chip.num_cores - 1} services")
    print(f"epochs published at: "
          f"{', '.join(f'{t:.0f}' for t in publish_times)} us")
    print(f"all services saw every epoch, in order, without ever entering "
          f"a collective call")
    print(f"total simulated time: {result.makespan:.0f} us")


if __name__ == "__main__":
    main()
