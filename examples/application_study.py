#!/usr/bin/env python
"""Application-level study: what do RMA collectives buy a real program?

The paper's closing sentence plans to integrate the RMA collectives in
an MPI library "so we can analyze the overall performance gain in
parallel applications".  This example performs that analysis with two
kernels from `repro.apps`, run unchanged on both backends of the MPI
facade:

- power iteration (dominant eigenpair): allgather + allreduce every
  step -- collective-bound;
- 2-D Jacobi stencil: halo exchange with occasional tiny allreduces --
  nearest-neighbour-bound.

Run:  python examples/application_study.py   (about half a minute)
"""

import numpy as np

from repro.apps import run_power_iteration, run_stencil
from repro.apps.power_iteration import make_matrix, reference_power_iteration
from repro.apps.stencil import reference_stencil
from repro.bench import format_table


def main() -> None:
    rows = []

    print("running power iteration (96x96 matrix, 48 cores, 10 steps)...")
    p_rma = run_power_iteration(n=96, ranks=48, iterations=10, backend="rma")
    p_two = run_power_iteration(n=96, ranks=48, iterations=10, backend="two_sided")
    lam, _ = reference_power_iteration(make_matrix(96), 10)
    assert abs(p_rma.eigenvalue - lam) < 1e-9 and abs(p_two.eigenvalue - lam) < 1e-9
    rows.append(["power iteration (collective-bound)",
                 p_rma.makespan, p_two.makespan, p_two.makespan / p_rma.makespan])

    print("running Jacobi stencil (96x96 grid, 48 cores, 12 sweeps)...")
    s_rma = run_stencil(n=96, ranks=48, iterations=12, check_every=2, backend="rma")
    s_two = run_stencil(n=96, ranks=48, iterations=12, check_every=2,
                        backend="two_sided")
    assert np.allclose(s_rma.grid, reference_stencil(96, 12))
    assert np.allclose(s_two.grid, s_rma.grid)
    rows.append(["Jacobi stencil (halo-bound)",
                 s_rma.makespan, s_two.makespan, s_two.makespan / s_rma.makespan])

    print()
    print(format_table(
        ["application", "RMA (us)", "two-sided (us)", "speedup"],
        rows,
        title="Same application code, both collective backends, 48 cores",
    ))
    print(
        "\nBoth backends produce bit-identical numerics.  The gain tracks the\n"
        "application's collective share: the paper's RMA designs speed up\n"
        "collective-bound kernels substantially and never hurt halo-bound ones."
    )


if __name__ == "__main__":
    main()
