#!/usr/bin/env python
"""Validate the LogP model against the simulated chip (paper Section 3.2).

Runs the Figure 3 micro-benchmarks (put/get over distances and sizes) on
the simulator, fits the Table 1 parameters back out with least squares,
and prints fitted-vs-reference values -- then uses the fitted parameters
to predict the Table 2 throughput numbers.

Run:  python examples/model_validation.py
"""

from repro.bench import format_table, sweep_putget
from repro.model import TABLE_1, broadcast, fitting


def main() -> None:
    print("running put/get sweeps on the simulated chip...")
    observations = sweep_putget(sizes=(1, 4, 8, 16), iters=3)
    print(f"collected {len(observations)} timed operations")

    result = fitting.fit(observations)
    rows = [
        [name, fitted, ref, f"{rel * 100:.3f}%"]
        for name, (fitted, ref, rel) in result.compare(TABLE_1).items()
    ]
    print(
        format_table(
            ["parameter", "fitted (us)", "Table 1 (us)", "error"],
            rows,
            title="Model parameters recovered from simulation",
            float_fmt="{:.4f}",
        )
    )
    print(f"fit residual RMS: {result.residual_rms:.2e} us")

    t2 = broadcast.table2(48, result.params)
    print(
        format_table(
            ["algorithm", "peak throughput (MB/s)"],
            list(t2.as_dict().items()),
            title="Table 2 predicted from the fitted parameters",
        )
    )
    ratio = t2.oc_k7 / t2.scatter_allgather
    print(f"\nOC-Bcast / scatter-allgather: {ratio:.2f}x (paper: ~2.6x analytic)")


if __name__ == "__main__":
    main()
