"""Figure 3: put/get completion time vs distance, measured vs model.

Four panels: MPB->MPB get, MPB->MPB put (distance 1..9), MPB->memory get,
memory->MPB put (distance 1..4), each for 1/4/8/16 cache lines.  The
simulated dots must sit on the Formula 7-12 model lines.
"""

import pytest

from repro.bench import format_series, write_csv
from repro.bench.microbench import (
    measure_get_mem,
    measure_get_mpb,
    measure_put_mem,
    measure_put_mpb,
)
from repro.model import TABLE_1, primitives
from repro.scc import SccConfig

SIZES = (1, 4, 8, 16)
MPB_DISTANCES = (1, 2, 3, 4, 5, 6, 7, 8, 9)
MEM_DISTANCES = (1, 2, 3, 4)


def model_value(kind, m, d):
    if kind == "put_mpb":
        return primitives.c_put_mpb(TABLE_1, m, d)
    if kind == "get_mpb":
        return primitives.c_get_mpb(TABLE_1, m, d)
    if kind == "put_mem":
        return primitives.c_put_mem(TABLE_1, m, d, 1)
    return primitives.c_get_mem(TABLE_1, m, 1, d)


PANELS = {
    "get_mpb": ("MPB to MPB Get Completion Time", measure_get_mpb, MPB_DISTANCES),
    "put_mpb": ("MPB to MPB Put Completion Time", measure_put_mpb, MPB_DISTANCES),
    "get_mem": ("MPB to Memory Get Completion Time", measure_get_mem, MEM_DISTANCES),
    "put_mem": ("Memory to MPB Put Completion Time", measure_put_mem, MEM_DISTANCES),
}


@pytest.mark.parametrize("kind", list(PANELS))
def test_fig3_panel(kind, benchmark, report, results_dir):
    title, measure, distances = PANELS[kind]

    def run_panel():
        return {
            m: [measure(SccConfig(), m, d).time for d in distances]
            for m in SIZES
        }

    sim = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    series = {}
    for m in SIZES:
        series[f"sim {m} CL"] = sim[m]
        series[f"model {m} CL"] = [model_value(kind, m, d) for d in distances]
    text = format_series(
        "hops",
        list(distances),
        series,
        title=f"Figure 3 ({title}), microseconds",
        float_fmt="{:.3f}",
    )
    report(f"fig3_{kind}", text)
    write_csv(
        f"{results_dir}/fig3_{kind}.csv",
        ["hops", *series.keys()],
        [[d, *(series[s][i] for s in series)] for i, d in enumerate(distances)],
    )

    # Measured == model within float noise, every size and distance.
    for m in SIZES:
        for i, d in enumerate(distances):
            assert sim[m][i] == pytest.approx(model_value(kind, m, d), rel=1e-9)

    # Shape claims: monotone in distance; 9-hop at most ~30% above 1-hop.
    for m in SIZES:
        assert sim[m] == sorted(sim[m])
    if distances[-1] == 9:
        assert sim[16][-1] / sim[16][0] < 1.35
