"""Extension: MPMD interrupt-driven broadcast vs SPMD OC-Bcast.

Section 7's ongoing work.  The interrupt path buys decoupling (receivers
need not sit in a matching call; a multikernel OS can consume broadcasts
whenever it likes) and costs latency: every notification hop pays ~1 us
of interrupt entry instead of sub-microsecond flag polling.
"""

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv
from repro.core import MpmdBcast
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd

SIZES_CL = (1, 96, 192)


def measure_mpmd(ncl: int, iters: int = 3) -> float:
    """Mean publish-to-last-delivery latency."""
    chip = SccChip(SccConfig())
    comm = Comm(chip)
    mpmd = MpmdBcast(comm, publisher=0, k=7)
    mpmd.start_daemons(chip)
    nbytes = ncl * 32
    msgs = [bytes((i + rep) % 256 for i in range(nbytes)) for rep in range(iters)]
    publish_at = {}
    delivered_at = {rep: {} for rep in range(iters)}

    def pub(core):
        cc = comm.attach(core)
        for rep, m in enumerate(msgs):
            buf = cc.alloc(nbytes)
            buf.write(m)
            publish_at[rep] = chip.now
            yield from mpmd.publish(cc, buf, nbytes)
        yield from mpmd.stop_daemons(cc)

    def sub(core):
        cc = comm.attach(core)
        for rep in range(iters):
            payload = yield from mpmd.deliver(cc)
            assert payload == msgs[rep]
            delivered_at[rep][cc.rank] = chip.now

    run_spmd(chip, lambda c: pub(c) if c.id == 0 else sub(c))
    lats = [
        max(delivered_at[rep].values()) - publish_at[rep] for rep in range(iters)
    ]
    return sum(lats) / len(lats)


def test_mpmd_vs_spmd(benchmark, report, results_dir):
    def run_all():
        # Cold single-shot on both sides: the warm back-to-back pipelines
        # behave differently (the MPMD publisher drains per publish).
        out = {}
        for ncl in SIZES_CL:
            spmd = run_broadcast(BcastSpec("oc", k=7), ncl * 32, iters=1, warmup=0)
            assert spmd.verified
            out[ncl] = (spmd.mean_latency, measure_mpmd(ncl, iters=1))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [ncl, spmd, mpmd, mpmd - spmd]
        for ncl, (spmd, mpmd) in results.items()
    ]
    text = format_table(
        ["CL", "SPMD OC-Bcast (us)", "MPMD interrupts (us)", "decoupling cost"],
        rows,
        title="Section 7 extension: interrupt-driven MPMD broadcast, P=48",
    )
    report("extension_mpmd", text)
    write_csv(
        f"{results_dir}/extension_mpmd.csv",
        ["cache_lines", "spmd", "mpmd"],
        [[r[0], r[1], r[2]] for r in rows],
    )

    for ncl, (spmd, mpmd) in results.items():
        # Interrupt entry makes MPMD slower, but by bounded overhead:
        # the data path is identical.
        assert mpmd > spmd
        assert mpmd < spmd + 20.0, f"IPI overhead exploded at {ncl} CL"
    # The absolute overhead does not grow with message size (it is a
    # per-chunk notification cost, not a data-path cost).
    overhead_small = results[1][1] - results[1][0]
    overhead_large = results[192][1] - results[192][0]
    assert overhead_large < 3 * overhead_small
