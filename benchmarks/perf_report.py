"""Measure simulator wall-clock performance and write BENCH_simulator.json.

Engineering benchmark (not a paper figure): times the simulation engine
itself -- raw kernel event throughput, full broadcasts per second at each
contention fidelity, and fault-campaign trials per second -- so the perf
trajectory of the reproduction is tracked across PRs the same way result
regressions are.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # write JSON
    PYTHONPATH=src python benchmarks/perf_report.py --label before
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # fewer reps

The JSON keeps one measurement block per label (``before`` = pre-fast-path
engine, ``current`` = this tree) plus the speedup of ``current`` over
``before``, so a single committed file records the trajectory.
``benchmarks/perf_check.py`` guards against regressions of ``current``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench import BcastSpec, FaultCampaign, run_broadcast
from repro.scc import ContentionMode, SccConfig
from repro.sim import Simulator

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_simulator.json")

#: Events per run of the kernel scenario (4 tickers x 5k timeouts, each
#: timeout costing one timer event plus one process resumption).
KERNEL_EVENTS = 4 * 5_000 * 2


def _best_of(fn, reps: int) -> float:
    """Best wall-clock seconds over ``reps`` runs (min filters GC noise)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernel() -> float:
    sim = Simulator()

    def ticker(n=5_000):
        for _ in range(n):
            yield sim.timeout(0.001)

    for _ in range(4):
        sim.process(ticker())
    sim.run()
    return sim.now


def bench_broadcast(mode: ContentionMode, nbytes: int) -> float:
    cfg = SccConfig(contention_mode=mode)
    return run_broadcast(
        BcastSpec("oc", k=7), nbytes, config=cfg, iters=1, warmup=0
    ).mean_latency


def bench_campaign(trials: int) -> None:
    FaultCampaign(trials=trials, seed=1, compare_baseline=False).run()


def bench_campaign_analytic(trials: int) -> None:
    """The adaptive-fidelity fast path: an all-fault-free campaign is one
    profiled reference run plus an analytic cross-check; every trial is
    then served from the memoised reference."""
    FaultCampaign(
        trials=trials, seed=1, compare_baseline=False,
        fault_rate=0.0, fidelity="adaptive",
    ).run()


def bench_analytic_sweep(points: int) -> float:
    """A whole latency sweep through the vectorised engine (fresh engine
    per call -- geometry/schedule construction is part of the cost)."""
    from repro.scc.analytic import AnalyticEngine

    engine = AnalyticEngine(k=7)
    sizes = [(i % 192 + 1) * 32 for i in range(points)]
    batch = engine.evaluate_batch(sizes, iters=1)
    return batch[-1].mean_latency


def measure(quick: bool) -> dict:
    reps = 2 if quick else 3
    # Same trial count in both modes: the campaign's fixed profiling
    # overhead amortises over trials, so trials/sec is only comparable
    # across runs at equal N.
    trials = 4
    out: dict[str, float] = {}

    t = _best_of(bench_kernel, reps)
    out["kernel_events_per_sec"] = KERNEL_EVENTS / t

    t = _best_of(
        lambda: bench_broadcast(ContentionMode.BATCH, 96 * 32 * 4), reps
    )
    out["broadcasts_per_sec_batch"] = 1.0 / t

    t = _best_of(
        lambda: bench_broadcast(ContentionMode.EXACT, 96 * 32 * 2), reps
    )
    out["broadcasts_per_sec_exact"] = 1.0 / t

    t = _best_of(
        lambda: bench_broadcast(ContentionMode.BATCH, 8192 * 32), 1
    )
    out["broadcasts_per_sec_1mib_batch"] = 1.0 / t

    t = _best_of(lambda: bench_campaign(trials), 1)
    out["campaign_trials_per_sec"] = trials / t

    # Fixed trial counts in quick and full mode for the same reason as
    # above: the reference-run overhead amortises over trials.
    ana_trials = 1024
    t = _best_of(lambda: bench_campaign_analytic(ana_trials), 1)
    out["campaign_trials_per_sec_analytic"] = ana_trials / t

    points = 128
    t = _best_of(lambda: bench_analytic_sweep(points), reps)
    out["analytic_broadcasts_per_sec"] = points / t

    return {k: round(v, 3) for k, v in out.items()}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--label", default="current", help="block to write (default: current)")
    ap.add_argument("--quick", action="store_true", help="fewer repetitions")
    ap.add_argument("--output", default=RESULTS_PATH)
    args = ap.parse_args(argv)

    doc: dict = {}
    if os.path.exists(args.output):
        with open(args.output) as fh:
            doc = json.load(fh)

    block = measure(args.quick)
    block["python"] = sys.version.split()[0]
    doc[args.label] = block

    if "before" in doc and "current" in doc:
        doc["speedup_current_over_before"] = {
            k: round(doc["current"][k] / doc["before"][k], 2)
            for k in doc["before"]
            if k != "python" and doc["before"][k]
        }

    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    width = max(len(k) for k in block)
    print(f"[{args.label}]")
    for k, v in block.items():
        print(f"  {k:<{width}}  {v}")
    print(f"written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
