"""Extension: application-level gain of RMA collectives (Section 7).

"We also plan to ... integrate them in an MPI library, so we can analyze
the overall performance gain in parallel applications."  Two kernels on
the MPI facade, same application code on both backends:

- *power iteration* (allgather + allreduce every step): collective-bound,
  so the one-sided backend wins clearly;
- *Jacobi stencil* (halo exchange + occasional 8-byte allreduce):
  nearest-neighbour-bound, so the backends tie -- the gain an application
  sees is proportional to its collective share, not a blanket speedup.
"""

import numpy as np

from repro.apps import run_power_iteration, run_stencil
from repro.apps.power_iteration import make_matrix, reference_power_iteration
from repro.apps.stencil import reference_stencil
from repro.bench import format_table, write_csv


def run_study():
    out = {}
    s_rma = run_stencil(n=96, ranks=48, iterations=12, check_every=2, backend="rma")
    s_two = run_stencil(n=96, ranks=48, iterations=12, check_every=2,
                        backend="two_sided")
    assert np.allclose(s_rma.grid, reference_stencil(96, 12))
    assert np.allclose(s_two.grid, s_rma.grid)
    out["Jacobi stencil 96x96 (halo-bound)"] = (s_rma.makespan, s_two.makespan)

    nb = run_stencil(n=96, ranks=48, iterations=12, check_every=2,
                     backend="rma", halo="nonblocking")
    assert np.allclose(nb.grid, s_rma.grid)
    out["Jacobi stencil, non-blocking halos"] = (nb.makespan, s_two.makespan)

    p_rma = run_power_iteration(n=96, ranks=48, iterations=10, backend="rma")
    p_two = run_power_iteration(n=96, ranks=48, iterations=10, backend="two_sided")
    lam, _ = reference_power_iteration(make_matrix(96), 10)
    assert abs(p_rma.eigenvalue - lam) < 1e-9
    assert abs(p_two.eigenvalue - lam) < 1e-9
    out["power iteration 96x96 (collective-bound)"] = (
        p_rma.makespan,
        p_two.makespan,
    )
    return out


def test_application_study(benchmark, report, results_dir):
    results = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = [
        [name, rma, two, two / rma]
        for name, (rma, two) in results.items()
    ]
    text = format_table(
        ["application (48 cores)", "RMA backend (us)", "two-sided (us)", "speedup"],
        rows,
        title="Section 7: application-level gain of RMA collectives",
    )
    report("extension_applications", text)
    write_csv(
        f"{results_dir}/extension_applications.csv",
        ["application", "rma_us", "two_sided_us"],
        [[r[0], r[1], r[2]] for r in rows],
    )

    by_name = {r[0]: r for r in rows}
    stencil_speedup = by_name["Jacobi stencil 96x96 (halo-bound)"][3]
    power_speedup = by_name["power iteration 96x96 (collective-bound)"][3]
    nb_speedup = by_name["Jacobi stencil, non-blocking halos"][3]
    # Collective-bound kernels gain substantially ...
    assert power_speedup > 1.3
    # ... halo-bound kernels roughly tie (no regression from the facade) ...
    assert 0.85 < stencil_speedup < 1.35
    # ... and non-blocking halos buy the stencil a further ~10%.
    assert nb_speedup > stencil_speedup * 1.05
