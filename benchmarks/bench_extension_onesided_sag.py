"""Extension: the paper's Section 5.4 one-sided scatter-allgather.

"A good example of another possible broadcast implementation is adapting
the two-sided scatter-allgather algorithm to use the one-sided
primitives available on the SCC."  We built it (``repro.core.osag``):
the allgather ring forwards slices MPB-to-MPB instead of bouncing each
hop through off-chip memory.  This bench places it between the two-sided
baseline and OC-Bcast, supporting the paper's closing argument that the
win comes from one-sided RMA itself, not from one specific algorithm.
"""

import numpy as np

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv
from repro.core import OsagBcast
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd

SIZES_CL = (96, 1024, 4096)


def measure_osag(ncl: int, iters: int = 3, warmup: int = 1) -> float:
    """Steady throughput (MB/s) of the one-sided scatter-allgather."""
    chip = SccChip(SccConfig())
    comm = Comm(chip)
    osag = OsagBcast(comm)
    nbytes = ncl * 32
    payload = bytes((i * 13 + 7) % 256 for i in range(nbytes))
    enters, exits = {}, {}

    def program(core):
        cc = comm.attach(core)
        for i in range(warmup + iters):
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            if i == warmup:
                enters[cc.rank] = chip.now
            yield from osag.bcast(cc, 0, buf, nbytes)
            exits.setdefault(i, {})[cc.rank] = chip.now
            assert buf.read() == payload

    run_spmd(chip, program)
    span = max(exits[warmup + iters - 1].values()) - enters[0]
    return iters * nbytes / span


def test_onesided_scatter_allgather(benchmark, report, results_dir):
    def run_all():
        out = {}
        for ncl in SIZES_CL:
            two_sided = run_broadcast(
                BcastSpec("scatter_allgather"), ncl * 32, iters=3, warmup=1
            )
            oc = run_broadcast(BcastSpec("oc", k=7), ncl * 32, iters=3, warmup=1)
            assert two_sided.verified and oc.verified
            out[ncl] = (
                two_sided.steady_throughput_mb_s,
                measure_osag(ncl),
                oc.steady_throughput_mb_s,
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [ncl, ts, osag, oc, osag / ts]
        for ncl, (ts, osag, oc) in results.items()
    ]
    text = format_table(
        ["CL", "two-sided s-ag (MB/s)", "one-sided s-ag", "OC-Bcast k=7", "1s/2s"],
        rows,
        title="Section 5.4: one-sided adaptation of scatter-allgather",
    )
    report("extension_onesided_sag", text)
    write_csv(
        f"{results_dir}/extension_onesided_sag.csv",
        ["cache_lines", "two_sided", "one_sided", "oc"],
        [[r[0], r[1], r[2], r[3]] for r in rows],
    )

    for ncl, (ts, osag, oc) in results.items():
        # Strict ordering at steady state: two-sided < one-sided < OC.
        assert osag > 1.15 * ts, f"one-sided s-ag should beat two-sided at {ncl} CL"
        assert oc > osag, f"OC-Bcast should stay ahead at {ncl} CL"
