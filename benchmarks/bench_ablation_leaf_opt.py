"""Ablation A3: the Section 5.4 leaf optimisation.

"A leaf in a broadcast tree does not need to copy the data to its MPB,
but directly to the off-chip private memory."  The paper leaves this out
to keep the algorithm uniform; we measure what it would have bought.
"""

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv

SIZES_CL = (1, 96, 96 * 8)


def measure(leaf_direct):
    out = {}
    for ncl in SIZES_CL:
        res = run_broadcast(
            BcastSpec("oc", k=7, leaf_direct_to_memory=leaf_direct),
            ncl * 32,
            iters=2,
            warmup=1,
        )
        assert res.verified
        out[ncl] = res.mean_latency
    return out


def test_leaf_direct_ablation(benchmark, report, results_dir):
    results = benchmark.pedantic(
        lambda: {flag: measure(flag) for flag in (False, True)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            ncl,
            results[False][ncl],
            results[True][ncl],
            (1 - results[True][ncl] / results[False][ncl]) * 100,
        ]
        for ncl in SIZES_CL
    ]
    text = format_table(
        ["CL", "baseline (us)", "leaf-direct (us)", "improvement %"],
        rows,
        title="Ablation A3: Section 5.4 leaf-direct-to-memory optimisation, k=7",
    )
    report("ablation_leaf_opt", text)
    write_csv(
        f"{results_dir}/ablation_leaf_opt.csv",
        ["cache_lines", "baseline", "leaf_direct", "improvement_pct"],
        rows,
    )

    # The optimisation removes one MPB staging pass at every leaf: worth
    # >10% for full chunks.  For 1-line messages it is a wash (leaves get
    # faster but their doneFlags arrive later, delaying the root's final
    # poll) -- one of the "special cases" the paper alludes to in 5.4.
    assert results[True][96] < 0.92 * results[False][96]
    assert results[True][96 * 8] < results[False][96 * 8]
    assert results[True][1] < 1.05 * results[False][1]
