"""Table 1: recover the LogP model parameters from micro-benchmarks.

The paper measured put/get completion times on silicon and fitted the
eight Table 1 constants.  We run the same sweeps on the simulated chip
and fit with least squares; the fitted values must come back at the
configured (= paper's) constants, validating that the simulator's
primitives implement Formulas 1-12.
"""

from repro.bench import format_table, sweep_putget, write_csv
from repro.bench.paper_data import TABLE1_PARAMS
from repro.model import fitting


def run_table1():
    obs = sweep_putget(
        sizes=(1, 4, 8, 16),
        mpb_distances=(1, 2, 3, 5, 7, 9),
        mem_distances=(1, 2, 3, 4),
        iters=3,
    )
    return obs, fitting.fit(obs)


def test_table1_parameter_fit(benchmark, report, results_dir):
    obs, result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    rows = []
    for name, (fitted, ref, rel) in result.compare(TABLE1_PARAMS).items():
        rows.append([name, fitted, ref, f"{rel * 100:.2f}%"])
    text = format_table(
        ["parameter", "fitted (us)", "paper Table 1 (us)", "rel. error"],
        rows,
        title="Table 1: model parameters fitted from simulated micro-benchmarks",
        float_fmt="{:.4f}",
    )
    report("table1_params", text)
    write_csv(
        f"{results_dir}/table1_params.csv",
        ["parameter", "fitted", "paper"],
        [[r[0], r[1], r[2]] for r in rows],
    )

    # The simulator implements the formulas, so the fit is essentially exact.
    assert result.residual_rms < 1e-6
    for name, (_, _, rel) in result.compare(TABLE1_PARAMS).items():
        assert rel < 1e-3, f"{name} drifted from Table 1"
    assert result.n_observations == 4 * (6 + 6 + 4 + 4)
