"""Extension A5: scaling beyond the SCC.

The paper's introduction motivates OC-Bcast with chips of hundreds to a
thousand cores.  We scale the mesh (48 -> 128 -> 512 cores) and compare
OC-Bcast against the binomial baseline: the off-chip traffic on the
binomial critical path grows with log2 P while OC-Bcast keeps exactly two
off-chip passes, so the advantage must widen with core count.
"""

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv
from repro.scc import SccConfig

MESHES = (
    ("SCC 6x4 (48)", SccConfig()),
    ("8x8 (128)", SccConfig(mesh_cols=8, mesh_rows=8)),
    ("16x16 (512)", SccConfig(mesh_cols=16, mesh_rows=16)),
)


def measure(config, spec, ncl=96):
    res = run_broadcast(spec, ncl * 32, config=config, iters=1, warmup=1)
    assert res.verified
    return res.mean_latency


def test_manycore_scaling(benchmark, report, results_dir):
    def run_all():
        out = {}
        for label, cfg in MESHES:
            out[label] = (
                measure(cfg, BcastSpec("oc", k=7)),
                measure(cfg, BcastSpec("binomial")),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [label, oc, bi, bi / oc]
        for label, (oc, bi) in results.items()
    ]
    text = format_table(
        ["mesh (cores)", "OC-Bcast k=7 (us)", "binomial (us)", "binomial/OC"],
        rows,
        title="Extension A5: 96-CL broadcast latency vs core count",
    )
    report("scaling_manycore", text)
    write_csv(
        f"{results_dir}/scaling_manycore.csv",
        ["mesh", "oc", "binomial", "ratio"],
        rows,
    )

    ratios = [bi / oc for _, (oc, bi) in results.items()]
    # OC wins by >2x at every scale: its two off-chip passes are fixed
    # while both algorithms' tree depths grow logarithmically, so the
    # ratio holds steady rather than collapsing.
    assert all(r > 2.0 for r in ratios)
    # OC latency grows like the tree depth (log P), far slower than the
    # core count itself: 48 -> 512 cores costs < 2x latency.
    ocs = [oc for _, (oc, _) in results.items()]
    assert ocs[-1] < 2.0 * ocs[0]
