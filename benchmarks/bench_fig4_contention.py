"""Figure 4: concurrent MPB access contention.

(a) N cores concurrently get 128 cache lines from core 0's MPB.
(b) N cores concurrently put 1 cache line into core 0's MPB.

Paper claims reproduced here: no measurable contention up to ~24
accessors; at full chip the average rises visibly, the slowest core is
>2x the fastest for gets and >4x for puts, and contention does not
affect all cores equally.
"""

from repro.bench import format_table, write_csv
from repro.bench.contention import contention_sweep
from repro.bench.paper_data import (
    CONTENTION_FREE_ACCESSORS,
    FIG4_GET_SPREAD_AT_48,
    FIG4_PUT_SPREAD_AT_48,
)

COUNTS = (1, 2, 4, 6, 8, 12, 16, 24, 32, 40, 47)


def summarise(rows):
    return [
        [r.n_cores, r.mean, r.fastest, r.slowest, r.spread] for r in rows
    ]


def test_fig4a_concurrent_get(benchmark, report, results_dir):
    rows = benchmark.pedantic(
        lambda: contention_sweep("get", 128, COUNTS, iters=8),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["cores", "mean (us)", "fastest", "slowest", "slow/fast"],
        summarise(rows),
        title="Figure 4a: concurrent 128-line get from core 0's MPB",
    )
    report("fig4a_get", text)
    write_csv(
        f"{results_dir}/fig4a_get.csv",
        ["cores", "mean", "fastest", "slowest"],
        [[r.n_cores, r.mean, r.fastest, r.slowest] for r in rows],
    )
    by_n = {r.n_cores: r for r in rows}
    single = by_n[1].mean
    # Near-flat up to the paper's 24-core threshold.
    assert by_n[CONTENTION_FREE_ACCESSORS].mean < 1.35 * single
    # Clear contention at full chip: mean well above single-core.
    assert by_n[47].mean > 1.5 * single
    # Unfairness: slowest more than 2x the fastest (paper Section 3.3).
    assert by_n[47].spread > FIG4_GET_SPREAD_AT_48
    # Monotone-ish growth of the mean past the knee.
    assert by_n[47].mean > by_n[32].mean > by_n[24].mean * 0.99


def test_fig4b_concurrent_put(benchmark, report, results_dir):
    rows = benchmark.pedantic(
        lambda: contention_sweep("put", 1, COUNTS, iters=30),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        ["cores", "mean (us)", "fastest", "slowest", "slow/fast"],
        summarise(rows),
        title="Figure 4b: concurrent 1-line put into core 0's MPB",
    )
    report("fig4b_put", text)
    write_csv(
        f"{results_dir}/fig4b_put.csv",
        ["cores", "mean", "fastest", "slowest"],
        [[r.n_cores, r.mean, r.fastest, r.slowest] for r in rows],
    )
    by_n = {r.n_cores: r for r in rows}
    single = by_n[1].mean
    assert by_n[CONTENTION_FREE_ACCESSORS].mean < 1.5 * single
    assert by_n[47].mean > 1.7 * single
    # Puts are hit harder than gets: more than the paper's 4x spread.
    assert by_n[47].spread > FIG4_PUT_SPREAD_AT_48
