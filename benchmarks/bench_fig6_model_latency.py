"""Figure 6: analytically modeled broadcast latency vs message size
(plus the 6b zoom on small messages), for OC-Bcast k in {2,7,47} and the
binomial tree.
"""

from repro.bench import format_series, write_csv
from repro.bench.paper_data import LATENCY_SIZES_CL
from repro.model import TABLE_1, broadcast

ZOOM_SIZES = (1, 2, 4, 8, 12, 16, 20, 24, 30)


def series_for(sizes):
    return {
        "k=2": [broadcast.ocbcast_latency_complete(48, m, 2, TABLE_1) for m in sizes],
        "k=7": [broadcast.ocbcast_latency_complete(48, m, 7, TABLE_1) for m in sizes],
        "k=47": [broadcast.ocbcast_latency_complete(48, m, 47, TABLE_1) for m in sizes],
        "binomial": [broadcast.binomial_latency_complete(48, m, TABLE_1) for m in sizes],
    }


def test_fig6a_modeled_latency(benchmark, report, results_dir):
    series = benchmark.pedantic(
        lambda: series_for(LATENCY_SIZES_CL), rounds=1, iterations=1
    )
    text = format_series(
        "CL",
        list(LATENCY_SIZES_CL),
        series,
        title="Figure 6a: modeled broadcast latency (us), P=48",
    )
    report("fig6a_model_latency", text)
    write_csv(
        f"{results_dir}/fig6a_model_latency.csv",
        ["cache_lines", *series.keys()],
        [[m, *(series[s][i] for s in series)] for i, m in enumerate(LATENCY_SIZES_CL)],
    )

    sizes = list(LATENCY_SIZES_CL)
    # Every OC variant beats binomial at every size, and the gap grows.
    for key in ("k=2", "k=7", "k=47"):
        assert all(a < b for a, b in zip(series[key], series["binomial"]))
    gap_small = series["binomial"][0] - series["k=7"][0]
    gap_large = series["binomial"][-1] - series["k=7"][-1]
    assert gap_large > 3 * gap_small

    # k=7 beats k=2 in the 96..192 region by roughly the paper's ~25%.
    i96 = sizes.index(96)
    improvement = 1 - series["k=7"][i96] / series["k=2"][i96]
    assert 0.10 < improvement < 0.45


def test_fig6b_zoom_small_messages(benchmark, report, results_dir):
    series = benchmark.pedantic(lambda: series_for(ZOOM_SIZES), rounds=1, iterations=1)
    text = format_series(
        "CL",
        list(ZOOM_SIZES),
        series,
        title="Figure 6b: modeled broadcast latency, small messages (us)",
    )
    report("fig6b_model_latency_zoom", text)
    write_csv(
        f"{results_dir}/fig6b_model_latency_zoom.csv",
        ["cache_lines", *series.keys()],
        [[m, *(series[s][i] for s in series)] for i, m in enumerate(ZOOM_SIZES)],
    )
    # The paper's 6b observation: k=47 is the slowest OC variant for very
    # small messages (the root polls 47 doneFlags) ...
    assert series["k=47"][0] > series["k=7"][0]
    assert series["k=47"][0] > series["k=2"][0]
    # ... but catches up as the message grows (shallower tree wins).
    assert series["k=47"][-1] < series["k=2"][-1]
