"""Figure 8a: measured (simulated) broadcast latency for small messages,
OC-Bcast k in {2,7,47} vs the binomial tree.

Paper claims checked: >= 27% latency improvement of OC-Bcast k=7 over
binomial at 1 cache line; the gap grows with size; k=7 beats k=2 by
~25% between 96 and 192 lines; k=7 and k=47 nearly overlap in
measurement (MPB contention eats k=47's modeled advantage).
"""

from repro.bench import BcastSpec, format_series, sweep_broadcast, write_csv
from repro.bench.paper_data import (
    K7_OVER_K2_IMPROVEMENT,
    MIN_LATENCY_IMPROVEMENT,
)

SIZES = (1, 16, 48, 96, 144, 192)
SPECS = [
    BcastSpec("oc", k=2),
    BcastSpec("oc", k=7),
    BcastSpec("oc", k=47),
    BcastSpec("binomial"),
]


def run_sweep():
    return sweep_broadcast(SPECS, SIZES, iters=3, warmup=1)


def test_fig8a_measured_latency(benchmark, report, results_dir):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = {
        label: [r.mean_latency for r in rows] for label, rows in out.items()
    }
    text = format_series(
        "CL",
        list(SIZES),
        series,
        title="Figure 8a: measured broadcast latency (us), P=48",
    )
    report("fig8a_latency", text)
    write_csv(
        f"{results_dir}/fig8a_latency.csv",
        ["cache_lines", *series.keys()],
        [[m, *(series[s][i] for s in series)] for i, m in enumerate(SIZES)],
    )

    for rows in out.values():
        assert all(r.verified for r in rows)

    oc7 = series["OC-Bcast k=7"]
    oc2 = series["OC-Bcast k=2"]
    oc47 = series["OC-Bcast k=47"]
    binom = series["binomial"]
    sizes = list(SIZES)

    # "at least 27% lower latency than the binomial tree" at 1 CL.
    improvement_1cl = 1 - oc7[0] / binom[0]
    assert improvement_1cl >= MIN_LATENCY_IMPROVEMENT

    # The gap grows with message size.
    assert binom[-1] - oc7[-1] > binom[0] - oc7[0]
    # OC beats binomial everywhere.
    for key in (oc2, oc7, oc47):
        assert all(a < b for a, b in zip(key, binom))

    # k=7 ~25% better than k=2 in the 96..192 region.
    i96 = sizes.index(96)
    imp = 1 - oc7[i96] / oc2[i96]
    assert K7_OVER_K2_IMPROVEMENT - 0.15 < imp < K7_OVER_K2_IMPROVEMENT + 0.15

    # Measured k=7 and k=47 are close (within ~30%) at larger sizes --
    # contention keeps k=47 from its modeled advantage.
    assert abs(oc47[-1] - oc7[-1]) / oc7[-1] < 0.3
