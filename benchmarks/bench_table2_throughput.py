"""Table 2: analytic peak broadcast throughput, OC-Bcast vs
scatter-allgather (paper: 35.22 / 34.30 / 35.88 vs 13.38 MB/s).
"""

import pytest

from repro.bench import format_table, write_csv
from repro.bench.paper_data import TABLE2_THROUGHPUT_MB_S
from repro.model import TABLE_1, broadcast


def test_table2_analytic_throughput(benchmark, report, results_dir):
    t2 = benchmark.pedantic(
        lambda: broadcast.table2(48, TABLE_1), rounds=1, iterations=1
    )
    ours = t2.as_dict()
    rows = [
        [name, ours[name], TABLE2_THROUGHPUT_MB_S[name]]
        for name in TABLE2_THROUGHPUT_MB_S
    ]
    text = format_table(
        ["algorithm", "modeled (MB/s)", "paper Table 2 (MB/s)"],
        rows,
        title="Table 2: analytic peak broadcast throughput, P=48",
    )
    report("table2_throughput", text)
    write_csv(
        f"{results_dir}/table2_throughput.csv",
        ["algorithm", "modeled", "paper"],
        rows,
    )

    # Values within 15% of the paper's, ratio close to 3x, and OC nearly
    # k-independent (the paper's spread over k is ~5%).
    for name, paper_value in TABLE2_THROUGHPUT_MB_S.items():
        assert ours[name] == pytest.approx(paper_value, rel=0.15), name
    ratio = ours["OC-Bcast k=7"] / ours["scatter-allgather"]
    assert 2.3 < ratio < 3.3
    oc_values = [ours[f"OC-Bcast k={k}"] for k in (2, 7, 47)]
    assert max(oc_values) / min(oc_values) < 1.15
