"""Ablation A2: double buffering (paper Section 4.2).

The paper's 2n-delta vs n-delta argument concerns overlapping the
producer's staging with the consumers' draining.  At the SCC's parameter
point the non-root node cycle (MPB get + off-chip copy) dominates the
root's staging, so the default deep-tree configuration hides most of the
staging either way (Formula 15 is buffer-count-independent); the overlap
is fully exposed in a flat tree with the leaf-direct optimisation, where
the root's staging alternates with the children's drains.
"""

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv

CHUNK_LINES = 64  # 3 buffers of 96 lines would not fit the MPB
NBYTES = CHUNK_LINES * 32 * 12  # 12 full chunks


def measure(nbuf, k, leaf_direct):
    res = run_broadcast(
        BcastSpec(
            "oc",
            k=k,
            chunk_lines=CHUNK_LINES,
            num_buffers=nbuf,
            leaf_direct_to_memory=leaf_direct,
        ),
        NBYTES,
        iters=2,
        warmup=1,
    )
    assert res.verified
    return res.steady_throughput_mb_s


def test_double_buffering_ablation(benchmark, report, results_dir):
    def run_all():
        return {
            (nbuf, k, leaf): measure(nbuf, k, leaf)
            for nbuf in (1, 2, 3)
            for k, leaf in ((7, False), (47, True))
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            nbuf,
            results[(nbuf, 7, False)],
            results[(nbuf, 47, True)],
        ]
        for nbuf in (1, 2, 3)
    ]
    text = format_table(
        ["buffers", "k=7 deep tree (MB/s)", "k=47 leaf-direct (MB/s)"],
        rows,
        title="Ablation A2: steady throughput vs MPB buffer count (12-chunk message)",
    )
    report("ablation_double_buffering", text)
    write_csv(
        f"{results_dir}/ablation_double_buffering.csv",
        ["buffers", "deep_tree", "flat_leaf_direct"],
        rows,
    )

    # Flat/leaf-direct: double buffering gives the paper's ~2x overlap win.
    assert results[(2, 47, True)] > 1.4 * results[(1, 47, True)]
    # Diminishing returns: the third buffer gains far less than the second.
    gain2 = results[(2, 47, True)] / results[(1, 47, True)]
    gain3 = results[(3, 47, True)] / results[(2, 47, True)]
    assert gain3 < 0.75 * gain2
    # Deep tree: drain-dominated, so the gain is small but non-negative.
    assert results[(2, 7, False)] > 0.95 * results[(1, 7, False)]
