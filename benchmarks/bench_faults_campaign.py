"""Fault campaign: FT OC-Bcast survival and robustness tax under
seeded single-fault injection (extension beyond the paper).

Claims checked: on the adversarial one-chunk (96 CL) message the
baseline deadlocks on *every* dropped/corrupted final-notification flag
write, the FT mode recovers every trial, and with injection disabled the
FT mode costs under 5% latency over the baseline -- so robustness is
opt-in and nearly free when nothing fails.
"""

from repro.bench import FaultCampaign, format_fault_timeline, format_table, write_csv
from repro.bench.faultcampaign import OUTCOMES, parse_kinds

TRIALS = 100
KINDS = ("drop_flag", "corrupt_flag", "crash")


def run_campaign():
    return FaultCampaign(trials=TRIALS, seed=1, kinds=parse_kinds(KINDS)).run()


def test_fault_campaign(benchmark, report, results_dir):
    result = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    rows = [
        [
            outcome,
            result.ft_counts.get(outcome, 0),
            result.baseline_counts.get(outcome, 0),
        ]
        for outcome in OUTCOMES
    ]
    text = "\n\n".join(
        [
            format_table(
                ["outcome", "FT", "baseline"],
                rows,
                title=f"Fault campaign: {TRIALS} trials over {', '.join(KINDS)}",
            ),
            result.summary(),
            format_fault_timeline(result.timeline),
        ]
    )
    report("faults_campaign", text)
    write_csv(
        f"{results_dir}/faults_campaign.csv",
        ["outcome", "ft", "baseline"],
        rows,
    )

    # FT never wedges or corrupts; every faulted trial is recovered.
    assert result.ft_counts["deadlock"] == 0
    assert result.ft_counts["corrupt"] == 0
    assert result.ft_survival_rate == 1.0
    # Flag-write faults (2/3 of trials) are always fatal to the baseline.
    assert result.baseline_counts["deadlock"] >= (2 * TRIALS) // 3
    # The robustness tax with injection disabled stays under 5%.
    assert 0.0 <= result.ft_overhead_pct < 5.0
