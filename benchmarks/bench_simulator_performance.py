"""Engineering benchmark: wall-clock performance of the simulator itself.

Not a paper figure -- this tracks the cost of running the reproduction
(events per second of the kernel, full broadcasts per second at each
contention fidelity) so regressions in the simulation engine are caught
the same way result regressions are.  Unlike the paper benches these use
multiple pytest-benchmark rounds: wall time is the measurand here.
"""

from repro.bench import BcastSpec, FaultCampaign, run_broadcast
from repro.scc import AnalyticEngine, ContentionMode, SccConfig
from repro.sim import Simulator


def test_kernel_event_throughput(benchmark):
    """Raw kernel: four processes chaining 5k timeouts each (20k events
    plus 20k resumptions)."""

    def run():
        sim = Simulator()

        def ticker(n=5_000):
            for _ in range(n):
                yield sim.timeout(0.001)

        for _ in range(4):
            sim.process(ticker())
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0


def test_broadcast_simulation_speed_batch_mode(benchmark):
    def run():
        return run_broadcast(
            BcastSpec("oc", k=7), 96 * 32 * 4, iters=1, warmup=0
        ).mean_latency

    latency = benchmark(run)
    assert latency > 0


def test_broadcast_simulation_speed_exact_mode(benchmark):
    cfg = SccConfig(contention_mode=ContentionMode.EXACT)

    def run():
        return run_broadcast(
            BcastSpec("oc", k=7), 96 * 32 * 2, config=cfg, iters=1, warmup=0
        ).mean_latency

    latency = benchmark(run)
    assert latency > 0


def test_large_message_simulation_speed(benchmark):
    """1 MiB broadcast (the Figure 8b extreme) in BATCH mode."""

    def run():
        return run_broadcast(
            BcastSpec("oc", k=7), 8192 * 32, iters=1, warmup=0
        ).mean_latency

    latency = benchmark.pedantic(run, rounds=2, iterations=1)
    assert latency > 0


def test_analytic_batch_sweep_speed(benchmark):
    """A 128-point latency sweep through the vectorised engine -- no
    event kernel at all; engine construction is part of the cost."""

    def run():
        engine = AnalyticEngine(k=7)
        sizes = [(i % 192 + 1) * 32 for i in range(128)]
        return engine.evaluate_batch(sizes, iters=1)[-1].mean_latency

    latency = benchmark(run)
    assert latency > 0


def test_adaptive_campaign_fault_free_speed(benchmark):
    """An all-fault-free adaptive-fidelity campaign: one profiled
    reference run plus an analytic cross-check, then every trial served
    from the memoised reference."""

    def run():
        return FaultCampaign(
            trials=1024, seed=1, compare_baseline=False,
            fault_rate=0.0, fidelity="adaptive",
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.ft_counts["delivered"] == 1024
