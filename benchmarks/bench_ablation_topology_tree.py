"""Ablation A4: id-based vs topology-aware propagation trees.

The paper builds its tree from core ids and calls topology-aware
construction orthogonal (citing [4]).  With the mesh model in hand we can
quantify what a topology-aware assignment buys on the SCC: little --
exactly why the paper could ignore it (the 1-hop vs 9-hop spread is only
~30%, Section 3.2) -- and what it buys on a larger mesh, where distances
spread further.
"""

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv
from repro.core import topology_aware_order
from repro.scc import SccChip, SccConfig


def measure(config, order, ncl=96, k=7):
    res = run_broadcast(
        BcastSpec("oc", k=k, order=order), ncl * 32, config=config, iters=2, warmup=1
    )
    assert res.verified
    return res.mean_latency


def test_topology_tree_ablation(benchmark, report, results_dir):
    def run_all():
        out = {}
        for label, cols, rows_ in (("SCC 6x4", 6, 4), ("many-core 12x8", 12, 8)):
            cfg = SccConfig(mesh_cols=cols, mesh_rows=rows_)
            chip = SccChip(cfg)
            order = topology_aware_order(
                chip.num_cores, 7, 0, chip.mesh.core_distance
            )
            out[label] = (
                measure(cfg, None),
                measure(cfg, order),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [label, base, topo, (1 - topo / base) * 100]
        for label, (base, topo) in results.items()
    ]
    text = format_table(
        ["mesh", "id-based (us)", "topology-aware (us)", "improvement %"],
        rows,
        title="Ablation A4: propagation-tree placement, 96-CL broadcast, k=7",
    )
    report("ablation_topology_tree", text)
    write_csv(
        f"{results_dir}/ablation_topology_tree.csv",
        ["mesh", "id_based", "topology_aware", "improvement_pct"],
        rows,
    )

    scc_base, scc_topo = results["SCC 6x4"]
    big_base, big_topo = results["many-core 12x8"]
    # On the SCC the effect is small (under ~10%), confirming the paper's
    # choice to treat placement as orthogonal at this scale.
    assert abs(1 - scc_topo / scc_base) < 0.10
    # It should not hurt on the bigger mesh.
    assert big_topo < big_base * 1.05
