"""Section 3.3's mesh stress test: a heavily loaded link does not slow a
probe transfer measurably -- the NoC is not a contention source at SCC
scale (the MPB ports are).
"""

from repro.bench import mesh_link_probe
from repro.bench.reporting import format_table


def test_loaded_link_probe(benchmark, report):
    result = benchmark.pedantic(
        lambda: mesh_link_probe(probe_iters=8), rounds=1, iterations=1
    )
    text = format_table(
        ["condition", "probe get latency (us)"],
        [
            ["unloaded link", result.unloaded],
            ["loaded link (44 cores hammering)", result.loaded],
            ["slowdown", result.slowdown],
        ],
        title="Section 3.3: 128-line get across link (2,2)-(3,2)",
    )
    report("mesh_link_probe", text)
    # "did not show any performance drop" -- allow a few percent noise.
    assert result.slowdown < 1.10
