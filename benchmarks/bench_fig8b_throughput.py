"""Figure 8b: measured (simulated) broadcast throughput vs message size
(log x-axis in the paper), OC-Bcast k in {2,7,47} vs scatter-allgather.

Paper claims checked: OC-Bcast peaks near the Table 2 prediction and at
"almost 3x" the scatter-allgather peak; the 97-cache-line message dips
below the 96-line one (the trailing 1-line chunk limits the pipeline);
the dip vanishes for large messages.
"""

from repro.bench import BcastSpec, format_series, sweep_broadcast, write_csv
from repro.bench.paper_data import THROUGHPUT_RATIO_OC_OVER_SAG

SIZES = (1, 16, 96, 97, 192, 1024, 4096, 16384)
SPECS = [
    BcastSpec("oc", k=2),
    BcastSpec("oc", k=7),
    BcastSpec("oc", k=47),
    BcastSpec("scatter_allgather"),
]


def run_sweep():
    # Back-to-back iterations after a warm-up: steady-state pipeline rate.
    return sweep_broadcast(SPECS, SIZES, iters=3, warmup=1)


def test_fig8b_measured_throughput(benchmark, report, results_dir):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    series = {
        label: [r.steady_throughput_mb_s for r in rows] for label, rows in out.items()
    }
    text = format_series(
        "CL",
        list(SIZES),
        series,
        title="Figure 8b: measured broadcast throughput (MB/s), P=48",
    )
    report("fig8b_throughput", text)
    write_csv(
        f"{results_dir}/fig8b_throughput.csv",
        ["cache_lines", *series.keys()],
        [[m, *(series[s][i] for s in series)] for i, m in enumerate(SIZES)],
    )

    for rows in out.values():
        assert all(r.verified for r in rows)

    sizes = list(SIZES)
    oc7 = series["OC-Bcast k=7"]
    sag = series["scatter-allgather"]

    # Peak ratio "almost 3x" (paper measures ~2.6-2.9x).
    ratio = max(oc7) / max(sag)
    assert THROUGHPUT_RATIO_OC_OVER_SAG - 0.7 < ratio < THROUGHPUT_RATIO_OC_OVER_SAG + 0.4

    # The 97-line dip: a 1-line trailing chunk throttles the pipeline.
    i96, i97 = sizes.index(96), sizes.index(97)
    assert oc7[i97] < 0.85 * oc7[i96]
    # The dip washes out for large messages.
    assert oc7[-1] > oc7[i96]

    # Throughput grows toward a plateau for OC (last two sizes close).
    assert oc7[-1] / oc7[-2] < 1.15

    # Peak in the right ballpark of Table 2 (within 25%).
    assert 25.0 < max(oc7) < 45.0
    assert 9.0 < max(sag) < 17.0
