"""Shared fixtures for the paper-reproduction benchmarks.

Each bench regenerates one table or figure of the paper on the simulated
chip, asserts the paper's qualitative claims (who wins, by what factor,
where the knees/crossovers fall), prints the rows/series, and writes them
under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Print a result block and persist it to results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report
