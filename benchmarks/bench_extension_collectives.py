"""Extension A6: OC-style barrier and reduce vs the two-sided baselines
(the paper's Section 7 plan to extend the RMA approach to other
collectives).
"""

import numpy as np

from repro.bench import format_table, write_csv
from repro.collectives import (
    BarrierState,
    ReduceOp,
    binomial_reduce,
    dissemination_barrier,
)
from repro.core import OcBarrier, OcReduce
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd


def run_collective(builder, iters=3):
    """builder(comm) -> per-core generator factory; returns mean makespan."""
    chip = SccChip(SccConfig())
    comm = Comm(chip)
    body = builder(comm)
    spans = []

    def program(core):
        cc = comm.attach(core)
        for _ in range(iters):
            start = chip.now
            yield from body(cc)
            spans.append(chip.now - start)

    run_spmd(chip, program)
    return float(np.mean(spans[-chip.num_cores:]))


def barrier_two_sided(comm):
    state = BarrierState(comm)
    return lambda cc: dissemination_barrier(cc, state)


def barrier_oc(comm):
    bar = OcBarrier(comm, k=7)
    return bar.barrier


def reduce_two_sided(comm):
    op = ReduceOp.sum()
    nbytes = 96 * 32

    def body(cc):
        send = cc.alloc(nbytes)
        recv = cc.alloc(nbytes)
        send.write(np.full(nbytes // 8, cc.rank, dtype="<i8").tobytes())
        yield from binomial_reduce(cc, 0, send, recv, nbytes, op)

    return body


def reduce_oc(comm):
    ocr = OcReduce(comm, k=7, chunk_lines=24)
    op = ReduceOp.sum()
    nbytes = 96 * 32

    def body(cc):
        send = cc.alloc(nbytes)
        recv = cc.alloc(nbytes)
        send.write(np.full(nbytes // 8, cc.rank, dtype="<i8").tobytes())
        yield from ocr.reduce(cc, 0, send, recv, nbytes, op)

    return body


def test_extension_collectives(benchmark, report, results_dir):
    def run_all():
        return {
            "barrier two-sided flags": run_collective(barrier_two_sided),
            "barrier OC (k-ary RMA)": run_collective(barrier_oc),
            "reduce 96CL two-sided": run_collective(reduce_two_sided),
            "reduce 96CL OC (RMA)": run_collective(reduce_oc),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, value] for name, value in results.items()]
    text = format_table(
        ["collective", "mean time (us)"],
        rows,
        title="Extension A6: OC-style vs two-sided collectives, P=48",
    )
    report("extension_collectives", text)
    write_csv(f"{results_dir}/extension_collectives.csv", ["collective", "us"], rows)

    # The RMA reduce avoids the off-chip round trip per level: a clear win.
    assert results["reduce 96CL OC (RMA)"] < 0.7 * results["reduce 96CL two-sided"]
    # Both barriers are microsecond-scale; sanity bounds only.
    assert 0 < results["barrier OC (k-ary RMA)"] < 100
    assert 0 < results["barrier two-sided flags"] < 100
