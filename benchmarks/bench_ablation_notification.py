"""Ablation A1: notification-tree arity.

The paper asserts (Section 4.1) that a binary notification tree gives the
lowest notification latency among output degrees.  We sweep the degree at
k=47 (the largest family, where notification depth matters most) and at
k=7, for 1-cache-line broadcasts where notification dominates.
"""

from repro.bench import BcastSpec, format_table, run_broadcast, write_csv

DEGREES = (1, 2, 3, 4, 7)


def run_sweep(k):
    out = {}
    for degree in DEGREES:
        res = run_broadcast(
            BcastSpec("oc", k=k, notify_degree=degree), 32, iters=3, warmup=1
        )
        assert res.verified
        out[degree] = res.mean_latency
    return out


def test_notification_degree_ablation(benchmark, report, results_dir):
    results = benchmark.pedantic(
        lambda: {k: run_sweep(k) for k in (7, 47)}, rounds=1, iterations=1
    )
    rows = [
        [d, results[7][d], results[47][d]] for d in DEGREES
    ]
    text = format_table(
        ["notify degree", "k=7 latency (us)", "k=47 latency (us)"],
        rows,
        title="Ablation A1: 1-CL broadcast latency vs notification-tree degree",
    )
    report("ablation_notification", text)
    write_csv(
        f"{results_dir}/ablation_notification.csv",
        ["degree", "k7", "k47"],
        rows,
    )

    # Binary is the best or within a few percent of the best degree at
    # both k (the paper's optimum; with our flag-write/detect cost ratio
    # degrees 3-4 tie it within noise), while a degree-1 chain is clearly
    # worse, and catastrophically so for the 47-child family.
    for k in (7, 47):
        best = min(results[k].values())
        assert results[k][2] <= best * 1.10
    assert results[47][1] > results[47][2] * 1.5
    assert results[7][1] > results[7][2] * 1.2
