"""Guard against simulator performance regressions.

Re-measures the engine benchmarks (quick mode) and compares each metric
against the committed ``current`` block of ``BENCH_simulator.json``.
Fails (exit 1) if any metric falls more than ``--tolerance`` below the
baseline; improvements always pass.  Wall-clock numbers on shared
machines are noisy, hence the generous default tolerance -- the guard
catches integer-factor regressions (a broken fast path), not percent
drift.

Usage::

    PYTHONPATH=src python benchmarks/perf_check.py
    PYTHONPATH=src python benchmarks/perf_check.py --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys

from perf_report import RESULTS_PATH, measure


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional shortfall per metric (default 0.30)",
    )
    ap.add_argument("--baseline", default=RESULTS_PATH)
    args = ap.parse_args(argv)

    try:
        with open(args.baseline) as fh:
            doc = json.load(fh)
        committed = doc["current"]
    except (OSError, KeyError) as exc:
        print(f"no committed 'current' baseline in {args.baseline}: {exc}")
        print("run `make perf` first to record one")
        return 2

    fresh = measure(quick=True)
    failed = []
    width = max(len(k) for k in fresh)
    for key, value in fresh.items():
        base = committed.get(key)
        if not isinstance(base, (int, float)) or base <= 0:
            continue
        ratio = value / base
        verdict = "ok" if ratio >= 1.0 - args.tolerance else "REGRESSED"
        if verdict != "ok":
            failed.append(key)
        print(f"{key:<{width}}  {value:>12.3f}  vs {base:>12.3f}  "
              f"({ratio:5.2f}x)  {verdict}")

    if failed:
        print(f"\nFAIL: {len(failed)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(failed)}")
        return 1
    print("\nall engine benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
