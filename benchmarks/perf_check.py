"""Guard against simulator performance regressions.

Re-measures the engine benchmarks (quick mode) and compares each metric
against the committed ``current`` block of ``BENCH_simulator.json``.
Fails (exit 1) if any metric falls more than ``--tolerance`` below the
baseline; improvements always pass.  Wall-clock numbers on shared
machines are noisy, hence the generous default tolerance -- the guard
catches integer-factor regressions (a broken fast path), not percent
drift.

Also guards the *service tax*: the fault-free simulated-latency overhead
of the election-enabled broadcast service over the bare baseline
broadcast.  Simulated time is deterministic, so this check is exact --
it fails the moment membership/election bookkeeping leaks onto the
fault-free path.  The *rbc tax* check does the same for Byzantine mode:
the echo/ready quorum rounds must stay cheap relative to the crash-only
service they harden, and the *resilience tax* check prices the adaptive
configuration (phi-accrual detection + paced retry policies) against
the fixed-deadline service -- pauses only fire on actual re-sends, so
a fault-free run must stay under ``--max-resilience-tax`` percent.

Usage::

    PYTHONPATH=src python benchmarks/perf_check.py
    PYTHONPATH=src python benchmarks/perf_check.py --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys

from perf_report import RESULTS_PATH, measure


def service_tax_pct() -> float:
    """Fault-free election-enabled service latency overhead (percent)
    over the bare baseline broadcast, on the 48-core chip with the
    three-chunk adversarial message size.  Deterministic."""
    from repro.bench import FaultCampaign
    from repro.scc import SccChip
    from repro.scc.config import CACHE_LINE

    campaign = FaultCampaign(trials=1, nbytes=3 * 96 * CACHE_LINE)
    base = campaign._bcast_once(SccChip(campaign.config), ft=False)
    svc = campaign.service_latency_once()
    return (svc / base - 1.0) * 100.0


def rbc_tax_pct() -> float:
    """Fault-free Byzantine-mode latency overhead (percent) over the
    crash-only service, on the 48-core chip with the single-chunk
    message size -- the worst case for the RBC rounds (one echo/ready
    vote per message, so nothing amortises).  Deterministic."""
    from repro.bench import FaultCampaign
    from repro.scc.config import CACHE_LINE

    campaign = FaultCampaign(trials=1, nbytes=96 * CACHE_LINE, byz=True)
    svc = campaign.service_latency_once()
    byz = campaign.byz_latency_once()
    return (byz / svc - 1.0) * 100.0


def resilience_tax_pct() -> float:
    """Fault-free adaptive-configuration latency overhead (percent)
    over the fixed-deadline service: phi-accrual bookkeeping plus the
    paced retry policies, measured on the same seeded multi-broadcast
    stream.  Policy pauses only fire on actual re-sends, so a clean run
    should price the whole resilience layer at (near) zero.
    Deterministic."""
    from repro.bench import ChurnCampaign

    campaign = ChurnCampaign(trials=1, broadcasts=3)
    fixed = campaign.latency_once(adaptive=False)
    adaptive = campaign.latency_once(adaptive=True)
    return (adaptive / fixed - 1.0) * 100.0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional shortfall per metric (default 0.30)",
    )
    ap.add_argument(
        "--max-service-tax", type=float, default=5.0,
        help="max fault-free service (election-enabled) latency overhead "
             "over the baseline broadcast, percent (default 5.0)",
    )
    ap.add_argument(
        "--max-rbc-tax", type=float, default=15.0,
        help="max fault-free Byzantine-mode (Bracha RBC) latency overhead "
             "over the crash-only service, percent (default 15.0)",
    )
    ap.add_argument(
        "--max-resilience-tax", type=float, default=5.0,
        help="max fault-free adaptive-configuration (phi accrual + retry "
             "policies) latency overhead over the fixed-deadline service, "
             "percent (default 5.0)",
    )
    ap.add_argument(
        "--min-analytic-speedup", type=float, default=20.0,
        help="min ratio of adaptive-fidelity fault-free campaign "
             "throughput over the committed kernel campaign throughput "
             "(default 20.0 -- the ANALYTIC mode's raison d'etre)",
    )
    ap.add_argument("--baseline", default=RESULTS_PATH)
    args = ap.parse_args(argv)

    try:
        with open(args.baseline) as fh:
            doc = json.load(fh)
        committed = doc["current"]
    except (OSError, KeyError) as exc:
        print(f"no committed 'current' baseline in {args.baseline}: {exc}")
        print("run `make perf` first to record one")
        return 2

    fresh = measure(quick=True)
    failed = []
    width = max(len(k) for k in fresh)
    for key, value in fresh.items():
        base = committed.get(key)
        if not isinstance(base, (int, float)) or base <= 0:
            continue
        ratio = value / base
        verdict = "ok" if ratio >= 1.0 - args.tolerance else "REGRESSED"
        if verdict != "ok":
            failed.append(key)
        print(f"{key:<{width}}  {value:>12.3f}  vs {base:>12.3f}  "
              f"({ratio:5.2f}x)  {verdict}")

    tax = service_tax_pct()
    tax_ok = tax < args.max_service_tax
    print(f"{'service tax':<{width}}  {tax:>11.2f}%  vs "
          f"{args.max_service_tax:>11.2f}%  "
          f"{'ok' if tax_ok else 'REGRESSED'}")
    if not tax_ok:
        failed.append("service_tax")

    rbc = rbc_tax_pct()
    rbc_ok = rbc < args.max_rbc_tax
    print(f"{'rbc tax':<{width}}  {rbc:>11.2f}%  vs "
          f"{args.max_rbc_tax:>11.2f}%  "
          f"{'ok' if rbc_ok else 'REGRESSED'}")
    if not rbc_ok:
        failed.append("rbc_tax")

    res = resilience_tax_pct()
    res_ok = res < args.max_resilience_tax
    print(f"{'resilience tax':<{width}}  {res:>11.2f}%  vs "
          f"{args.max_resilience_tax:>11.2f}%  "
          f"{'ok' if res_ok else 'REGRESSED'}")
    if not res_ok:
        failed.append("resilience_tax")

    # Structural guard: the whole point of ANALYTIC mode is integer-factor
    # campaign speedups, so the adaptive fault-free path must stay >= 20x
    # the committed kernel campaign throughput (both are trials/sec; the
    # committed figure is the fault-free sweep path this PR accelerated).
    kernel_tps = committed.get("campaign_trials_per_sec", 0)
    ana_tps = fresh.get("campaign_trials_per_sec_analytic", 0)
    if kernel_tps and ana_tps:
        speedup = ana_tps / kernel_tps
        speedup_ok = speedup >= args.min_analytic_speedup
        print(f"{'analytic speedup':<{width}}  {speedup:>11.1f}x  vs "
              f"{args.min_analytic_speedup:>11.1f}x  "
              f"{'ok' if speedup_ok else 'REGRESSED'}")
        if not speedup_ok:
            failed.append("analytic_speedup")

    if failed:
        print(f"\nFAIL: {len(failed)} metric(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(failed)}")
        return 1
    print("\nall engine benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
