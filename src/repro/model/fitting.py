"""Least-squares recovery of the model parameters from measurements.

The Table 1 parameters enter every put/get completion time linearly, so a
sweep of measured completion times over message sizes and distances
determines them by ordinary least squares.  The paper fits its Table 1
from hardware micro-benchmarks (Figure 3); we fit from the simulator's
micro-benchmarks, closing the loop: config constants -> simulated
behaviour -> fitted parameters =~ config constants.

Observation kinds and their linear forms (m lines, distances in hops):

- ``put_mpb``  (MPB->MPB):  o_put_mpb + 2m*o_mpb + (2m + 2m*d_dst)*l_hop
- ``get_mpb``  (MPB->MPB):  o_get_mpb + 2m*o_mpb + (2m*d_src + 2m)*l_hop
- ``put_mem``  (mem->MPB):  o_put_mem + m*o_mem_r + m*o_mpb
                            + (2m*d_src + 2m*d_dst)*l_hop
- ``get_mem``  (MPB->mem):  o_get_mem + m*o_mpb + m*o_mem_w
                            + (2m*d_src + 2m*d_dst)*l_hop
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .params import ModelParams

#: Order of the unknown vector theta.
PARAM_NAMES: tuple[str, ...] = (
    "l_hop",
    "o_mpb",
    "o_mem_w",
    "o_mem_r",
    "o_put_mpb",
    "o_get_mpb",
    "o_put_mem",
    "o_get_mem",
)

KINDS = ("put_mpb", "get_mpb", "put_mem", "get_mem")


@dataclass(frozen=True)
class Observation:
    """One measured completion time."""

    kind: str
    m: int
    d_src: int
    d_dst: int
    time: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown observation kind {self.kind!r}")
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.d_src < 1 or self.d_dst < 1:
            raise ValueError("distances must be >= 1")


def design_row(obs: Observation) -> np.ndarray:
    """The row of the design matrix for one observation."""
    m, ds, dd = obs.m, obs.d_src, obs.d_dst
    row = np.zeros(len(PARAM_NAMES))
    i = {name: j for j, name in enumerate(PARAM_NAMES)}
    if obs.kind == "put_mpb":
        row[i["o_put_mpb"]] = 1.0
        row[i["o_mpb"]] = 2.0 * m
        row[i["l_hop"]] = 2.0 * m + 2.0 * m * dd
    elif obs.kind == "get_mpb":
        row[i["o_get_mpb"]] = 1.0
        row[i["o_mpb"]] = 2.0 * m
        row[i["l_hop"]] = 2.0 * m * ds + 2.0 * m
    elif obs.kind == "put_mem":
        row[i["o_put_mem"]] = 1.0
        row[i["o_mem_r"]] = float(m)
        row[i["o_mpb"]] = float(m)
        row[i["l_hop"]] = 2.0 * m * ds + 2.0 * m * dd
    else:  # get_mem
        row[i["o_get_mem"]] = 1.0
        row[i["o_mpb"]] = float(m)
        row[i["o_mem_w"]] = float(m)
        row[i["l_hop"]] = 2.0 * m * ds + 2.0 * m * dd
    return row


@dataclass(frozen=True)
class FitResult:
    params: ModelParams
    residual_rms: float
    n_observations: int

    def compare(self, reference: ModelParams) -> dict[str, tuple[float, float, float]]:
        """Per-parameter (fitted, reference, relative error)."""
        fitted = self.params.as_dict()
        ref = reference.as_dict()
        out = {}
        for name in PARAM_NAMES:
            f, r = fitted[name], ref[name]
            rel = abs(f - r) / r if r else float("inf")
            out[name] = (f, r, rel)
        return out


def fit(observations: Iterable[Observation]) -> FitResult:
    """Ordinary least squares over all observation kinds jointly."""
    obs: Sequence[Observation] = list(observations)
    if len(obs) < len(PARAM_NAMES):
        raise ValueError(
            f"need at least {len(PARAM_NAMES)} observations, got {len(obs)}"
        )
    kinds_seen = {o.kind for o in obs}
    missing = set(KINDS) - kinds_seen
    if missing:
        raise ValueError(
            f"observations must cover every kind; missing {sorted(missing)}"
        )
    a = np.vstack([design_row(o) for o in obs])
    y = np.array([o.time for o in obs])
    theta, *_ = np.linalg.lstsq(a, y, rcond=None)
    resid = a @ theta - y
    rms = float(np.sqrt(np.mean(resid**2)))
    params = ModelParams(**dict(zip(PARAM_NAMES, map(float, theta))))
    return FitResult(params=params, residual_rms=rms, n_observations=len(obs))
