"""Analytic design-space exploration beyond the paper's formulas.

The paper makes two design assertions without printed derivations:

1. "It can be shown analytically that a binary tree provides the lowest
   notification latency, when compared to trees of higher output
   degrees" (Section 4.1).  :func:`notification_latency` computes the
   critical-path latency of a d-ary notification tree over j children
   under the flag-cost model, and :func:`optimal_notify_degree` searches
   it -- showing binary is optimal when detection costs roughly match
   write costs, and by how little degree 3 loses (cf. the A1 ablation).
2. k is "chosen to avoid contention" while minimising depth (Sections
   3.3/5.2).  :func:`recommended_k` encodes that rule: the largest k at
   or below the contention threshold that still reduces tree depth.

:func:`osag_throughput` models the Section 5.4 one-sided
scatter-allgather we implement in :mod:`repro.core.osag`, giving the
bench a model line to compare against.
"""

from __future__ import annotations

from ..core.trees import NotificationTree, kary_depth
from ..scc.config import CACHE_LINE
from .broadcast import detect_cost, flag_write_cost
from .params import ModelParams
from .primitives import c_get_mem, c_get_mpb, c_mem_read, c_mem_write, c_put_mem


def notification_latency(
    j: int, degree: int, p: ModelParams, *, d: int = 1
) -> float:
    """Time from the family parent raising the first flag until the last
    of its ``j`` children has detected its notification.

    Each node relays to its (up to ``degree``) notification children
    sequentially: the i-th flag write leaves ``i`` write costs after the
    relayer's own detection, and every edge adds one detection.
    """
    if j < 0:
        raise ValueError("j must be >= 0")
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if j == 0:
        return 0.0
    tree = NotificationTree(j, degree)
    w = flag_write_cost(p, d)
    det = detect_cost(p, 1)

    # arrival[slot] = time the notification is detected at `slot`.
    arrival = [0.0] * (j + 1)  # slot 0 = parent, detected at t=0
    for slot in range(0, j + 1):
        targets = tree.notify_targets(slot)
        for i, t in enumerate(targets):
            arrival[t] = arrival[slot] + (i + 1) * w + det
    return max(arrival[1:])


def optimal_notify_degree(
    j: int, p: ModelParams, *, d: int = 1, max_degree: int | None = None
) -> tuple[int, float]:
    """The degree minimising :func:`notification_latency` for a family of
    ``j`` children (ties broken toward the smaller degree)."""
    if j == 0:
        return 1, 0.0
    hi = max_degree if max_degree is not None else j
    best = min(
        range(1, hi + 1),
        key=lambda deg: (round(notification_latency(j, deg, p, d=d), 9), deg),
    )
    return best, notification_latency(j, best, p, d=d)


def recommended_k(
    P: int, contention_threshold: int = 24
) -> int:
    """The paper's k selection rule: the smallest fan-out achieving the
    minimum tree depth reachable without exceeding the MPB contention
    threshold (Section 5.2 picks k=7 for P=48: depth 2, same as any
    k <= 24 can do, with the least polling)."""
    if P < 2:
        return 1
    best_depth = kary_depth(P, min(contention_threshold, P - 1))
    for k in range(1, min(contention_threshold, P - 1) + 1):
        if kary_depth(P, k) == best_depth:
            return k
    return min(contention_threshold, P - 1)  # pragma: no cover


def osag_throughput(
    P: int, p: ModelParams, *, slice_lines: int = 48, d_mpb: int = 1, d_mem: int = 1
) -> float:
    """Peak throughput (MB/s) of the one-sided scatter-allgather.

    Per segment of ``P`` slices: the scatter phase moves every byte once
    through a send/recv pair (off-chip bound), then ``P - 1`` ring rounds
    each cost one MPB-to-MPB forward plus one MPB-to-memory assembly at
    every core (the rounds are lock-stepped, so the per-round time is a
    single node's serial work plus the flag handshakes).
    """
    if P < 2:
        raise ValueError("P must be >= 2")
    m = slice_lines
    sync = 2 * (flag_write_cost(p, d_mpb) + detect_cost(p, 1))
    # Scatter: a binomial tree moves ~P*m lines total over the critical
    # path of log2 P levels; the root's sends dominate: it transmits
    # (P-1)/P of the segment, stop-and-wait, off-chip on both ends.
    scatter = (P - 1) * (
        p.o_put_mem
        + m * (c_mem_read(p, d_mem) + 0)  # source read (uncached)
        + m * (p.o_mpb + 2 * d_mpb * p.l_hop)  # stage into own MPB
        + c_get_mem(p, m, d_mpb, d_mem)  # receiver drains to memory
        + sync
    )
    ring_round = (
        c_get_mpb(p, m, d_mpb)  # forward: neighbour's MPB -> own MPB
        + c_get_mem(p, m, d_mpb, d_mem)  # assembly: own MPB -> memory
        + 2 * (flag_write_cost(p, d_mpb) + detect_cost(p, 1))
    )
    total = scatter + (P - 1) * ring_round
    return (P * m * CACHE_LINE) / total


def mpmd_overhead_per_chunk(p: ModelParams, *, t_ipi_send: float = 0.3,
                            t_ipi_handler: float = 1.0) -> float:
    """Extra notification cost per chunk of the interrupt-driven MPMD
    broadcast relative to flag polling (Section 7 extension): IPI entry
    replaces the detection sweep on every hop of the notification path."""
    return (t_ipi_send + t_ipi_handler) - (
        flag_write_cost(p, 1) + detect_cost(p, 1)
    )
