"""Formulas 13-16: analytic broadcast latency and throughput.

Two fidelity levels per algorithm:

- ``*_simple`` -- the paper's printed critical-path formulas (Figure 7),
  which ignore notification/synchronisation costs.
- ``*_complete`` -- our reconstruction of the "complete formulas" the
  paper defers to its full version: the same data-movement critical path
  plus flag writes, polling detection delays, notification-tree depth and
  multi-chunk pipelining.  The accounting matches the simulator's
  protocol step by step, so Section 5's model-vs-experiment comparison
  can be reproduced (Figure 6 vs Figure 8).

Message sizes ``m`` are in cache lines; results in microseconds (latency)
or MB/s (throughput; 32-byte cache lines, 1 MB = 1e6 bytes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.trees import NotificationTree, kary_depth
from ..scc.config import CACHE_LINE
from .params import ModelParams
from .primitives import (
    c_get_mem,
    c_get_mpb,
    c_mem_read,
    c_mem_write,
    c_mpb_read,
    c_mpb_write,
    c_put_mem,
)

#: The paper's OC-Bcast chunk size in cache lines.
M_OC = 96
#: RCCE's payload buffer in cache lines.
M_RCCE = 251


def _chunk_sizes(m: int, chunk: int) -> list[int]:
    """Chunk decomposition of an m-cache-line message."""
    if m <= 0:
        return []
    full, rest = divmod(m, chunk)
    return [chunk] * full + ([rest] if rest else [])


def flag_write_cost(p: ModelParams, d: int = 1) -> float:
    """Setting a remote flag: a 1-line put from a register/L1 source."""
    return p.o_put_mpb + c_mpb_write(p, d)


def detect_cost(p: ModelParams, nflags: int = 1) -> float:
    """Noticing a newly set flag while sweeping ``nflags`` flags: half a
    sweep on average plus the final read (the simulator's model)."""
    return (0.5 * nflags + 1.0) * p.t_poll


def notify_hop(p: ModelParams, nflags: int = 1, d: int = 1) -> float:
    """One notification edge: flag write plus detection at the waiter."""
    return flag_write_cost(p, d) + detect_cost(p, nflags)


# ---------------------------------------------------------------------------
# OC-Bcast latency
# ---------------------------------------------------------------------------

def ocbcast_latency_simple(
    P: int, m: int, k: int, p: ModelParams, *, chunk: int = M_OC,
    d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Formula 13, extended to multi-chunk messages by pipelining: the
    first chunk pays the full tree path; each further chunk adds one
    bottleneck-node cycle (MPB get + memory get, cf. Formula 15)."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if m <= 0 or P == 1:
        return 0.0
    chunks = _chunk_sizes(m, chunk)
    depth = kary_depth(P, k)
    first = chunks[0]
    lat = (
        c_put_mem(p, first, d_mem, d_mpb)
        + depth * c_get_mpb(p, first, d_mpb)
        + c_get_mem(p, first, d_mpb, d_mem)
    )
    for c in chunks[1:]:
        lat += c_get_mpb(p, c, d_mpb) + c_get_mem(p, c, d_mpb, d_mem)
    return lat


def ocbcast_node_cycle(
    p: ModelParams, c: int, k: int, *, notify_degree: int = 2,
    d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Steady-state per-chunk cycle of a non-root node (the pipeline
    bottleneck): detection, sibling relays, MPB get, doneFlag, own-child
    notifications, memory get."""
    relays = notify_degree  # worst case: a node relays to d siblings
    return (
        detect_cost(p, 1)
        + relays * flag_write_cost(p, d_mpb)
        + c_get_mpb(p, c, d_mpb)
        + flag_write_cost(p, d_mpb)           # doneFlag at the parent
        + notify_degree * flag_write_cost(p, d_mpb)  # own children
        + c_get_mem(p, c, d_mpb, d_mem)
    )


def ocbcast_latency_complete(
    P: int, m: int, k: int, p: ModelParams, *, chunk: int = M_OC,
    notify_degree: int = 2, d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Complete OC-Bcast latency: data path + notification trees +
    polling + pipelining, mirroring the implemented protocol."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if m <= 0 or P == 1:
        return 0.0
    chunks = _chunk_sizes(m, chunk)
    depth = kary_depth(P, k)
    first = chunks[0]
    nchild_root = min(k, P - 1)
    notif_depth = NotificationTree(nchild_root, notify_degree).depth()

    # First chunk reaches the deepest leaf: root staging, then per level a
    # notification chain down the family tree plus the parallel MPB get.
    lat = c_put_mem(p, first, d_mem, d_mpb)
    for _ in range(depth):
        lat += notif_depth * notify_hop(p, 1, d_mpb) + c_get_mpb(p, first, d_mpb)
    lat += c_get_mem(p, first, d_mpb, d_mem)

    # Remaining chunks drain at the bottleneck node's cycle.
    for c in chunks[1:]:
        lat += ocbcast_node_cycle(
            p, c, k, notify_degree=notify_degree, d_mpb=d_mpb, d_mem=d_mem
        )

    # The root may return last for large k: it stages every chunk and then
    # polls its k doneFlags (the paper's "47 flags to poll" effect).
    root_finish = 0.0
    for c in chunks:
        root_finish += c_put_mem(p, c, d_mem, d_mpb) + notify_degree * flag_write_cost(p, d_mpb)
    root_finish += (
        notif_depth * notify_hop(p, 1, d_mpb)
        + c_get_mpb(p, chunks[-1], d_mpb)
        + flag_write_cost(p, d_mpb)
        + detect_cost(p, nchild_root)
    )
    return max(lat, root_finish)


def ocbcast_latency_complete_batch(
    P: int, sizes, k: int, p: ModelParams, *, chunk: int = M_OC,
    notify_degree: int = 2, d_mpb: int = 1, d_mem: int = 1,
) -> np.ndarray:
    """Vectorised :func:`ocbcast_latency_complete` over an array of
    message sizes (cache lines) -- one numpy expression instead of a
    Python loop per size.

    Every per-chunk cost is affine in the chunk size ``c``, so the
    chunk-loop sums collapse to closed forms in ``(m, nchunks)``; agrees
    with the scalar function to floating-point rounding.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    m = np.asarray(sizes, dtype=np.int64)
    if P == 1:
        return np.zeros(m.shape, dtype=np.float64)
    depth = kary_depth(P, k)
    nchild_root = min(k, P - 1)
    notif_depth = NotificationTree(nchild_root, notify_degree).depth()
    nchunks = -(-m // chunk)
    rest = m % chunk
    first = np.minimum(m, chunk)          # chunks[0]
    last = np.where(rest > 0, rest, first)  # chunks[-1]

    # Affine pieces: cost(c) = intercept + c * slope.
    put_mem_slope = c_mem_read(p, d_mem) + c_mpb_write(p, d_mpb)
    get_mpb_slope = c_mpb_read(p, d_mpb) + c_mpb_write(p, 1)
    get_mem_slope = c_mpb_read(p, d_mpb) + c_mem_write(p, d_mem)
    flagw = flag_write_cost(p, d_mpb)
    hop = notify_hop(p, 1, d_mpb)
    cycle_const = (
        detect_cost(p, 1) + notify_degree * flagw + p.o_get_mpb
        + flagw + notify_degree * flagw + p.o_get_mem
    )
    cycle_slope = get_mpb_slope + get_mem_slope

    lat = (
        p.o_put_mem + first * put_mem_slope
        + depth * (notif_depth * hop + p.o_get_mpb) + depth * first * get_mpb_slope
        + p.o_get_mem + first * get_mem_slope
        + (nchunks - 1) * cycle_const + (m - first) * cycle_slope
    )
    root_finish = (
        nchunks * (p.o_put_mem + notify_degree * flagw) + m * put_mem_slope
        + notif_depth * hop
        + p.o_get_mpb + last * get_mpb_slope
        + flagw
        + detect_cost(p, nchild_root)
    )
    return np.where(m > 0, np.maximum(lat, root_finish), 0.0)


# ---------------------------------------------------------------------------
# Binomial-tree latency
# ---------------------------------------------------------------------------

def binomial_levels(P: int) -> int:
    return max(0, math.ceil(math.log2(P))) if P > 1 else 0


def binomial_latency_simple(
    P: int, m: int, p: ModelParams, *, d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Formula 14: ``log2 P`` send/recv levels; only the first level pays
    the off-chip source read (later senders hit their L1)."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if m <= 0 or P == 1:
        return 0.0
    levels = binomial_levels(P)
    per_level = (
        p.o_put_mem
        + m * c_mpb_write(p, d_mpb)        # put with L1-cached source
        + c_get_mem(p, m, d_mpb, d_mem)    # receiver's get to memory
    )
    return levels * per_level + m * c_mem_read(p, d_mem)  # root's cold read


def binomial_latency_complete(
    P: int, m: int, p: ModelParams, *, d_mpb: int = 1, d_mem: int = 1,
    payload: int = M_RCCE,
) -> float:
    """Binomial latency including RCCE chunking (251-line payload buffer)
    and the sent/ack flag handshakes of every send/recv pair."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if m <= 0 or P == 1:
        return 0.0
    levels = binomial_levels(P)
    sync = 2 * (flag_write_cost(p, d_mpb) + detect_cost(p, 1))  # sent + ack
    lat = m * c_mem_read(p, d_mem)  # root's cold read, charged once
    for c in _chunk_sizes(m, payload):
        per_level = (
            p.o_put_mem
            + c * c_mpb_write(p, d_mpb)
            + c_get_mem(p, c, d_mpb, d_mem)
            + sync
        )
        lat += levels * per_level
    return lat


def binomial_latency_complete_batch(
    P: int, sizes, p: ModelParams, *, d_mpb: int = 1, d_mem: int = 1,
    payload: int = M_RCCE,
) -> np.ndarray:
    """Vectorised :func:`binomial_latency_complete` over an array of
    message sizes (cache lines); same closed-form collapse as
    :func:`ocbcast_latency_complete_batch`."""
    if P < 1:
        raise ValueError("P must be >= 1")
    m = np.asarray(sizes, dtype=np.int64)
    if P == 1:
        return np.zeros(m.shape, dtype=np.float64)
    levels = binomial_levels(P)
    sync = 2 * (flag_write_cost(p, d_mpb) + detect_cost(p, 1))
    nchunks = -(-m // payload)
    per_const = p.o_put_mem + p.o_get_mem + sync
    per_slope = (
        c_mpb_write(p, d_mpb) + c_mpb_read(p, d_mpb) + c_mem_write(p, d_mem)
    )
    lat = m * c_mem_read(p, d_mem) + levels * (
        nchunks * per_const + m * per_slope
    )
    return np.where(m > 0, lat, 0.0)


# ---------------------------------------------------------------------------
# Throughput (Formulas 15-16)
# ---------------------------------------------------------------------------

def _to_mb_per_s(cache_lines: float, microseconds: float) -> float:
    return (cache_lines * CACHE_LINE) / microseconds  # B/us == MB/s


def ocbcast_throughput_simple(
    p: ModelParams, *, chunk: int = M_OC, d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Formula 15: pipeline bottleneck = one MPB get + one memory get per
    chunk at every non-root node.  Independent of k."""
    cycle = c_get_mpb(p, chunk, d_mpb) + c_get_mem(p, chunk, d_mpb, d_mem)
    return _to_mb_per_s(chunk, cycle)


def ocbcast_throughput_complete(
    p: ModelParams, k: int = 7, *, chunk: int = M_OC, notify_degree: int = 2,
    d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Peak throughput with flag/notification costs in the node cycle
    (mildly k-dependent, as in the paper's Table 2)."""
    cycle = ocbcast_node_cycle(
        p, chunk, k, notify_degree=notify_degree, d_mpb=d_mpb, d_mem=d_mem
    )
    # The root's cycle (staging + notifications + doneFlag polling) can
    # dominate for very large k.
    nchild = k
    root_cycle = (
        c_put_mem(p, chunk, d_mem, d_mpb)
        + notify_degree * flag_write_cost(p, d_mpb)
        + detect_cost(p, nchild)
    )
    return _to_mb_per_s(chunk, max(cycle, root_cycle))


def scatter_allgather_throughput_simple(
    P: int, p: ModelParams, *, chunk: int = M_OC, d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Formula 16 (unreduced form): a P*Moc message moves through a
    (P-1)-step scatter plus 2(P-1) allgather rounds; all but the first
    P send/recv pairs enjoy L1-cached sources."""
    if P < 2:
        raise ValueError("P must be >= 2")
    total = P * (
        c_put_mem(p, chunk, d_mem, d_mpb) + c_get_mem(p, chunk, d_mpb, d_mem)
    ) + (2 * P - 3) * (
        chunk * c_mpb_write(p, d_mpb) + c_get_mem(p, chunk, d_mpb, d_mem)
    )
    return _to_mb_per_s(P * chunk, total)


def scatter_allgather_throughput_complete(
    P: int, p: ModelParams, *, chunk: int = M_OC, d_mpb: int = 1, d_mem: int = 1,
) -> float:
    """Formula 16 plus per-pair flag handshakes."""
    if P < 2:
        raise ValueError("P must be >= 2")
    sync = 2 * (flag_write_cost(p, d_mpb) + detect_cost(p, 1))
    total = P * (
        c_put_mem(p, chunk, d_mem, d_mpb)
        + c_get_mem(p, chunk, d_mpb, d_mem)
        + sync
    ) + (2 * P - 3) * (
        chunk * c_mpb_write(p, d_mpb)
        + c_get_mem(p, chunk, d_mpb, d_mem)
        + sync
    )
    return _to_mb_per_s(P * chunk, total)


@dataclass(frozen=True)
class ThroughputTable:
    """The analytic comparison of the paper's Table 2 (MB/s)."""

    oc_k2: float
    oc_k7: float
    oc_k47: float
    scatter_allgather: float

    def as_dict(self) -> dict[str, float]:
        return {
            "OC-Bcast k=2": self.oc_k2,
            "OC-Bcast k=7": self.oc_k7,
            "OC-Bcast k=47": self.oc_k47,
            "scatter-allgather": self.scatter_allgather,
        }


def table2(P: int = 48, p: ModelParams = ModelParams(), complete: bool = True) -> ThroughputTable:
    """Reproduce Table 2 for ``P`` cores."""
    if complete:
        return ThroughputTable(
            oc_k2=ocbcast_throughput_complete(p, 2),
            oc_k7=ocbcast_throughput_complete(p, 7),
            oc_k47=ocbcast_throughput_complete(p, min(47, P - 1)),
            scatter_allgather=scatter_allgather_throughput_complete(P, p),
        )
    simple = ocbcast_throughput_simple(p)
    return ThroughputTable(
        oc_k2=simple,
        oc_k7=simple,
        oc_k47=simple,
        scatter_allgather=scatter_allgather_throughput_simple(P, p),
    )
