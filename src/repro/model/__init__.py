"""The paper's LogP-based analytical model (Sections 3 and 5).

- :mod:`repro.model.params` -- the parameter set of Table 1.
- :mod:`repro.model.primitives` -- Formulas 1-12: latency and completion
  time of MPB/memory read/write and of one-sided put/get.
- :mod:`repro.model.broadcast` -- Formulas 13-16: broadcast latency and
  throughput critical paths, plus "complete" variants with notification
  and polling costs.
- :mod:`repro.model.fitting` -- least-squares recovery of Table 1 from
  measured (simulated) put/get sweeps, closing the model-vs-measurement
  loop of Figure 3.
- :mod:`repro.model.design` -- design-space analysis: notification-tree
  degree optimality (Section 4.1's claim), the k selection rule, and
  models for the Section 5.4/7 extensions.
"""

from .params import TABLE_1, ModelParams
from . import broadcast, design, fitting, primitives

__all__ = ["TABLE_1", "ModelParams", "broadcast", "design", "fitting", "primitives"]
