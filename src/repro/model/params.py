"""Model parameters (the paper's Table 1).

All values in microseconds; message sizes in cache lines; distances in
router hops.  :meth:`ModelParams.from_config` derives the parameter set
from a simulator configuration so model and simulation stay in sync when
a study changes a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..scc.config import SccConfig


@dataclass(frozen=True)
class ModelParams:
    """LogP-style parameters of the SCC communication model."""

    #: Per-router traversal time of one cache-line packet.
    l_hop: float = 0.005
    #: Core overhead of one cache-line MPB read or write.
    o_mpb: float = 0.126
    #: Overhead of writing one cache line to off-chip memory.
    o_mem_w: float = 0.461
    #: Overhead of reading one cache line from off-chip memory.
    o_mem_r: float = 0.208
    #: Call overhead of put() from an MPB source.
    o_put_mpb: float = 0.069
    #: Call overhead of get() to an MPB destination.
    o_get_mpb: float = 0.33
    #: Call overhead of put() from an off-chip source.
    o_put_mem: float = 0.19
    #: Call overhead of get() to an off-chip destination.
    o_get_mem: float = 0.095
    #: Cost of polling one flag (extension of the paper's model used by
    #: the "complete" broadcast formulas; an L1 invalidate plus local MPB
    #: read, roughly two o_mpb).
    t_poll: float = 0.25

    @classmethod
    def from_config(cls, config: SccConfig) -> "ModelParams":
        """The parameter set matching a simulator configuration."""
        return cls(
            l_hop=config.l_hop,
            o_mpb=config.o_mpb,
            o_mem_w=config.o_mem_w,
            o_mem_r=config.o_mem_r,
            o_put_mpb=config.o_put_mpb,
            o_get_mpb=config.o_get_mpb,
            o_put_mem=config.o_put_mem,
            o_get_mem=config.o_get_mem,
            t_poll=config.t_poll,
        )

    def with_(self, **changes: Any) -> "ModelParams":
        return replace(self, **changes)

    def as_dict(self) -> dict[str, float]:
        return {
            "l_hop": self.l_hop,
            "o_mpb": self.o_mpb,
            "o_mem_w": self.o_mem_w,
            "o_mem_r": self.o_mem_r,
            "o_put_mpb": self.o_put_mpb,
            "o_get_mpb": self.o_get_mpb,
            "o_put_mem": self.o_put_mem,
            "o_get_mem": self.o_get_mem,
        }


#: The values measured on real silicon (paper Table 1).
TABLE_1 = ModelParams()
