"""Formulas 1-12: the put/get communication model (paper Figure 2).

Conventions follow the paper exactly: ``m`` is the message size in cache
lines; ``d`` the number of routers traversed (>= 1); ``L`` is latency
(data available at the destination), ``C`` completion time (operation
returns at the caller).  Local MPB accesses use ``d = 1``.
"""

from __future__ import annotations

from .params import ModelParams


def _check(m: int | None = None, d: int | None = None) -> None:
    if m is not None and m < 0:
        raise ValueError(f"message size must be >= 0 cache lines, got {m}")
    if d is not None and d < 1:
        raise ValueError(f"distance must be >= 1 hop, got {d}")


# -- MPB read/write (Formulas 1-3) -----------------------------------------

def l_mpb_write(p: ModelParams, d: int) -> float:
    """(1) Latency of writing one cache line to an MPB at distance d."""
    _check(d=d)
    return p.o_mpb + d * p.l_hop


def c_mpb_write(p: ModelParams, d: int) -> float:
    """(2) Completion of the same write (waits for the acknowledgment)."""
    _check(d=d)
    return p.o_mpb + 2 * d * p.l_hop


def c_mpb_read(p: ModelParams, d: int) -> float:
    """(3) Latency = completion of reading one cache line from an MPB
    (request out, cache line back)."""
    _check(d=d)
    return p.o_mpb + 2 * d * p.l_hop


l_mpb_read = c_mpb_read


# -- off-chip read/write (Formulas 4-6) ---------------------------------------

def l_mem_write(p: ModelParams, d: int) -> float:
    """(4) Latency of writing one cache line to off-chip memory."""
    _check(d=d)
    return p.o_mem_w + d * p.l_hop


def c_mem_write(p: ModelParams, d: int) -> float:
    """(5) Completion of the same write."""
    _check(d=d)
    return p.o_mem_w + 2 * d * p.l_hop


def c_mem_read(p: ModelParams, d: int) -> float:
    """(6) Latency = completion of reading one cache line from memory."""
    _check(d=d)
    return p.o_mem_r + 2 * d * p.l_hop


l_mem_read = c_mem_read


# -- put (Formulas 7-10) -------------------------------------------------------

def c_put_mpb(p: ModelParams, m: int, d_dst: int) -> float:
    """(7) Completion of put: local MPB -> MPB at distance d_dst."""
    _check(m, d_dst)
    return p.o_put_mpb + m * c_mpb_read(p, 1) + m * c_mpb_write(p, d_dst)


def c_put_mem(p: ModelParams, m: int, d_src: int = 1, d_dst: int = 1) -> float:
    """(8) Completion of put: private memory (MC at d_src) -> MPB at d_dst."""
    _check(m, d_src)
    _check(d=d_dst)
    return p.o_put_mem + m * c_mem_read(p, d_src) + m * c_mpb_write(p, d_dst)


def l_put_mpb(p: ModelParams, m: int, d_dst: int) -> float:
    """(9) Latency of put from local MPB (last write unacknowledged)."""
    _check(m, d_dst)
    if m == 0:
        return p.o_put_mpb
    return (
        p.o_put_mpb
        + m * c_mpb_read(p, 1)
        + (m - 1) * c_mpb_write(p, d_dst)
        + l_mpb_write(p, d_dst)
    )


def l_put_mem(p: ModelParams, m: int, d_src: int = 1, d_dst: int = 1) -> float:
    """(10) Latency of put from private memory."""
    _check(m, d_src)
    _check(d=d_dst)
    if m == 0:
        return p.o_put_mem
    return (
        p.o_put_mem
        + m * c_mem_read(p, d_src)
        + (m - 1) * c_mpb_write(p, d_dst)
        + l_mpb_write(p, d_dst)
    )


# -- get (Formulas 11-12) --------------------------------------------------------

def c_get_mpb(p: ModelParams, m: int, d_src: int) -> float:
    """(11) Latency = completion of get: MPB at d_src -> local MPB."""
    _check(m, d_src)
    return p.o_get_mpb + m * c_mpb_read(p, d_src) + m * c_mpb_write(p, 1)


l_get_mpb = c_get_mpb


def c_get_mem(p: ModelParams, m: int, d_src: int = 1, d_dst: int = 1) -> float:
    """(12) Latency = completion of get: MPB at d_src -> private memory
    (MC at d_dst)."""
    _check(m, d_src)
    _check(d=d_dst)
    return p.o_get_mem + m * c_mpb_read(p, d_src) + m * c_mem_write(p, d_dst)


l_get_mem = c_get_mem
