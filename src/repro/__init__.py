"""repro -- OC-Bcast on a simulated Intel SCC.

A production-quality reproduction of *"High-Performance RMA-Based
Broadcast on the Intel SCC"* (Petrovic, Shahmirzadi, Ropars, Schiper;
SPAA 2012): the OC-Bcast algorithm, the RCCE-style communication stack
and RCCE_comm baselines it is compared against, a discrete-event model of
the SCC chip standing in for the retired hardware, and the paper's
LogP-based analytical model.

Quickstart::

    from repro import SccChip, Comm, OcBcast, run_spmd

    chip = SccChip()
    comm = Comm(chip)
    oc = OcBcast(comm)
    payload = b"hello many-core" * 100

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(len(payload))
        if cc.rank == 0:
            buf.write(payload)
        yield from oc.bcast(cc, root=0, buf=buf, nbytes=len(payload))
        return buf.read()

    result = run_spmd(chip, program)
    assert all(v == payload for v in result.values)
    print(f"broadcast latency: {result.makespan:.2f} us")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .collectives import (
    BarrierState,
    ReduceOp,
    binomial_bcast,
    binomial_gather,
    binomial_reduce,
    binomial_scatter,
    dissemination_barrier,
    ring_allgather,
    scatter_allgather_bcast,
)
from .core import (
    NotifyMode,
    OcBarrier,
    OcBcast,
    OcBcastConfig,
    OcReduce,
    OsagBcast,
    PropagationTree,
    topology_aware_order,
)
from .member import (
    MembershipConfig,
    MembershipService,
    MembershipView,
    OcBcastService,
)
from .model import TABLE_1, ModelParams
from .mpi import Mpi, MpiRank
from .rcce import Comm, CoreComm
from .scc import ContentionMode, MemRef, SccChip, SccConfig, SpmdResult, run_spmd

__version__ = "1.0.0"

__all__ = [
    "BarrierState",
    "Comm",
    "ContentionMode",
    "CoreComm",
    "MemRef",
    "MembershipConfig",
    "MembershipService",
    "MembershipView",
    "ModelParams",
    "OcBcastService",
    "Mpi",
    "MpiRank",
    "NotifyMode",
    "OcBarrier",
    "OcBcast",
    "OcBcastConfig",
    "OcReduce",
    "OsagBcast",
    "PropagationTree",
    "ReduceOp",
    "SccChip",
    "SccConfig",
    "SpmdResult",
    "TABLE_1",
    "binomial_bcast",
    "binomial_gather",
    "binomial_reduce",
    "binomial_scatter",
    "dissemination_barrier",
    "ring_allgather",
    "run_spmd",
    "scatter_allgather_bcast",
    "topology_aware_order",
    "__version__",
]
