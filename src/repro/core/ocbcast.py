"""OC-Bcast: pipelined k-ary-tree broadcast on one-sided RMA.

The paper's algorithm (Section 4), with every mechanism implemented:

- **k-ary propagation tree** -- the k children of a node get each message
  chunk *in parallel* from their parent's MPB (one-sided ``get``), with k
  chosen below the MPB contention threshold (Section 3.3).
- **Binary notification trees** -- a parent raises its children's
  ``notifyFlag`` through a small binary tree spanning the family (itself
  plus its k children), so notification costs O(log k) serial flag writes
  instead of k (Figure 5).
- **doneFlags** -- k flags in each parent's MPB, one per child; a child
  sets its slot after copying a chunk out of the parent's buffer, and the
  parent reuses a buffer only when every child has consumed its previous
  occupant.
- **Chunking, pipelining and double buffering** (Section 4.2) -- messages
  move in chunks of ``M_oc = 96`` cache lines through (by default) two
  MPB buffers, so a parent fills one buffer while children drain the
  other and steady-state throughput is bounded by one MPB-to-MPB get plus
  one MPB-to-memory get per chunk (Formula 15).

Flags carry monotonically increasing sequence numbers (one per chunk,
across all broadcasts on the same :class:`OcBcast` instance) instead of
booleans, so they never need clearing -- the protocol's buffer-recycling
waits double as flag recycling.

Per-core protocol for an intermediate node, chunk by chunk (the paper's
steps (i)-(v)): wait for ``notifyFlag``; (i) relay the notification to
its notification-children among its *siblings*; (wait for its own
children to free the target buffer;) (ii) get the chunk from the parent's
MPB into its own MPB; (iii) set its ``doneFlag`` at the parent; (iv)
notify its own propagation children; (v) get the chunk from its MPB to
private off-chip memory.

Options beyond the paper's defaults (all ablation subjects):
``num_buffers=1`` disables double buffering; ``notify_degree`` changes
the notification-tree arity; ``leaf_direct_to_memory`` applies the
Section 5.4 leaf optimisation; ``NotifyMode.INTERRUPT`` models the
Section 7 interrupt-driven notification (no polling detection delay).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from ..rcce.flags import Flag, FlagValue
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef
from .trees import NotificationTree, PropagationTree

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: The paper's chunk size: 96 cache lines (leaves room for flags with any k).
DEFAULT_CHUNK_LINES = 96


class NotifyMode(enum.Enum):
    """How children learn that a chunk is available."""

    #: MPB flags, polled by the waiting core (the paper's design).
    FLAGS = "flags"
    #: Inter-core interrupts (the paper's Section 7 extension): the waiter
    #: pays a fixed handler cost instead of a polling detection delay.
    INTERRUPT = "interrupt"


@dataclass(frozen=True)
class OcBcastConfig:
    """Tuning knobs of one OC-Bcast instance."""

    k: int = 7
    chunk_lines: int = DEFAULT_CHUNK_LINES
    num_buffers: int = 2
    notify_degree: int = 2
    leaf_direct_to_memory: bool = False
    notify_mode: NotifyMode = NotifyMode.FLAGS
    #: Interrupt-handler cost (microseconds) in INTERRUPT mode.
    irq_handler: float = 0.1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.chunk_lines < 1:
            raise ValueError("chunk_lines must be >= 1")
        if self.num_buffers < 1:
            raise ValueError("num_buffers must be >= 1")
        if self.notify_degree < 1:
            raise ValueError("notify_degree must be >= 1")
        if self.irq_handler < 0:
            raise ValueError("irq_handler must be >= 0")

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_lines * CACHE_LINE


class OcBcast:
    """An OC-Bcast engine bound to a communicator.

    Construction allocates the MPB resources (``num_buffers`` payload
    buffers of ``chunk_lines`` each, one notifyFlag, ``k`` doneFlags --
    the paper's k+1 flags per core) symmetrically on every rank.  The
    engine is reusable: any number of broadcasts, from any root, may be
    issued on the same instance.
    """

    def __init__(self, comm: "Comm", config: OcBcastConfig | None = None) -> None:
        self.comm = comm
        self.config = config or OcBcastConfig()
        cfg = self.config
        need = cfg.num_buffers * cfg.chunk_lines + cfg.k + 1
        if need > comm.layout.free_lines:
            raise MemoryError(
                f"OC-Bcast needs {need} MPB lines ({cfg.num_buffers} x "
                f"{cfg.chunk_lines} buffers + {cfg.k + 1} flags) but only "
                f"{comm.layout.free_lines} are free"
            )
        self.notify = comm.flag("oc.notify")
        done_region = comm.layout.alloc_lines(cfg.k)
        self.done_flags = [
            Flag(done_region.sub(i, 1), name=f"oc.done{i}") for i in range(cfg.k)
        ]
        self.buffers = [
            comm.layout.alloc_lines(cfg.chunk_lines) for _ in range(cfg.num_buffers)
        ]
        # Per-rank global chunk-sequence base; advances by the chunk count
        # of every broadcast (each rank tracks its own copy -- SPMD calls
        # are matching, so the copies agree).
        self._base = [0] * comm.size

    # ------------------------------------------------------------------

    def bcast(
        self,
        cc: "CoreComm",
        root: int,
        buf: MemRef,
        nbytes: int,
        order: Sequence[int] | None = None,
    ) -> Generator:
        """Broadcast ``nbytes`` from ``root``'s ``buf`` (private memory)
        into every other rank's ``buf``.

        ``order`` optionally overrides the position-to-rank assignment of
        the propagation tree (see :func:`topology_aware_order`); all ranks
        must pass the same value.
        """
        size = cc.size
        cfg = self.config
        if not 0 <= root < size:
            raise ValueError(f"root {root} outside 0..{size - 1}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if buf.nbytes < nbytes:
            raise ValueError(f"buffer of {buf.nbytes} bytes for {nbytes}-byte bcast")
        if nbytes == 0 or size == 1:
            return
        nchunks = -(-nbytes // cfg.chunk_bytes)
        base = self._base[cc.rank]
        self._base[cc.rank] += nchunks

        tree = PropagationTree(size, cfg.k, root, tuple(order) if order else ())
        children = tree.children_of(cc.rank)
        if tree.parent_of(cc.rank) is None:
            yield from self._run_root(cc, tree, children, buf, nbytes, nchunks, base)
        else:
            yield from self._run_node(cc, tree, children, buf, nbytes, nchunks, base)

    # -- root ------------------------------------------------------------

    def _run_root(
        self,
        cc: "CoreComm",
        tree: PropagationTree,
        children: list[int],
        buf: MemRef,
        nbytes: int,
        nchunks: int,
        base: int,
    ) -> Generator:
        cfg = self.config
        family = NotificationTree(len(children), cfg.notify_degree)
        done = self.done_flags[: len(children)]
        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % cfg.num_buffers
            off = idx * cfg.chunk_bytes
            span = min(cfg.chunk_bytes, nbytes - off)
            # Recycle buffer b: children must have consumed its previous
            # occupant (chunk idx - num_buffers).
            if children and idx >= cfg.num_buffers:
                floor = base + idx - cfg.num_buffers + 1
                yield from cc.wait_flags(
                    done, lambda vs, f=floor: all(v.seq >= f for v in vs)
                )
            yield from cc.put(cc.rank, self.buffers[b].offset, buf.sub(off, span), span)
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk_staged", idx=idx, seq=seq)
            yield from self._notify(cc, tree, family, children, slot=0, seq=seq)
        if children:
            final = base + nchunks
            yield from cc.wait_flags(
                done, lambda vs, f=final: all(v.seq >= f for v in vs)
            )

    # -- intermediate nodes and leaves -------------------------------------

    def _run_node(
        self,
        cc: "CoreComm",
        tree: PropagationTree,
        children: list[int],
        buf: MemRef,
        nbytes: int,
        nchunks: int,
        base: int,
    ) -> Generator:
        cfg = self.config
        parent = tree.parent_of(cc.rank)
        assert parent is not None
        siblings = tree.children_of(parent)
        my_slot = tree.child_index(cc.rank) + 1  # family slot (0 = parent)
        parent_family = NotificationTree(len(siblings), cfg.notify_degree)
        my_family = NotificationTree(len(children), cfg.notify_degree)
        done = self.done_flags[: len(children)]
        my_done_flag = self.done_flags[tree.child_index(cc.rank)]
        leaf_direct = cfg.leaf_direct_to_memory and not children

        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % cfg.num_buffers
            off = idx * cfg.chunk_bytes
            span = min(cfg.chunk_bytes, nbytes - off)
            yield from self._wait_notify(cc, seq)
            # (i) relay the notification among the siblings.
            yield from self._notify(cc, tree, parent_family, siblings, my_slot, seq)
            # Recycle own buffer b (not needed by leaves).
            if children and idx >= cfg.num_buffers:
                floor = base + idx - cfg.num_buffers + 1
                yield from cc.wait_flags(
                    done, lambda vs, f=floor: all(v.seq >= f for v in vs)
                )
            if leaf_direct:
                # Section 5.4: a leaf copies straight to off-chip memory.
                yield from cc.get(
                    parent, self.buffers[b].offset, buf.sub(off, span), span
                )
                yield from cc.flag_set(parent, my_done_flag, FlagValue(cc.rank, seq))
            else:
                # (ii) parent's MPB buffer -> own MPB buffer (same offset:
                # the layout is symmetric).
                yield from cc.get(
                    parent, self.buffers[b].offset, self.buffers[b].offset, span
                )
                # (iii) tell the parent this chunk is consumed.
                yield from cc.flag_set(parent, my_done_flag, FlagValue(cc.rank, seq))
                # (iv) notify own children.
                yield from self._notify(cc, tree, my_family, children, slot=0, seq=seq)
                # (v) own MPB -> private off-chip memory.
                yield from cc.get(
                    cc.rank, self.buffers[b].offset, buf.sub(off, span), span
                )
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk_done", idx=idx, seq=seq)
        if children:
            final = base + nchunks
            yield from cc.wait_flags(
                done, lambda vs, f=final: all(v.seq >= f for v in vs)
            )

    # -- notification helpers -----------------------------------------------

    def _notify(
        self,
        cc: "CoreComm",
        tree: PropagationTree,
        family: NotificationTree,
        family_children: list[int],
        slot: int,
        seq: int,
    ) -> Generator:
        """Set the notifyFlag of this core's notification children within
        ``family`` (slot 0 = family parent, slots 1.. = children)."""
        for target_slot in family.notify_targets(slot):
            target_rank = family_children[target_slot - 1]
            yield from cc.flag_set(target_rank, self.notify, FlagValue(0, seq))

    def _wait_notify(self, cc: "CoreComm", seq: int) -> Generator:
        if self.config.notify_mode is NotifyMode.INTERRUPT:
            # Event-driven wake-up plus a fixed handler cost: no sweep.
            yield from cc.wait_flags(
                [self.notify], lambda v: v[0].seq >= seq, sweep_flags=0
            )
            yield cc.core.compute(self.config.irq_handler)
        else:
            yield from cc.wait_flags([self.notify], lambda v, s=seq: v[0].seq >= s)
