"""OC-Bcast: pipelined k-ary-tree broadcast on one-sided RMA.

The paper's algorithm (Section 4), with every mechanism implemented:

- **k-ary propagation tree** -- the k children of a node get each message
  chunk *in parallel* from their parent's MPB (one-sided ``get``), with k
  chosen below the MPB contention threshold (Section 3.3).
- **Binary notification trees** -- a parent raises its children's
  ``notifyFlag`` through a small binary tree spanning the family (itself
  plus its k children), so notification costs O(log k) serial flag writes
  instead of k (Figure 5).
- **doneFlags** -- k flags in each parent's MPB, one per child; a child
  sets its slot after copying a chunk out of the parent's buffer, and the
  parent reuses a buffer only when every child has consumed its previous
  occupant.
- **Chunking, pipelining and double buffering** (Section 4.2) -- messages
  move in chunks of ``M_oc = 96`` cache lines through (by default) two
  MPB buffers, so a parent fills one buffer while children drain the
  other and steady-state throughput is bounded by one MPB-to-MPB get plus
  one MPB-to-memory get per chunk (Formula 15).

Flags carry monotonically increasing sequence numbers (one per chunk,
across all broadcasts on the same :class:`OcBcast` instance) instead of
booleans, so they never need clearing -- the protocol's buffer-recycling
waits double as flag recycling.

Per-core protocol for an intermediate node, chunk by chunk (the paper's
steps (i)-(v)): wait for ``notifyFlag``; (i) relay the notification to
its notification-children among its *siblings*; (wait for its own
children to free the target buffer;) (ii) get the chunk from the parent's
MPB into its own MPB; (iii) set its ``doneFlag`` at the parent; (iv)
notify its own propagation children; (v) get the chunk from its MPB to
private off-chip memory.

Options beyond the paper's defaults (all ablation subjects):
``num_buffers=1`` disables double buffering; ``notify_degree`` changes
the notification-tree arity; ``leaf_direct_to_memory`` applies the
Section 5.4 leaf optimisation; ``NotifyMode.INTERRUPT`` models the
Section 7 interrupt-driven notification (no polling detection delay).

Fault-tolerant mode (``ft=True``)
---------------------------------
The paper's protocol assumes every MPB store lands and every core stays
alive; one lost flag write deadlocks the whole SPMD program.  FT mode
(see ``docs/FAULTS.md``) hardens every mechanism:

- all flag writes are *acked* (readback-verified, bounded re-send --
  :func:`repro.rcce.flags.flag_write_acked`), so dropped or corrupted
  notifications are re-sent by the writer;
- all doneFlag waits carry a poll budget (``ft_flag_timeout``); on
  expiry the parent re-notifies the lagging children directly, and after
  ``ft_max_retries`` budgets it declares them crashed and *routes around
  them* (their doneFlags are dropped from every later wait, and
  notification falls back from the relay tree to direct parent fan-out,
  which does not depend on dead siblings relaying);
- a child's notify wait carries a generous ``ft_notify_timeout`` so a
  dead parent yields a diagnosable :class:`repro.sim.TimeoutError`
  rather than an infinite spin;
- optionally (``ft_ack_data=True``) the data path is verified too: the
  root's chunk staging uses acked puts that re-send un-acked cache
  lines, and every node's chunk fetch into its own MPB uses verified
  gets that re-fetch on a lost deposit.

With no faults injected the FT path costs only the acked-write readbacks
(one extra 1-line MPB read per flag write), keeping its latency within a
few percent of the baseline -- the "robustness tax" that
``repro.bench.faultcampaign`` quantifies.

Payload integrity (``integrity=True``)
--------------------------------------
Acked flag writes protect the control path but say nothing about the
*data*: a corrupted payload line is delivered silently.  Integrity mode
prepends one header line to every MPB buffer carrying ``(seq, crc32,
span)`` of the staged chunk.  Every fetch copies header plus payload and
verifies the checksum against its own deposit (the CRC is accumulated
while the lines stream through the fetching core's registers, so it
costs ``integrity_crc_us_per_line`` per line, not a second pass over the
mesh); a mismatch -- corrupted or dropped deposit, stale or torn header
-- triggers a bounded re-fetch (the NACK path).  A corruption upstream
of the fetch (the staged copy itself is bad) re-fetches the same bad
bytes and escalates as a :class:`repro.sim.TimeoutError` instead of a
silent delivery; the membership service (:mod:`repro.member`) turns that
escalation into a re-broadcast.

Service mode (``service=True``, used by :class:`repro.member.OcBcastService`)
-----------------------------------------------------------------------------
Two protocol changes, both confined to the end of a broadcast, give the
root *global* delivery knowledge at ~zero fault-free cost:

- **NACK done-chain**: a node reports its final-chunk doneFlag only
  after its own children's final doneFlags arrive, and the flag's tag
  carries a NACK when anything below it failed (a child declared dead, a
  NACK from a grandchild).  The root's final wait therefore covers the
  *whole tree*, not just its direct children.
- **Commit notification**: one extra notification sequence number per
  broadcast, relayed through the same notification trees, tells every
  node whether the broadcast committed (tag ``COMMIT_OK``) or will be
  retried by the service layer (tag ``COMMIT_RETRY``).

``bcast`` then returns ``"ok"``/``"retry"`` (or ``"evicted"`` for ranks
outside the supplied member tree) instead of ``None``.  A node whose
payload is fully fetched and verified but whose commit notification
never arrives -- the source died between delivery and commit -- returns
``"undecided"``: it *holds* the message without knowing the verdict,
which is the vote the service layer's completion protocol counts.  A
node that instead finds a *later* window's notification in the flag --
its own commit was lost and the group has demonstrably moved past the
commit round -- returns ``"moved_on"``, and the service layer infers
the verdict from the view flag (a RETRY always installs a view before
any new window streams; a clean flag means the group committed OK).
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from ..rcce.flags import Flag, FlagValue
from ..resilience.policy import RetryPolicy
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef
from ..sim.errors import TimeoutError as SimTimeoutError
from .trees import MemberTree, NotificationTree, PropagationTree

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: The paper's chunk size: 96 cache lines (leaves room for flags with any k).
DEFAULT_CHUNK_LINES = 96

#: Chunk header: (seq, crc32, span) in 16 of the header line's 32 bytes.
_HEADER = struct.Struct("<qII")

#: Commit-notification tags (service mode).  Normal chunk notifications
#: carry tag 0; the commit notification reuses the notify flag with the
#: broadcast's reserved final sequence number and one of these tags.
COMMIT_OK = 1
COMMIT_RETRY = 2

#: DoneFlag NACK encoding: a node that saw a failure in its subtree
#: reports its final doneFlag with tag ``-1 - rank`` instead of ``rank``.
def _nack_tag(rank: int) -> int:
    return -1 - rank


class NotifyMode(enum.Enum):
    """How children learn that a chunk is available."""

    #: MPB flags, polled by the waiting core (the paper's design).
    FLAGS = "flags"
    #: Inter-core interrupts (the paper's Section 7 extension): the waiter
    #: pays a fixed handler cost instead of a polling detection delay.
    INTERRUPT = "interrupt"


@dataclass(frozen=True)
class OcBcastConfig:
    """Tuning knobs of one OC-Bcast instance."""

    k: int = 7
    chunk_lines: int = DEFAULT_CHUNK_LINES
    num_buffers: int = 2
    notify_degree: int = 2
    leaf_direct_to_memory: bool = False
    notify_mode: NotifyMode = NotifyMode.FLAGS
    #: Interrupt-handler cost (microseconds) in INTERRUPT mode.
    irq_handler: float = 0.1
    #: Fault-tolerant mode: acked flag writes, poll budgets, re-notify
    #: retries and crashed-leaf routing (see the module docstring).
    ft: bool = False
    #: Poll budget (us) for doneFlag waits before suspecting a child.
    ft_flag_timeout: float = 300.0
    #: Poll budget (us) for a child's notify wait (generous: firing means
    #: the parent itself is gone, which FT mode does not mask).
    ft_notify_timeout: float = 10_000.0
    #: Re-send / re-notify attempts before declaring a peer crashed.
    ft_max_retries: int = 3
    #: Also ack the root's chunk-staging puts (re-send un-acked cache
    #: lines).  Off by default: it doubles staging MPB traffic.
    ft_ack_data: bool = False
    #: End-to-end payload integrity: one header line per buffer carrying
    #: (seq, crc32, span); every fetch verifies and re-fetches on
    #: mismatch (see the module docstring).
    integrity: bool = False
    #: Bounded re-fetches on a checksum mismatch before escalating.
    integrity_retries: int = 3
    #: CRC cost per cache line (accumulated in-registers during the
    #: copy, so it is cheap -- the lines are already passing through).
    integrity_crc_us_per_line: float = 0.01
    #: Service mode: NACK done-chain + commit notification (requires ft;
    #: used by :class:`repro.member.OcBcastService`).
    service: bool = False
    #: Byzantine-tolerant mode: Bracha echo/ready quorum rounds after
    #: delivery (see :mod:`repro.member.rbc`), plus the adversary hooks
    #: that let EQUIVOCATE / FORGE_FLAG_VALUE / LIE_IN_QUORUM plans fire.
    #: Requires service mode (the RBC rounds ride on its commit round and
    #: integrity headers).
    byz: bool = False
    #: Poll budget (us) for the ECHO quorum wait.
    byz_echo_timeout: float = 3_000.0
    #: Poll budget (us) for the READY amplification wait (f+1) after a
    #: split ECHO round, and for the final READY delivery gate (2f+1).
    byz_ready_timeout: float = 3_000.0
    #: Bounded re-fetch candidates when the local payload's CRC
    #: mismatches the agreed digest.
    byz_refetch_retries: int = 3
    #: Pacing for the FT path's acked writes (doneFlag/notify re-sends,
    #: acked staging puts and fetches).  ``None`` keeps the legacy
    #: immediate re-send schedule -- the bit-identical default.
    ft_retry: RetryPolicy | None = None
    #: Pacing for acked RBC vote re-casts (see :mod:`repro.member.rbc`).
    vote_retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.chunk_lines < 1:
            raise ValueError("chunk_lines must be >= 1")
        if self.num_buffers < 1:
            raise ValueError("num_buffers must be >= 1")
        if self.notify_degree < 1:
            raise ValueError("notify_degree must be >= 1")
        if self.irq_handler < 0:
            raise ValueError("irq_handler must be >= 0")
        if self.ft_flag_timeout <= 0 or self.ft_notify_timeout <= 0:
            raise ValueError("FT timeouts must be > 0")
        if self.ft_max_retries < 0:
            raise ValueError("ft_max_retries must be >= 0")
        if self.integrity_retries < 0:
            raise ValueError("integrity_retries must be >= 0")
        if self.integrity_crc_us_per_line < 0:
            raise ValueError("integrity_crc_us_per_line must be >= 0")
        if self.service and not self.ft:
            raise ValueError("service mode requires ft=True")
        if self.byz and not (self.service and self.integrity):
            raise ValueError(
                "byz mode requires service=True and integrity=True (the RBC "
                "rounds ride on the commit round and the integrity headers)"
            )
        if self.byz and (self.byz_echo_timeout <= 0 or self.byz_ready_timeout <= 0):
            raise ValueError("byz poll budgets must be > 0")
        if self.byz_refetch_retries < 0:
            raise ValueError("byz_refetch_retries must be >= 0")

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_lines * CACHE_LINE

    @property
    def buffer_lines(self) -> int:
        """MPB lines per buffer: the chunk plus the integrity header."""
        return self.chunk_lines + (1 if self.integrity else 0)


class OcBcast:
    """An OC-Bcast engine bound to a communicator.

    Construction allocates the MPB resources (``num_buffers`` payload
    buffers of ``chunk_lines`` each, one notifyFlag, ``k`` doneFlags --
    the paper's k+1 flags per core) symmetrically on every rank.  The
    engine is reusable: any number of broadcasts, from any root, may be
    issued on the same instance.
    """

    def __init__(self, comm: "Comm", config: OcBcastConfig | None = None) -> None:
        self.comm = comm
        self.config = config or OcBcastConfig()
        cfg = self.config
        need = cfg.num_buffers * cfg.buffer_lines + cfg.k + 1
        if need > comm.layout.free_lines:
            raise MemoryError(
                f"OC-Bcast needs {need} MPB lines ({cfg.num_buffers} x "
                f"{cfg.buffer_lines} buffers + {cfg.k + 1} flags) but only "
                f"{comm.layout.free_lines} are free"
            )
        self.notify = comm.flag("oc.notify")
        done_region = comm.layout.alloc_lines(cfg.k)
        self.done_flags = [
            Flag(done_region.sub(i, 1), name=f"oc.done{i}") for i in range(cfg.k)
        ]
        self.buffers = [
            comm.layout.alloc_lines(cfg.buffer_lines) for _ in range(cfg.num_buffers)
        ]
        # Per-rank global chunk-sequence base; advances by the chunk count
        # of every broadcast (each rank tracks its own copy -- SPMD calls
        # are matching, so the copies agree).
        self._base = [0] * comm.size
        #: Byzantine mode: set by the RBC layer to a ``(cc) -> Generator``
        #: that casts this rank's ECHO votes.  Called right before the
        #: commit round, so the echo fan-out overlaps the commit wait the
        #: node would otherwise spend idle (the main lever keeping the
        #: fault-free RBC tax low).
        self.byz_echo_hook = None
        # Scratch private buffer for the equivocation variant (attack
        # path only; allocated lazily by the compromised root).
        self._equiv_buf: MemRef | None = None

    # ------------------------------------------------------------------

    def window_base(self, rank: int) -> int:
        """This rank's current chunk-sequence window base (the next
        broadcast call starts numbering from here)."""
        return self._base[rank]

    def resync_window(self, rank: int, base: int) -> None:
        """Fast-forward this rank's window base to ``base`` (never
        backwards).  The service layer calls this for a member that
        missed whole broadcast windows while the group moved on, using
        the coordinator's base piggybacked on the view install -- a
        stale local base would make every later window's sequence
        numbers shear against the rest of the tree."""
        if base > self._base[rank]:
            self._base[rank] = base

    def bcast(
        self,
        cc: "CoreComm",
        root: int,
        buf: MemRef,
        nbytes: int,
        order: Sequence[int] | None = None,
        tree: "PropagationTree | MemberTree | None" = None,
    ) -> Generator:
        """Broadcast ``nbytes`` from ``root``'s ``buf`` (private memory)
        into every other rank's ``buf``.

        ``order`` optionally overrides the position-to-rank assignment of
        the propagation tree (see :func:`topology_aware_order`); all ranks
        must pass the same value.

        ``tree`` optionally supplies a prebuilt propagation tree -- in
        particular a :class:`MemberTree` over the survivors of a
        membership view, which is how the service layer routes later
        broadcasts around dead cores.  A rank outside the tree returns
        ``"evicted"`` immediately; in service mode the other ranks return
        ``"ok"`` or ``"retry"`` (the commit outcome) -- or ``"undecided"``
        / ``"moved_on"`` when the commit notification was lost (see the
        module docs) -- otherwise ``None``.
        """
        size = cc.size
        cfg = self.config
        if not 0 <= root < size:
            raise ValueError(f"root {root} outside 0..{size - 1}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if buf.nbytes < nbytes:
            raise ValueError(f"buffer of {buf.nbytes} bytes for {nbytes}-byte bcast")
        if tree is not None:
            if order is not None:
                raise ValueError("pass either a prebuilt tree or an order, not both")
            if tree.root != root:
                raise ValueError(f"tree root {tree.root} != bcast root {root}")
            if cc.rank not in tree:
                return "evicted"
        if nbytes == 0 or (size if tree is None else tree.size) == 1:
            return "ok" if cfg.service else None
        nchunks = -(-nbytes // cfg.chunk_bytes)
        base = self._base[cc.rank]
        # Service mode reserves one extra sequence number per broadcast
        # for the commit notification.
        self._base[cc.rank] += nchunks + (1 if cfg.service else 0)

        if tree is None:
            tree = PropagationTree(size, cfg.k, root, tuple(order) if order else ())
        children = tree.children_of(cc.rank)
        if tree.parent_of(cc.rank) is None:
            cc.metric_inc("oc.bcasts")
            cc.metric_inc("oc.chunks", nchunks)
            cc.metric_inc("oc.bytes", nbytes)
            return (
                yield from self._run_root(
                    cc, tree, children, buf, nbytes, nchunks, base
                )
            )
        return (
            yield from self._run_node(cc, tree, children, buf, nbytes, nchunks, base)
        )

    # -- root ------------------------------------------------------------

    def _run_root(
        self,
        cc: "CoreComm",
        tree: "PropagationTree | MemberTree",
        children: list[int],
        buf: MemRef,
        nbytes: int,
        nchunks: int,
        base: int,
    ) -> Generator:
        cfg = self.config
        family = NotificationTree(len(children), cfg.notify_degree)
        done = [self.done_flags[tree.child_index(c)] for c in children]
        dead: set[int] = set()
        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % cfg.num_buffers
            off = idx * cfg.chunk_bytes
            span = min(cfg.chunk_bytes, nbytes - off)
            cc.trace("oc.chunk.begin", idx=idx, seq=seq)
            # Recycle buffer b: children must have consumed its previous
            # occupant (chunk idx - num_buffers).
            if children and idx >= cfg.num_buffers:
                floor = base + idx - cfg.num_buffers + 1
                yield from self._wait_done(
                    cc, children, done, floor, dead, last_seq=base + idx
                )
            yield from self._stage(cc, b, buf.sub(off, span), span, seq)
            # ``floor`` self-describes the slot-reuse precondition: staging
            # into buffer ``b`` is legal only once every live child's
            # doneFlag has reached seq - num_buffers (vacuous for the
            # first num_buffers chunks).
            cc.trace(
                "oc.chunk_staged",
                idx=idx, seq=seq, buf=b, floor=seq - cfg.num_buffers,
            )
            yield from self._notify(cc, tree, family, children, slot=0, seq=seq,
                                    dead=dead)
            if cfg.byz and cc.has_faults:
                yield from self._maybe_equivocate(
                    cc, children, done, dead, b, buf.sub(off, span), span, seq
                )
            cc.trace("oc.chunk.end", idx=idx, seq=seq)
        # Byzantine mode: the source's payload is fully staged, so cast
        # its ECHO votes now -- they overlap the whole done-chain ascent
        # and the commit round below, hiding most of the fan-out cost.
        if cfg.byz and self.byz_echo_hook is not None:
            yield from self.byz_echo_hook(cc)
        final_vals: list[FlagValue] = []
        if children:
            final = base + nchunks
            final_vals = yield from self._wait_done(
                cc, children, done, final, dead, last_seq=final
            )
        if not cfg.service:
            return None
        # The NACK done-chain made the final wait cover the whole tree:
        # a failure anywhere below shows up here as a declared-dead child
        # or a negative (NACK) tag.  Commit the outcome down the
        # notification trees using the reserved sequence number.
        failed = bool(dead) or any(v.tag < 0 for v in final_vals)
        commit_seq = base + nchunks + 1
        tag = COMMIT_RETRY if failed else COMMIT_OK
        cc.trace("oc.svc.commit", seq=commit_seq, ok=not failed)
        cc.metric_inc("oc.svc.commit_ok" if not failed else
                      "oc.svc.commit_retry")
        yield from self._notify(
            cc, tree, family, children, slot=0, seq=commit_seq, dead=dead, tag=tag
        )
        return "retry" if failed else "ok"

    # -- intermediate nodes and leaves -------------------------------------

    def _run_node(
        self,
        cc: "CoreComm",
        tree: "PropagationTree | MemberTree",
        children: list[int],
        buf: MemRef,
        nbytes: int,
        nchunks: int,
        base: int,
    ) -> Generator:
        cfg = self.config
        parent = tree.parent_of(cc.rank)
        assert parent is not None
        siblings = tree.children_of(parent)
        my_slot = tree.child_index(cc.rank) + 1  # family slot (0 = parent)
        parent_family = NotificationTree(len(siblings), cfg.notify_degree)
        my_family = NotificationTree(len(children), cfg.notify_degree)
        done = [self.done_flags[tree.child_index(c)] for c in children]
        my_done_flag = self.done_flags[tree.child_index(cc.rank)]
        leaf_direct = cfg.leaf_direct_to_memory and not children
        dead: set[int] = set()
        # Service mode: the final-chunk doneFlag is deferred until the
        # subtree reports, so it can carry a NACK tag (see module docs).
        defer_final = cfg.service and bool(children)

        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % cfg.num_buffers
            off = idx * cfg.chunk_bytes
            span = min(cfg.chunk_bytes, nbytes - off)
            is_final = idx == nchunks - 1
            cc.trace("oc.chunk.begin", idx=idx, seq=seq)
            cc.trace("oc.wait.begin", idx=idx, seq=seq)
            yield from self._wait_notify(cc, seq)
            cc.trace("oc.wait.end", idx=idx, seq=seq)
            # (i) relay the notification among the siblings.
            yield from self._notify(cc, tree, parent_family, siblings, my_slot, seq)
            # Recycle own buffer b (not needed by leaves).
            if children and idx >= cfg.num_buffers:
                floor = base + idx - cfg.num_buffers + 1
                yield from self._wait_done(
                    cc, children, done, floor, dead, last_seq=base + idx
                )
            if leaf_direct:
                # Section 5.4: a leaf copies straight to off-chip memory.
                cc.trace(
                    "oc.fetch",
                    idx=idx, seq=seq, parent=parent, buf=b,
                    floor=seq - cfg.num_buffers, direct=True,
                )
                yield from self._fetch_direct(
                    cc, parent, b, buf.sub(off, span), span, seq
                )
                yield from self._set_flag(
                    cc, parent, my_done_flag, FlagValue(cc.rank, seq)
                )
            else:
                # (ii) parent's MPB buffer -> own MPB buffer (same offset:
                # the layout is symmetric).
                cc.trace(
                    "oc.fetch",
                    idx=idx, seq=seq, parent=parent, buf=b,
                    floor=seq - cfg.num_buffers, direct=False,
                )
                yield from self._fetch(cc, parent, b, span, seq)
                # (iii) tell the parent this chunk is consumed (service
                # mode defers the final chunk's flag -- it doubles as the
                # subtree's delivery report).
                if not (defer_final and is_final):
                    yield from self._set_flag(
                        cc, parent, my_done_flag, FlagValue(cc.rank, seq)
                    )
                # (iv) notify own children.
                yield from self._notify(cc, tree, my_family, children, slot=0,
                                        seq=seq, dead=dead)
                # (v) own MPB -> private off-chip memory.
                yield from cc.get(
                    cc.rank, self._payload_off(b), buf.sub(off, span), span
                )
            cc.trace("oc.chunk_done", idx=idx, seq=seq)
            cc.trace("oc.chunk.end", idx=idx, seq=seq)
        # Byzantine mode: every chunk is fetched and verified, so cast
        # this rank's ECHO votes now.  A leaf overlaps them with the
        # done-chain climbing the tree above it; an interior node with
        # its own wait on the subtree below -- either way the fan-out
        # rides on time the node would spend idle.
        if cfg.byz and self.byz_echo_hook is not None:
            yield from self.byz_echo_hook(cc)
        final_vals: list[FlagValue] = []
        if children:
            final = base + nchunks
            final_vals = yield from self._wait_done(
                cc, children, done, final, dead, last_seq=final
            )
        if not cfg.service:
            return None
        # Deferred final doneFlag: aggregate the subtree's outcome into
        # the tag (NACK on any declared-dead child or NACKed grandchild).
        failed = bool(dead) or any(v.tag < 0 for v in final_vals)
        if defer_final:
            tag = _nack_tag(cc.rank) if failed else cc.rank
            yield from self._set_flag(
                cc, parent, my_done_flag, FlagValue(tag, base + nchunks)
            )
        # Commit wait + relay: one extra notification round-trip tells
        # every node whether the service layer will retry.  At this
        # point the node's whole payload is fetched and verified; if the
        # commit notification never comes (the source died between
        # delivery and commit), the outcome is "undecided" rather than a
        # raised timeout -- the service layer counts undecided nodes as
        # *holders* of the message in its completion protocol.
        commit_seq = base + nchunks + 1
        try:
            commit = yield from self._wait_notify(cc, commit_seq)
        except SimTimeoutError:
            cc.trace("oc.svc.commit_unknown", seq=commit_seq)
            return "undecided"
        if commit.seq > commit_seq:
            # The commit notification itself was lost (dropped by a
            # faulted link, or overwritten before this node's late last
            # chunk landed) and the flag now holds a *later* sequence
            # window's notification -- its tag says nothing about THIS
            # message's commit.  Do not relay the bogus tag; report
            # "moved_on" and let the service layer disambiguate: a
            # RETRY decision always installs a view before any new
            # window streams, so a clean view flag can only mean the
            # group committed without us.
            cc.trace("oc.svc.commit_moved_on", seq=commit_seq, saw=commit.seq)
            return "moved_on"
        yield from self._notify(
            cc, tree, parent_family, siblings, my_slot, commit_seq, tag=commit.tag
        )
        if children:
            yield from self._notify(
                cc, tree, my_family, children, slot=0, seq=commit_seq,
                dead=dead, tag=commit.tag,
            )
        ok = commit.tag == COMMIT_OK
        cc.trace("oc.svc.commit", seq=commit_seq, ok=ok)
        return "ok" if ok else "retry"

    # -- FT primitives -------------------------------------------------------

    def _set_flag(
        self, cc: "CoreComm", owner_rank: int, flag: Flag, value: FlagValue
    ) -> Generator:
        """One protocol flag write: plain in the paper's mode, acked
        (readback-verified, bounded re-send) in FT mode."""
        if self.config.ft:
            yield from cc.flag_set_acked(
                owner_rank, flag, value,
                max_retries=self.config.ft_max_retries,
                policy=self.config.ft_retry,
            )
        else:
            yield from cc.flag_set(owner_rank, flag, value)

    def _payload_off(self, b: int) -> int:
        """Byte offset of buffer ``b``'s payload (after the header line
        when integrity mode reserves one)."""
        return self.buffers[b].offset + (CACHE_LINE if self.config.integrity else 0)

    def _stage(
        self, cc: "CoreComm", b: int, src: MemRef, span: int, seq: int
    ) -> Generator:
        """The root's chunk-staging put (acked when ``ft_ack_data``); in
        integrity mode the payload put is followed by the header line
        (seq, crc32, span) computed from the *source* buffer, so any
        corruption of the staged copy is visible to every fetcher."""
        cfg = self.config
        offset = self._payload_off(b)
        if cfg.ft and cfg.ft_ack_data:
            yield from cc.put_acked(
                cc.rank, offset, src, span,
                max_retries=cfg.ft_max_retries, policy=cfg.ft_retry,
            )
        else:
            yield from cc.put(cc.rank, offset, src, span)
        if cfg.integrity:
            crc = zlib.crc32(src.sub(0, span).read())
            yield from self._crc_charge(cc, span)
            header = _HEADER.pack(seq, crc, span).ljust(CACHE_LINE, b"\0")
            yield from cc.put_bytes(cc.rank, self.buffers[b].offset, header)

    def _maybe_equivocate(
        self,
        cc: "CoreComm",
        children: list[int],
        done: list[Flag],
        dead: set[int],
        b: int,
        src: MemRef,
        span: int,
        seq: int,
    ) -> Generator:
        """The EQUIVOCATE adversary: a compromised root serves two payload
        variants for the same chunk.

        After notifying normally, the root *precomputes* variant B (the
        first payload line XORed with 0xA5) and its fully consistent
        integrity header while the children's fetches are in flight, then
        watches its doneFlags until the *first* child reports the chunk
        consumed -- that child (and any sibling whose copy completes
        before the flip lands) holds variant A and will relay it down its
        subtree.  The flip itself rewrites only the changed payload line
        plus the header line, so it lands within a fraction of a
        microsecond and falls inside the window over which the remaining
        children's copies complete: slower children pull B and relay
        *that*.  The split is deterministic for a given chip and plan;
        each variant carries a valid header, so nothing about it is
        detectable by per-hop CRC checks -- exactly the gap the RBC
        layer's digest quorums close.
        """
        spec = cc.adversary_stage()
        if spec is None:
            return
        # Precompute the variant and its header up front: a real attacker
        # pays the CRC before the flip so the restage itself is two line
        # writes.
        head = min(CACHE_LINE, span)
        variant_head = bytes(x ^ 0xA5 for x in src.sub(0, head).read())
        crc = zlib.crc32(variant_head + src.sub(head, span - head).read())
        yield from self._crc_charge(cc, span)
        header = _HEADER.pack(seq, crc, span).ljust(CACHE_LINE, b"\0")
        if self._equiv_buf is None:
            self._equiv_buf = cc.alloc(CACHE_LINE)
        self._equiv_buf.sub(0, head).write(variant_head)
        live = [i for i in range(len(children)) if children[i] not in dead]
        if live:
            try:
                yield from cc.wait_flags(
                    [done[i] for i in live],
                    lambda vs, s=seq: any(v.seq >= s for v in vs),
                    timeout=self.config.ft_flag_timeout,
                    site="oc.adv.equivocate",
                )
            except SimTimeoutError:
                pass  # nobody consumed in time: restage anyway
        cc.trace("oc.adv.equivocate", seq=seq, buf=b, span=span)
        cc.metric_inc("oc.adv.equivocations")
        yield from cc.put(cc.rank, self._payload_off(b), self._equiv_buf.sub(0, head), head)
        yield from cc.put_bytes(cc.rank, self.buffers[b].offset, header)

    def _crc_charge(self, cc: "CoreComm", span: int) -> Generator:
        """The CRC's compute cost: accumulated per line while the data is
        already in the core's registers during the copy."""
        lines = -(-span // CACHE_LINE)
        cost = self.config.integrity_crc_us_per_line * lines
        if cost > 0:
            yield from cc.compute(cost)

    def _fetch(
        self, cc: "CoreComm", parent: int, b: int, span: int, seq: int
    ) -> Generator:
        """The step-(ii) chunk fetch into own MPB -- the deposit is an
        unacknowledged local write, so it is verified when data acks are
        on.  (Step (v) writes private memory, which cannot be faulted.)

        In integrity mode the fetch copies header + payload and verifies
        the checksum over its *own deposit*; a mismatch (corrupted or
        dropped deposit, stale header) re-fetches up to
        ``integrity_retries`` times, then escalates as a timeout -- the
        NACK path.  Corruption upstream (the parent's copy itself) is
        detected but not repairable here; the service layer re-broadcasts.
        """
        cfg = self.config
        reg = self.buffers[b]
        if not cfg.integrity:
            if cfg.ft and cfg.ft_ack_data:
                yield from cc.get_acked(
                    parent, reg.offset, reg.offset, span,
                    max_retries=cfg.ft_max_retries, policy=cfg.ft_retry,
                )
            else:
                yield from cc.get(parent, reg.offset, reg.offset, span)
            return
        total = CACHE_LINE + span
        for attempt in range(cfg.integrity_retries + 1):
            yield from cc.get(parent, reg.offset, reg.offset, total)
            yield from self._crc_charge(cc, span)
            raw = cc.read_local(reg.offset, total)
            if self._chunk_ok(raw, seq, span):
                if attempt:
                    cc.trace(
                        "oc.integrity.refetch_ok",
                        seq=seq, attempts=attempt + 1,
                    )
                    cc.note_recovery(
                        f"oc.chunk{seq}@core{cc.core_id}",
                        note=f"re-fetched x{attempt}",
                    )
                return
            cc.trace(
                "oc.integrity.mismatch",
                seq=seq, parent=parent, attempt=attempt + 1,
            )
            cc.metric_inc("oc.integrity.mismatches")
        raise SimTimeoutError(
            f"core {cc.core_id}: chunk seq={seq} failed checksum after "
            f"{cfg.integrity_retries + 1} fetches from rank {parent} at "
            f"t={cc.now:.4f} (corruption upstream of this fetch)",
            process=f"core{cc.core_id}",
            sim_time=cc.now,
            site="oc.integrity",
        )

    def _fetch_direct(
        self, cc: "CoreComm", parent: int, b: int, dst: MemRef, span: int, seq: int
    ) -> Generator:
        """The Section 5.4 leaf fetch straight to off-chip memory, with
        the integrity check reading the header remotely (one extra line)
        since the leaf holds no MPB copy of it."""
        cfg = self.config
        if not cfg.integrity:
            yield from cc.get(parent, self.buffers[b].offset, dst, span)
            return
        src_off = self._payload_off(b)
        for attempt in range(cfg.integrity_retries + 1):
            yield from cc.get(parent, src_off, dst, span)
            header = yield from cc.get_bytes(
                parent, self.buffers[b].offset, CACHE_LINE
            )
            yield from self._crc_charge(cc, span)
            if self._chunk_ok(header + dst.sub(0, span).read(), seq, span):
                if attempt:
                    cc.note_recovery(
                        f"oc.chunk{seq}@core{cc.core_id}",
                        note=f"re-fetched x{attempt} (direct)",
                    )
                return
            cc.trace(
                "oc.integrity.mismatch",
                seq=seq, parent=parent, attempt=attempt + 1, direct=True,
            )
            cc.metric_inc("oc.integrity.mismatches")
        raise SimTimeoutError(
            f"core {cc.core_id}: direct chunk seq={seq} failed checksum after "
            f"{cfg.integrity_retries + 1} fetches from rank {parent} at "
            f"t={cc.now:.4f}",
            process=f"core{cc.core_id}",
            sim_time=cc.now,
            site="oc.integrity",
        )

    @staticmethod
    def _chunk_ok(raw: bytes, seq: int, span: int) -> bool:
        """Verify one header-prefixed chunk image."""
        hdr_seq, crc, hdr_span = _HEADER.unpack_from(raw)
        if hdr_seq != seq or hdr_span != span:
            return False
        return zlib.crc32(raw[CACHE_LINE:CACHE_LINE + span]) == crc

    def _wait_done(
        self,
        cc: "CoreComm",
        children: list[int],
        done: list[Flag],
        floor: int,
        dead: set[int],
        last_seq: int,
    ) -> Generator[object, object, list[FlagValue]]:
        """Wait until every *live* child's doneFlag reaches ``floor``;
        returns the satisfying flag values (service mode aggregates NACK
        tags from them; empty once every child is declared dead).

        In FT mode each wait carries a poll budget; on expiry the parent
        re-notifies the lagging children directly (with ``last_seq``, the
        highest notification already issued -- flags are monotonic, so
        this can never advance a child prematurely) and, once
        ``ft_max_retries`` budgets have expired, declares the remaining
        laggards crashed and stops waiting on them for good.
        """
        cfg = self.config
        if not cfg.ft:
            return (
                yield from cc.wait_flags(
                    done, lambda vs, f=floor: all(v.seq >= f for v in vs)
                )
            )
        retries = 0
        while True:
            live = [i for i in range(len(children)) if children[i] not in dead]
            if not live:
                return []
            flags = [done[i] for i in live]
            try:
                return (
                    yield from cc.wait_flags(
                        flags,
                        lambda vs, f=floor: all(v.seq >= f for v in vs),
                        timeout=cfg.ft_flag_timeout,
                        site="oc.done",
                    )
                )
            except SimTimeoutError:
                lag = [
                    i for i in live
                    if cc.flag_peek(done[i]).seq < floor
                ]
                if retries >= cfg.ft_max_retries:
                    for i in lag:
                        dead.add(children[i])
                        cc.trace(
                            "oc.ft.child_dead",
                            child=children[i], floor=floor,
                        )
                        cc.metric_inc("oc.ft.children_declared_dead")
                    continue  # re-check: the others may already be done
                retries += 1
                for i in lag:
                    cc.trace(
                        "oc.ft.renotify",
                        child=children[i], seq=last_seq,
                    )
                    cc.metric_inc("oc.ft.renotifies")
                    yield from cc.flag_set_acked(
                        children[i], self.notify, FlagValue(0, last_seq),
                        max_retries=cfg.ft_max_retries, policy=cfg.ft_retry,
                    )

    # -- notification helpers -----------------------------------------------

    def _notify(
        self,
        cc: "CoreComm",
        tree: "PropagationTree | MemberTree",
        family: NotificationTree,
        family_children: list[int],
        slot: int,
        seq: int,
        dead: frozenset[int] | set[int] = frozenset(),
        tag: int = 0,
    ) -> Generator:
        """Set the notifyFlag of this core's notification children within
        ``family`` (slot 0 = family parent, slots 1.. = children).

        ``tag`` is 0 for chunk notifications; the service commit round
        relays its COMMIT_OK / COMMIT_RETRY tag through the same trees.

        Once any child is suspected dead (FT mode), the family parent
        falls back from the relay tree to direct fan-out over the live
        children: the relay tree depends on every sibling forwarding, a
        property dead cores no longer have.
        """
        if dead and slot == 0:
            for target_rank in family_children:
                if target_rank in dead:
                    continue
                yield from self._set_flag(
                    cc, target_rank, self.notify, FlagValue(tag, seq)
                )
            return
        for target_slot in family.notify_targets(slot):
            target_rank = family_children[target_slot - 1]
            if target_rank in dead:
                continue
            yield from self._set_flag(
                cc, target_rank, self.notify, FlagValue(tag, seq)
            )

    def _wait_notify(
        self, cc: "CoreComm", seq: int
    ) -> Generator[object, object, FlagValue]:
        timeout = self.config.ft_notify_timeout if self.config.ft else None
        if self.config.notify_mode is NotifyMode.INTERRUPT:
            # Event-driven wake-up plus a fixed handler cost: no sweep.
            vals = yield from cc.wait_flags(
                [self.notify], lambda v: v[0].seq >= seq, sweep_flags=0,
                timeout=timeout, site="oc.notify",
            )
            yield from cc.compute(self.config.irq_handler)
        else:
            vals = yield from cc.wait_flags(
                [self.notify], lambda v, s=seq: v[0].seq >= s,
                timeout=timeout, site="oc.notify",
            )
        return vals[0]
