"""OC-Bcast: pipelined k-ary-tree broadcast on one-sided RMA.

The paper's algorithm (Section 4), with every mechanism implemented:

- **k-ary propagation tree** -- the k children of a node get each message
  chunk *in parallel* from their parent's MPB (one-sided ``get``), with k
  chosen below the MPB contention threshold (Section 3.3).
- **Binary notification trees** -- a parent raises its children's
  ``notifyFlag`` through a small binary tree spanning the family (itself
  plus its k children), so notification costs O(log k) serial flag writes
  instead of k (Figure 5).
- **doneFlags** -- k flags in each parent's MPB, one per child; a child
  sets its slot after copying a chunk out of the parent's buffer, and the
  parent reuses a buffer only when every child has consumed its previous
  occupant.
- **Chunking, pipelining and double buffering** (Section 4.2) -- messages
  move in chunks of ``M_oc = 96`` cache lines through (by default) two
  MPB buffers, so a parent fills one buffer while children drain the
  other and steady-state throughput is bounded by one MPB-to-MPB get plus
  one MPB-to-memory get per chunk (Formula 15).

Flags carry monotonically increasing sequence numbers (one per chunk,
across all broadcasts on the same :class:`OcBcast` instance) instead of
booleans, so they never need clearing -- the protocol's buffer-recycling
waits double as flag recycling.

Per-core protocol for an intermediate node, chunk by chunk (the paper's
steps (i)-(v)): wait for ``notifyFlag``; (i) relay the notification to
its notification-children among its *siblings*; (wait for its own
children to free the target buffer;) (ii) get the chunk from the parent's
MPB into its own MPB; (iii) set its ``doneFlag`` at the parent; (iv)
notify its own propagation children; (v) get the chunk from its MPB to
private off-chip memory.

Options beyond the paper's defaults (all ablation subjects):
``num_buffers=1`` disables double buffering; ``notify_degree`` changes
the notification-tree arity; ``leaf_direct_to_memory`` applies the
Section 5.4 leaf optimisation; ``NotifyMode.INTERRUPT`` models the
Section 7 interrupt-driven notification (no polling detection delay).

Fault-tolerant mode (``ft=True``)
---------------------------------
The paper's protocol assumes every MPB store lands and every core stays
alive; one lost flag write deadlocks the whole SPMD program.  FT mode
(see ``docs/FAULTS.md``) hardens every mechanism:

- all flag writes are *acked* (readback-verified, bounded re-send --
  :func:`repro.rcce.flags.flag_write_acked`), so dropped or corrupted
  notifications are re-sent by the writer;
- all doneFlag waits carry a poll budget (``ft_flag_timeout``); on
  expiry the parent re-notifies the lagging children directly, and after
  ``ft_max_retries`` budgets it declares them crashed and *routes around
  them* (their doneFlags are dropped from every later wait, and
  notification falls back from the relay tree to direct parent fan-out,
  which does not depend on dead siblings relaying);
- a child's notify wait carries a generous ``ft_notify_timeout`` so a
  dead parent yields a diagnosable :class:`repro.sim.TimeoutError`
  rather than an infinite spin;
- optionally (``ft_ack_data=True``) the data path is verified too: the
  root's chunk staging uses acked puts that re-send un-acked cache
  lines, and every node's chunk fetch into its own MPB uses verified
  gets that re-fetch on a lost deposit.

With no faults injected the FT path costs only the acked-write readbacks
(one extra 1-line MPB read per flag write), keeping its latency within a
few percent of the baseline -- the "robustness tax" that
``repro.bench.faultcampaign`` quantifies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Sequence

from ..rcce.flags import Flag, FlagValue
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef
from ..sim.errors import TimeoutError as SimTimeoutError
from .trees import NotificationTree, PropagationTree

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: The paper's chunk size: 96 cache lines (leaves room for flags with any k).
DEFAULT_CHUNK_LINES = 96


class NotifyMode(enum.Enum):
    """How children learn that a chunk is available."""

    #: MPB flags, polled by the waiting core (the paper's design).
    FLAGS = "flags"
    #: Inter-core interrupts (the paper's Section 7 extension): the waiter
    #: pays a fixed handler cost instead of a polling detection delay.
    INTERRUPT = "interrupt"


@dataclass(frozen=True)
class OcBcastConfig:
    """Tuning knobs of one OC-Bcast instance."""

    k: int = 7
    chunk_lines: int = DEFAULT_CHUNK_LINES
    num_buffers: int = 2
    notify_degree: int = 2
    leaf_direct_to_memory: bool = False
    notify_mode: NotifyMode = NotifyMode.FLAGS
    #: Interrupt-handler cost (microseconds) in INTERRUPT mode.
    irq_handler: float = 0.1
    #: Fault-tolerant mode: acked flag writes, poll budgets, re-notify
    #: retries and crashed-leaf routing (see the module docstring).
    ft: bool = False
    #: Poll budget (us) for doneFlag waits before suspecting a child.
    ft_flag_timeout: float = 300.0
    #: Poll budget (us) for a child's notify wait (generous: firing means
    #: the parent itself is gone, which FT mode does not mask).
    ft_notify_timeout: float = 10_000.0
    #: Re-send / re-notify attempts before declaring a peer crashed.
    ft_max_retries: int = 3
    #: Also ack the root's chunk-staging puts (re-send un-acked cache
    #: lines).  Off by default: it doubles staging MPB traffic.
    ft_ack_data: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.chunk_lines < 1:
            raise ValueError("chunk_lines must be >= 1")
        if self.num_buffers < 1:
            raise ValueError("num_buffers must be >= 1")
        if self.notify_degree < 1:
            raise ValueError("notify_degree must be >= 1")
        if self.irq_handler < 0:
            raise ValueError("irq_handler must be >= 0")
        if self.ft_flag_timeout <= 0 or self.ft_notify_timeout <= 0:
            raise ValueError("FT timeouts must be > 0")
        if self.ft_max_retries < 0:
            raise ValueError("ft_max_retries must be >= 0")

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_lines * CACHE_LINE


class OcBcast:
    """An OC-Bcast engine bound to a communicator.

    Construction allocates the MPB resources (``num_buffers`` payload
    buffers of ``chunk_lines`` each, one notifyFlag, ``k`` doneFlags --
    the paper's k+1 flags per core) symmetrically on every rank.  The
    engine is reusable: any number of broadcasts, from any root, may be
    issued on the same instance.
    """

    def __init__(self, comm: "Comm", config: OcBcastConfig | None = None) -> None:
        self.comm = comm
        self.config = config or OcBcastConfig()
        cfg = self.config
        need = cfg.num_buffers * cfg.chunk_lines + cfg.k + 1
        if need > comm.layout.free_lines:
            raise MemoryError(
                f"OC-Bcast needs {need} MPB lines ({cfg.num_buffers} x "
                f"{cfg.chunk_lines} buffers + {cfg.k + 1} flags) but only "
                f"{comm.layout.free_lines} are free"
            )
        self.notify = comm.flag("oc.notify")
        done_region = comm.layout.alloc_lines(cfg.k)
        self.done_flags = [
            Flag(done_region.sub(i, 1), name=f"oc.done{i}") for i in range(cfg.k)
        ]
        self.buffers = [
            comm.layout.alloc_lines(cfg.chunk_lines) for _ in range(cfg.num_buffers)
        ]
        # Per-rank global chunk-sequence base; advances by the chunk count
        # of every broadcast (each rank tracks its own copy -- SPMD calls
        # are matching, so the copies agree).
        self._base = [0] * comm.size

    # ------------------------------------------------------------------

    def bcast(
        self,
        cc: "CoreComm",
        root: int,
        buf: MemRef,
        nbytes: int,
        order: Sequence[int] | None = None,
    ) -> Generator:
        """Broadcast ``nbytes`` from ``root``'s ``buf`` (private memory)
        into every other rank's ``buf``.

        ``order`` optionally overrides the position-to-rank assignment of
        the propagation tree (see :func:`topology_aware_order`); all ranks
        must pass the same value.
        """
        size = cc.size
        cfg = self.config
        if not 0 <= root < size:
            raise ValueError(f"root {root} outside 0..{size - 1}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if buf.nbytes < nbytes:
            raise ValueError(f"buffer of {buf.nbytes} bytes for {nbytes}-byte bcast")
        if nbytes == 0 or size == 1:
            return
        nchunks = -(-nbytes // cfg.chunk_bytes)
        base = self._base[cc.rank]
        self._base[cc.rank] += nchunks

        tree = PropagationTree(size, cfg.k, root, tuple(order) if order else ())
        children = tree.children_of(cc.rank)
        if tree.parent_of(cc.rank) is None:
            if cc.chip.metrics is not None:
                cc.chip.metrics.inc("oc.bcasts")
                cc.chip.metrics.inc("oc.chunks", nchunks)
                cc.chip.metrics.inc("oc.bytes", nbytes)
            yield from self._run_root(cc, tree, children, buf, nbytes, nchunks, base)
        else:
            yield from self._run_node(cc, tree, children, buf, nbytes, nchunks, base)

    # -- root ------------------------------------------------------------

    def _run_root(
        self,
        cc: "CoreComm",
        tree: PropagationTree,
        children: list[int],
        buf: MemRef,
        nbytes: int,
        nchunks: int,
        base: int,
    ) -> Generator:
        cfg = self.config
        family = NotificationTree(len(children), cfg.notify_degree)
        done = self.done_flags[: len(children)]
        dead: set[int] = set()
        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % cfg.num_buffers
            off = idx * cfg.chunk_bytes
            span = min(cfg.chunk_bytes, nbytes - off)
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk.begin", idx=idx, seq=seq)
            # Recycle buffer b: children must have consumed its previous
            # occupant (chunk idx - num_buffers).
            if children and idx >= cfg.num_buffers:
                floor = base + idx - cfg.num_buffers + 1
                yield from self._wait_done(
                    cc, children, done, floor, dead, last_seq=base + idx
                )
            yield from self._stage(
                cc, self.buffers[b].offset, buf.sub(off, span), span
            )
            # ``floor`` self-describes the slot-reuse precondition: staging
            # into buffer ``b`` is legal only once every live child's
            # doneFlag has reached seq - num_buffers (vacuous for the
            # first num_buffers chunks).
            cc.chip.trace(
                f"rank{cc.rank}", "oc.chunk_staged",
                idx=idx, seq=seq, buf=b, floor=seq - cfg.num_buffers,
            )
            yield from self._notify(cc, tree, family, children, slot=0, seq=seq,
                                    dead=dead)
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk.end", idx=idx, seq=seq)
        if children:
            final = base + nchunks
            yield from self._wait_done(
                cc, children, done, final, dead, last_seq=final
            )

    # -- intermediate nodes and leaves -------------------------------------

    def _run_node(
        self,
        cc: "CoreComm",
        tree: PropagationTree,
        children: list[int],
        buf: MemRef,
        nbytes: int,
        nchunks: int,
        base: int,
    ) -> Generator:
        cfg = self.config
        parent = tree.parent_of(cc.rank)
        assert parent is not None
        siblings = tree.children_of(parent)
        my_slot = tree.child_index(cc.rank) + 1  # family slot (0 = parent)
        parent_family = NotificationTree(len(siblings), cfg.notify_degree)
        my_family = NotificationTree(len(children), cfg.notify_degree)
        done = self.done_flags[: len(children)]
        my_done_flag = self.done_flags[tree.child_index(cc.rank)]
        leaf_direct = cfg.leaf_direct_to_memory and not children
        dead: set[int] = set()

        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % cfg.num_buffers
            off = idx * cfg.chunk_bytes
            span = min(cfg.chunk_bytes, nbytes - off)
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk.begin", idx=idx, seq=seq)
            cc.chip.trace(f"rank{cc.rank}", "oc.wait.begin", idx=idx, seq=seq)
            yield from self._wait_notify(cc, seq)
            cc.chip.trace(f"rank{cc.rank}", "oc.wait.end", idx=idx, seq=seq)
            # (i) relay the notification among the siblings.
            yield from self._notify(cc, tree, parent_family, siblings, my_slot, seq)
            # Recycle own buffer b (not needed by leaves).
            if children and idx >= cfg.num_buffers:
                floor = base + idx - cfg.num_buffers + 1
                yield from self._wait_done(
                    cc, children, done, floor, dead, last_seq=base + idx
                )
            if leaf_direct:
                # Section 5.4: a leaf copies straight to off-chip memory.
                cc.chip.trace(
                    f"rank{cc.rank}", "oc.fetch",
                    idx=idx, seq=seq, parent=parent, buf=b,
                    floor=seq - cfg.num_buffers, direct=True,
                )
                yield from cc.get(
                    parent, self.buffers[b].offset, buf.sub(off, span), span
                )
                yield from self._set_flag(
                    cc, parent, my_done_flag, FlagValue(cc.rank, seq)
                )
            else:
                # (ii) parent's MPB buffer -> own MPB buffer (same offset:
                # the layout is symmetric).
                cc.chip.trace(
                    f"rank{cc.rank}", "oc.fetch",
                    idx=idx, seq=seq, parent=parent, buf=b,
                    floor=seq - cfg.num_buffers, direct=False,
                )
                yield from self._fetch(
                    cc, parent, self.buffers[b].offset, self.buffers[b].offset, span
                )
                # (iii) tell the parent this chunk is consumed.
                yield from self._set_flag(
                    cc, parent, my_done_flag, FlagValue(cc.rank, seq)
                )
                # (iv) notify own children.
                yield from self._notify(cc, tree, my_family, children, slot=0,
                                        seq=seq, dead=dead)
                # (v) own MPB -> private off-chip memory.
                yield from cc.get(
                    cc.rank, self.buffers[b].offset, buf.sub(off, span), span
                )
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk_done", idx=idx, seq=seq)
            cc.chip.trace(f"rank{cc.rank}", "oc.chunk.end", idx=idx, seq=seq)
        if children:
            final = base + nchunks
            yield from self._wait_done(
                cc, children, done, final, dead, last_seq=final
            )

    # -- FT primitives -------------------------------------------------------

    def _set_flag(
        self, cc: "CoreComm", owner_rank: int, flag: Flag, value: FlagValue
    ) -> Generator:
        """One protocol flag write: plain in the paper's mode, acked
        (readback-verified, bounded re-send) in FT mode."""
        if self.config.ft:
            yield from cc.flag_set_acked(
                owner_rank, flag, value, max_retries=self.config.ft_max_retries
            )
        else:
            yield from cc.flag_set(owner_rank, flag, value)

    def _stage(
        self, cc: "CoreComm", offset: int, src: MemRef, span: int
    ) -> Generator:
        """The root's chunk-staging put (acked when ``ft_ack_data``)."""
        if self.config.ft and self.config.ft_ack_data:
            yield from cc.put_acked(
                cc.rank, offset, src, span, max_retries=self.config.ft_max_retries
            )
        else:
            yield from cc.put(cc.rank, offset, src, span)

    def _fetch(
        self, cc: "CoreComm", parent: int, src_off: int, dst_off: int, span: int
    ) -> Generator:
        """The step-(ii) chunk fetch into own MPB -- the deposit is an
        unacknowledged local write, so it is verified when data acks are
        on.  (Step (v) writes private memory, which cannot be faulted.)"""
        if self.config.ft and self.config.ft_ack_data:
            yield from cc.get_acked(
                parent, src_off, dst_off, span,
                max_retries=self.config.ft_max_retries,
            )
        else:
            yield from cc.get(parent, src_off, dst_off, span)

    def _wait_done(
        self,
        cc: "CoreComm",
        children: list[int],
        done: list[Flag],
        floor: int,
        dead: set[int],
        last_seq: int,
    ) -> Generator:
        """Wait until every *live* child's doneFlag reaches ``floor``.

        In FT mode each wait carries a poll budget; on expiry the parent
        re-notifies the lagging children directly (with ``last_seq``, the
        highest notification already issued -- flags are monotonic, so
        this can never advance a child prematurely) and, once
        ``ft_max_retries`` budgets have expired, declares the remaining
        laggards crashed and stops waiting on them for good.
        """
        cfg = self.config
        if not cfg.ft:
            yield from cc.wait_flags(
                done, lambda vs, f=floor: all(v.seq >= f for v in vs)
            )
            return
        retries = 0
        while True:
            live = [i for i in range(len(children)) if children[i] not in dead]
            if not live:
                return
            flags = [done[i] for i in live]
            try:
                yield from cc.wait_flags(
                    flags,
                    lambda vs, f=floor: all(v.seq >= f for v in vs),
                    timeout=cfg.ft_flag_timeout,
                    site="oc.done",
                )
                return
            except SimTimeoutError:
                lag = [
                    i for i in live
                    if done[i].peek(cc.chip, cc.core.id).seq < floor
                ]
                if retries >= cfg.ft_max_retries:
                    for i in lag:
                        dead.add(children[i])
                        cc.chip.trace(
                            f"rank{cc.rank}", "oc.ft.child_dead",
                            child=children[i], floor=floor,
                        )
                        if cc.chip.metrics is not None:
                            cc.chip.metrics.inc("oc.ft.children_declared_dead")
                    continue  # re-check: the others may already be done
                retries += 1
                for i in lag:
                    cc.chip.trace(
                        f"rank{cc.rank}", "oc.ft.renotify",
                        child=children[i], seq=last_seq,
                    )
                    if cc.chip.metrics is not None:
                        cc.chip.metrics.inc("oc.ft.renotifies")
                    yield from cc.flag_set_acked(
                        children[i], self.notify, FlagValue(0, last_seq),
                        max_retries=cfg.ft_max_retries,
                    )

    # -- notification helpers -----------------------------------------------

    def _notify(
        self,
        cc: "CoreComm",
        tree: PropagationTree,
        family: NotificationTree,
        family_children: list[int],
        slot: int,
        seq: int,
        dead: frozenset[int] | set[int] = frozenset(),
    ) -> Generator:
        """Set the notifyFlag of this core's notification children within
        ``family`` (slot 0 = family parent, slots 1.. = children).

        Once any child is suspected dead (FT mode), the family parent
        falls back from the relay tree to direct fan-out over the live
        children: the relay tree depends on every sibling forwarding, a
        property dead cores no longer have.
        """
        if dead and slot == 0:
            for target_rank in family_children:
                if target_rank in dead:
                    continue
                yield from self._set_flag(
                    cc, target_rank, self.notify, FlagValue(0, seq)
                )
            return
        for target_slot in family.notify_targets(slot):
            target_rank = family_children[target_slot - 1]
            if target_rank in dead:
                continue
            yield from self._set_flag(cc, target_rank, self.notify, FlagValue(0, seq))

    def _wait_notify(self, cc: "CoreComm", seq: int) -> Generator:
        timeout = self.config.ft_notify_timeout if self.config.ft else None
        if self.config.notify_mode is NotifyMode.INTERRUPT:
            # Event-driven wake-up plus a fixed handler cost: no sweep.
            yield from cc.wait_flags(
                [self.notify], lambda v: v[0].seq >= seq, sweep_flags=0,
                timeout=timeout, site="oc.notify",
            )
            yield cc.core.compute(self.config.irq_handler)
        else:
            yield from cc.wait_flags(
                [self.notify], lambda v, s=seq: v[0].seq >= s,
                timeout=timeout, site="oc.notify",
            )
