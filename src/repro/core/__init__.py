"""OC-Bcast: the paper's contribution, plus OC-style extensions.

- :mod:`repro.core.trees` -- the id-based k-ary propagation tree, the
  binary notification trees embedded in each propagation family, and a
  topology-aware tree builder for the ablation study.
- :mod:`repro.core.ocbcast` -- the pipelined, double-buffered RMA
  broadcast (:class:`OcBcast`).
- :mod:`repro.core.occollectives` -- OC-Barrier and OC-Reduce built with
  the same one-sided pattern (the paper's Section 7 future work).
- :mod:`repro.core.osag` -- the one-sided scatter-allgather broadcast the
  paper's Section 5.4 sketches as an alternative RMA design.
"""

from .ocbcast import NotifyMode, OcBcast, OcBcastConfig
from .occollectives import OcBarrier, OcReduce
from .mpmd import Mailbox, MpmdBcast
from .osag import OsagBcast
from .trees import (
    MemberTree,
    NotificationTree,
    PropagationTree,
    kary_children,
    kary_depth,
    kary_parent,
    topology_aware_order,
)

__all__ = [
    "Mailbox",
    "MemberTree",
    "MpmdBcast",
    "NotificationTree",
    "NotifyMode",
    "OcBarrier",
    "OcBcast",
    "OcBcastConfig",
    "OcReduce",
    "OsagBcast",
    "PropagationTree",
    "kary_children",
    "kary_depth",
    "kary_parent",
    "topology_aware_order",
]
