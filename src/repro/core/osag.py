"""One-sided scatter-allgather broadcast (the paper's Section 5.4 sketch).

The discussion section names "adapting the two-sided scatter-allgather
algorithm to use the one-sided primitives" as a good example of another
RMA-based broadcast design.  This module builds it:

- the *scatter* phase stays a binary recursive tree over (small-payload)
  send/recv -- it moves each byte once, so there is little to gain;
- the *allgather* ring is where two-sided RCCE loses (Formula 16 pays an
  off-chip read AND write per hop per slice): here a slice travels the
  ring **MPB-to-MPB**.  Each core keeps the slice it received this round
  in an MPB buffer and forwards it next round with a direct remote get by
  the downstream neighbour; the copy to private memory happens off the
  forwarding path.  Double buffering overlaps the forward of round ``t``
  with the receive of round ``t+1``, exactly like OC-Bcast's chunks.

Large messages are processed in segments of ``P * slice_lines`` cache
lines so a slice always fits the MPB buffer.

The result (see ``benchmarks/bench_extension_onesided_sag.py``) sits far
above the two-sided scatter-allgather and close to OC-Bcast's peak --
evidence for the paper's closing claim that one-sided designs in general,
not OC-Bcast specifically, are what unlocks the hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..rcce.flags import FlagSlotArray
from ..rcce.twosided import TwoSidedState, recv as ts_recv, send as ts_send
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm


class OsagBcast:
    """One-sided scatter-allgather broadcast engine.

    MPB budget (per core): two slice buffers of ``slice_lines`` each, two
    per-partner slot arrays for the ring, plus a private two-sided state
    (``scatter_payload_lines`` + two more arrays) for the scatter phase.
    The defaults fit the 256-line MPB at P=48 alongside nothing else.
    """

    def __init__(
        self,
        comm: "Comm",
        slice_lines: int = 48,
        scatter_payload_lines: int = 96,
        enable_scatter: bool = True,
    ) -> None:
        if slice_lines < 1:
            raise ValueError("slice_lines must be >= 1")
        self.comm = comm
        self.slice_lines = slice_lines
        size = comm.size
        flag_lines = FlagSlotArray.lines_needed(size)
        need = 2 * slice_lines + 2 * flag_lines
        if enable_scatter:
            need += scatter_payload_lines + 2 * flag_lines
        if need > comm.layout.free_lines:
            raise MemoryError(
                f"one-sided scatter-allgather needs {need} MPB lines, "
                f"{comm.layout.free_lines} free"
            )
        self.scatter_state = (
            TwoSidedState(comm, payload_lines=scatter_payload_lines)
            if enable_scatter
            else None
        )
        #: staged[s] in core i's MPB: ring slices its upstream s has made
        #: available; drained[r] in core i's MPB: slices downstream r has
        #: consumed from core i's buffers.
        self.staged = FlagSlotArray(
            comm.layout.alloc_lines(flag_lines), size, name="osag.staged"
        )
        self.drained = FlagSlotArray(
            comm.layout.alloc_lines(flag_lines), size, name="osag.drained"
        )
        self.buffers = [comm.layout.alloc_lines(slice_lines) for _ in range(2)]
        # Per-rank ring-step counter (each rank tracks its own copy).
        self._base = [0] * size

    @property
    def slice_bytes(self) -> int:
        return self.slice_lines * CACHE_LINE

    @property
    def segment_bytes(self) -> int:
        return self.comm.size * self.slice_bytes

    # ------------------------------------------------------------------

    def bcast(self, cc: "CoreComm", root: int, buf: MemRef, nbytes: int) -> Generator:
        """Broadcast ``nbytes`` from ``root``'s ``buf`` into every rank's
        ``buf``."""
        size = cc.size
        if not 0 <= root < size:
            raise ValueError(f"root {root} outside 0..{size - 1}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if buf.nbytes < nbytes:
            raise ValueError(f"buffer of {buf.nbytes} bytes for {nbytes}-byte bcast")
        if nbytes == 0 or size == 1:
            return
        if self.scatter_state is None:
            raise ValueError("this engine was built with enable_scatter=False")
        if size == 2:
            # Degenerate ring: one pipelined pair transfer via the
            # scatter machinery.
            if cc.rank == root:
                yield from ts_send(cc, 1 - root, buf.sub(0, nbytes), nbytes,
                                   st=self.scatter_state)
            else:
                yield from ts_recv(cc, root, buf.sub(0, nbytes), nbytes,
                                   st=self.scatter_state)
            return
        seg = self.segment_bytes
        off = 0
        while off < nbytes:
            span = min(seg, nbytes - off)
            yield from self._bcast_segment(cc, root, buf.sub(off, span), span)
            off += seg

    # -- one segment (slices fit the MPB buffers) -------------------------

    def _slice(self, nbytes: int, index: int) -> tuple[int, int]:
        size = self.comm.size
        s = -(-nbytes // size)
        off = min(index * s, nbytes)
        return off, min(s, nbytes - off)

    def _bcast_segment(
        self, cc: "CoreComm", root: int, buf: MemRef, nbytes: int
    ) -> Generator:
        size = cc.size
        rel = (cc.rank - root) % size

        # ---- scatter: binary recursive tree over private send/recv ----
        mask = 1
        while mask < size and not rel & mask:
            mask <<= 1
        if rel != 0:
            parent = (cc.rank - mask) % size
            lo = self._slice(nbytes, rel)[0]
            hi = self._slice(nbytes, min(rel + mask, size))[0]
            yield from ts_recv(cc, parent, buf.sub(lo, hi - lo), hi - lo,
                               st=self.scatter_state)
        child_mask = mask >> 1
        while child_mask > 0:
            if rel + child_mask < size:
                child = (cc.rank + child_mask) % size
                lo = self._slice(nbytes, rel + child_mask)[0]
                hi = self._slice(nbytes, min(rel + 2 * child_mask, size))[0]
                yield from ts_send(cc, child, buf.sub(lo, hi - lo), hi - lo,
                                   st=self.scatter_state)
            child_mask >>= 1

        # ---- allgather: one-sided MPB-to-MPB ring ----
        yield from self._ring(cc, root, lambda i: self._slice(nbytes, i), buf)

    # -- the one-sided ring (shared by bcast and allgather) ----------------

    def _ring(self, cc: "CoreComm", root: int, slice_of, buf: MemRef) -> Generator:
        """P-1 rounds of MPB-to-MPB slice forwarding.

        ``slice_of(index)`` gives the (offset, length) within ``buf`` of
        the slice owned by the rank at relative position ``index``; every
        slice must fit one ring buffer.  On entry each rank holds its own
        slice in ``buf``; on exit all slices are assembled everywhere.
        """
        size = cc.size
        rel = (cc.rank - root) % size
        down_rank = (root + (rel - 1) % size) % size
        up_rank = (root + (rel + 1) % size) % size
        base = self._base[cc.rank]
        self._base[cc.rank] += size - 1

        for t in range(size - 1):
            sbuf = self.buffers[t % 2]
            rbuf = self.buffers[(t + 1) % 2]
            out_off, out_len = slice_of((rel + t) % size)
            in_off, in_len = slice_of((rel + t + 1) % size)
            if t == 0:
                # Stage my own slice; sbuf's previous occupant belongs to
                # the previous segment, fully drained by the final wait.
                if out_len:
                    yield from cc.put(cc.rank, sbuf.offset, buf.sub(out_off, out_len), out_len)
            # My round-t slice is ready for the downstream neighbour.
            yield from cc.slot_write(self.staged, down_rank, cc.rank, base + t + 1)
            # Receive the upstream slice for the next round.
            if t < size - 1:
                yield from cc.slot_wait_at_least(self.staged, up_rank, base + t + 1)
                if t >= 1:
                    # rbuf still holds my round-(t-1) slice: downstream
                    # must have consumed it before I overwrite.
                    yield from cc.slot_wait_at_least(self.drained, down_rank, base + t)
                if in_len:
                    # Direct MPB-to-MPB move -- the one-sided adaptation.
                    yield from cc.get(up_rank, sbuf.offset, rbuf.offset, in_len)
                yield from cc.slot_write(self.drained, up_rank, cc.rank, base + t + 1)
                if in_len:
                    # Assemble into private memory, off the forwarding path.
                    yield from cc.get(cc.rank, rbuf.offset, buf.sub(in_off, in_len), in_len)
        # Buffers must be clean for the next segment/broadcast.
        yield from cc.slot_wait_at_least(self.drained, down_rank, base + size - 1)

    # -- standalone one-sided allgather (Section 7 "other collectives") -----

    def allgather(
        self, cc: "CoreComm", src: MemRef, dst: MemRef, block_bytes: int
    ) -> Generator:
        """One-sided ring allgather: every rank contributes ``block_bytes``
        from ``src``; ``dst`` (rank-major, ``P * block_bytes``) is
        assembled on all ranks via MPB-to-MPB forwarding.  Large blocks
        run in sub-block passes of the ring-buffer capacity."""
        size = cc.size
        if block_bytes < 0:
            raise ValueError("block_bytes must be >= 0")
        if dst.nbytes < block_bytes * size:
            raise ValueError("dst must hold size * block_bytes")
        if block_bytes == 0:
            return
        yield from cc.local_copy(
            dst.sub(cc.rank * block_bytes, block_bytes), src, block_bytes
        )
        if size == 1:
            return
        cap = self.slice_bytes
        off = 0
        while off < block_bytes:
            span = min(cap, block_bytes - off)

            def slice_of(i: int, off=off, span=span) -> tuple[int, int]:
                return (i * block_bytes + off, span)

            yield from self._ring(cc, 0, slice_of, dst)
            off += cap
