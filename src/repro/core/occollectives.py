"""OC-style collectives beyond broadcast (the paper's Section 7 plan:
"extend our approach to other collective operations").

Both operations reuse OC-Bcast's ingredients -- k-ary trees bounded by
the MPB contention threshold, one-sided puts/gets, sequence-numbered MPB
flags, binary notification trees -- demonstrating that the RMA pattern
generalises:

- :class:`OcBarrier` -- an arrival wave up the k-ary tree (doneFlags) and
  a release wave down the notification trees.
- :class:`OcReduce` -- children push partial results into per-child slots
  of their parent's MPB; each node combines its subtree chunk by chunk,
  pipelined up the tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..collectives.reduce import ReduceOp
from ..rcce.flags import Flag, FlagValue
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef
from .trees import NotificationTree, PropagationTree

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm


class OcBarrier:
    """RMA k-ary-tree barrier with notification-tree release."""

    def __init__(self, comm: "Comm", k: int = 7, notify_degree: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.comm = comm
        self.k = k
        self.notify_degree = notify_degree
        self.release = comm.flag("ocb.release")
        arrive_region = comm.layout.alloc_lines(k)
        self.arrive = [
            Flag(arrive_region.sub(i, 1), name=f"ocb.arrive{i}") for i in range(k)
        ]
        self._epoch = [0] * comm.size

    def barrier(self, cc: "CoreComm") -> Generator:
        """Block until every rank has entered the barrier."""
        size = cc.size
        if size == 1:
            return
        self._epoch[cc.rank] += 1
        epoch = self._epoch[cc.rank]
        tree = PropagationTree(size, self.k, root=0)
        children = tree.children_of(cc.rank)
        parent = tree.parent_of(cc.rank)

        # Arrival wave: wait for the whole subtree, then report upward.
        if children:
            flags = self.arrive[: len(children)]
            yield from cc.wait_flags(
                flags, lambda vs, e=epoch: all(v.seq >= e for v in vs)
            )
        if parent is not None:
            slot = tree.child_index(cc.rank)
            yield from cc.flag_set(parent, self.arrive[slot], FlagValue(cc.rank, epoch))
            # Release wave: wait for it, then relay among siblings.
            yield from cc.wait_flags(
                [self.release], lambda v, e=epoch: v[0].seq >= e
            )
            siblings = tree.children_of(parent)
            family = NotificationTree(len(siblings), self.notify_degree)
            my_slot = tree.child_index(cc.rank) + 1
            for t in family.notify_targets(my_slot):
                yield from cc.flag_set(
                    siblings[t - 1], self.release, FlagValue(0, epoch)
                )
        # Kick off the release into own children.
        if children:
            family = NotificationTree(len(children), self.notify_degree)
            for t in family.notify_targets(0):
                yield from cc.flag_set(
                    children[t - 1], self.release, FlagValue(0, epoch)
                )


class OcReduce:
    """RMA k-ary-tree reduction, pipelined in MPB-sized chunks.

    Each core's MPB hosts ``k`` slots of ``chunk_lines`` where its
    children deposit partial results with one-sided puts.  Per chunk, a
    node waits for all child slots (doneFlags), combines them with its
    own data, and puts the combined chunk into its slot at its parent.
    A per-child "slot free" notification flows downward so slots are
    recycled safely across chunks.
    """

    def __init__(self, comm: "Comm", k: int = 7, chunk_lines: int = 32) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if chunk_lines < 1:
            raise ValueError("chunk_lines must be >= 1")
        self.comm = comm
        self.k = k
        self.chunk_lines = chunk_lines
        need = k * chunk_lines + k + 1
        if need > comm.layout.free_lines:
            raise MemoryError(
                f"OC-Reduce needs {need} MPB lines, {comm.layout.free_lines} free"
            )
        self.slots = comm.layout.alloc_lines(k * chunk_lines)
        done_region = comm.layout.alloc_lines(k)
        self.done = [
            Flag(done_region.sub(i, 1), name=f"ocr.done{i}") for i in range(k)
        ]
        self.free = comm.flag("ocr.free")
        self._base = [0] * comm.size

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_lines * CACHE_LINE

    def reduce(
        self,
        cc: "CoreComm",
        root: int,
        sendbuf: MemRef,
        recvbuf: MemRef,
        nbytes: int,
        op: ReduceOp,
    ) -> Generator:
        """Reduce ``nbytes`` element-wise into ``root``'s ``recvbuf``
        (every rank passes a ``recvbuf`` of at least ``nbytes`` -- it is
        the per-node accumulation scratch)."""
        size = cc.size
        if not 0 <= root < size:
            raise ValueError(f"root {root} outside 0..{size - 1}")
        if nbytes % op.dtype.itemsize:
            raise ValueError(
                f"{nbytes} bytes is not a whole number of {op.dtype} elements"
            )
        if recvbuf.nbytes < nbytes:
            raise ValueError("recvbuf must hold nbytes on every rank")
        if nbytes == 0:
            return
        nchunks = -(-nbytes // self.chunk_bytes)
        base = self._base[cc.rank]
        self._base[cc.rank] += nchunks
        if size == 1:
            yield from cc.local_copy(recvbuf, sendbuf, nbytes)
            return

        tree = PropagationTree(size, self.k, root)
        children = tree.children_of(cc.rank)
        parent = tree.parent_of(cc.rank)
        done = self.done[: len(children)]

        for idx in range(nchunks):
            seq = base + idx + 1
            off = idx * self.chunk_bytes
            span = min(self.chunk_bytes, nbytes - off)
            # Local contribution for this chunk (timed read; combine cost
            # is modeled by the reads/writes of the operands).
            yield from cc.mem_read(sendbuf.sub(off, span))
            acc = sendbuf.sub(off, span).read()
            if children:
                yield from cc.wait_flags(
                    done, lambda vs, s=seq: all(v.seq >= s for v in vs)
                )
                for j, child in enumerate(children):
                    slot_off = self.slots.offset + j * self.chunk_bytes
                    raw = cc.read_local(slot_off, span)
                    # Timed read of the slot from the own MPB.
                    yield from cc.mpb_charge_local(-(-span // CACHE_LINE))
                    acc = op.combine(acc, raw)
                    # Free the slot for the child's next chunk.
                    yield from cc.flag_set(child, self.free, FlagValue(cc.rank, seq))
            if parent is None:
                yield from cc.mem_write(recvbuf.sub(off, span))
                recvbuf.sub(off, span).write(acc)
            else:
                # Wait for my slot at the parent to be free (seq-1 consumed).
                # (Safe across invocations: the final wait below guarantees
                # the slot was drained before the previous reduce returned.)
                if idx > 0:
                    floor = seq - 1
                    yield from cc.wait_flags(
                        [self.free], lambda v, f=floor: v[0].seq >= f
                    )
                slot = tree.child_index(cc.rank)
                slot_off = self.slots.offset + slot * self.chunk_bytes
                # Stage the combined chunk, then put it into the parent slot.
                yield from cc.mem_write(recvbuf.sub(off, span))
                recvbuf.sub(off, span).write(acc)
                yield from cc.put(
                    parent, slot_off, recvbuf.sub(off, span), span
                )
                yield from cc.flag_set(
                    parent, self.done[slot], FlagValue(cc.rank, seq)
                )
        if parent is not None:
            # Don't return until the parent has drained the last chunk, so
            # the slot is reusable by the next invocation (any tree shape).
            final = base + nchunks
            yield from cc.wait_flags(
                [self.free], lambda v, f=final: v[0].seq >= f
            )
        cc.trace("ocr.done", chunks=nchunks)
