"""MPMD broadcast via inter-core interrupts (the paper's Section 7).

"Our ongoing work includes extending OC-Bcast to handle the MPMD
programming model by leveraging parallel inter-core interrupts.
Many-core operating systems [3] are an interesting use-case for such a
primitive."

In MPMD, receiving cores run *different* programs and are not sitting in
a matching broadcast call when a message arrives.  The design here:

- every participating core starts a **daemon** coroutine
  (:meth:`MpmdBcast.start_daemons`) that blocks on the IPI controller;
- the *sender* (any core, any time) calls :meth:`publish`: it stages the
  message chunk-wise in its MPB exactly like OC-Bcast's root and IPIs
  its propagation children;
- each daemon, on interrupt, relays IPIs down the family's notification
  tree, pulls the chunks with one-sided gets (same doneFlag recycling
  protocol as OC-Bcast), copies them to private memory and deposits the
  message in the core's :class:`Mailbox`;
- the application on that core collects delivered messages whenever it
  likes with :meth:`deliver` (blocking) or :meth:`poll` (non-blocking) --
  the multikernel-style upcall decoupling;
- :meth:`stop_daemons` (sender side) shuts the tree down cleanly so the
  simulation can drain.

Interrupt entry is ~1 microsecond on the P54C, so this costs more per hop
than SPMD flag polling -- the measured gap is reported by
``benchmarks/bench_extension_mpmd.py``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..rcce.flags import Flag, FlagValue
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef
from ..sim import Event
from .trees import NotificationTree, PropagationTree

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm


class Mailbox:
    """Per-core queue of delivered broadcast payloads."""

    def __init__(self) -> None:
        self._messages: deque[bytes] = deque()
        self._waiters: deque[Event] = deque()

    def deposit(self, payload: bytes) -> None:
        self._messages.append(payload)
        if self._waiters:
            self._waiters.popleft().succeed(None)

    def poll(self) -> bytes | None:
        return self._messages.popleft() if self._messages else None

    def __len__(self) -> int:
        return len(self._messages)


class MpmdBcast:
    """Interrupt-driven one-to-all publication for MPMD programs.

    The propagation tree is rooted at a fixed ``publisher`` rank (an
    MPMD pub/sub channel has one producer); k and chunking mirror
    OC-Bcast.  Multiple sequential :meth:`publish` calls are supported;
    subscribers may lag arbitrarily (mailboxes buffer).
    """

    def __init__(
        self,
        comm: "Comm",
        publisher: int = 0,
        k: int = 7,
        chunk_lines: int = 96,
        num_buffers: int = 2,
        notify_degree: int = 2,
    ) -> None:
        if not 0 <= publisher < comm.size:
            raise ValueError(f"publisher {publisher} outside 0..{comm.size - 1}")
        if k < 1 or chunk_lines < 1 or num_buffers < 1 or notify_degree < 1:
            raise ValueError("k, chunk_lines, num_buffers, notify_degree must be >= 1")
        need = num_buffers * chunk_lines + k
        if need > comm.layout.free_lines:
            raise MemoryError(
                f"MPMD broadcast needs {need} MPB lines, "
                f"{comm.layout.free_lines} free"
            )
        self.comm = comm
        self.publisher = publisher
        self.k = k
        self.chunk_lines = chunk_lines
        self.num_buffers = num_buffers
        self.notify_degree = notify_degree
        self.tree = PropagationTree(comm.size, k, root=publisher)
        done_region = comm.layout.alloc_lines(k)
        self.done_flags = [
            Flag(done_region.sub(i, 1), name=f"mpmd.done{i}") for i in range(k)
        ]
        self.buffers = [
            comm.layout.alloc_lines(chunk_lines) for _ in range(num_buffers)
        ]
        self.mailboxes = [Mailbox() for _ in range(comm.size)]
        self._chunk_base = 0  # publisher-side global chunk counter

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_lines * CACHE_LINE

    # -- subscriber side ----------------------------------------------------

    def start_daemons(self, chip) -> list:
        """Spawn one daemon process per non-publisher rank; returns them."""
        procs = []
        for rank in range(self.comm.size):
            if rank == self.publisher:
                continue
            core = chip.cores[self.comm.core_of(rank)]
            cc = self.comm.attach(core)
            procs.append(
                chip.sim.process(self._daemon(cc), name=f"mpmd-daemon-r{rank}")
            )
        return procs

    def deliver(self, cc: "CoreComm") -> Generator[Event, object, bytes]:
        """Block the *application* until a broadcast payload is available."""
        box = self.mailboxes[cc.rank]
        while True:
            payload = box.poll()
            if payload is not None:
                return payload
            ev = Event(cc.core.sim, f"mailbox.wait(r{cc.rank})")
            box._waiters.append(ev)
            yield ev

    def poll(self, cc: "CoreComm") -> bytes | None:
        """Non-blocking mailbox check (untimed; a real check is a load)."""
        return self.mailboxes[cc.rank].poll()

    # -- publisher side ----------------------------------------------------

    def publish(self, cc: "CoreComm", buf: MemRef, nbytes: int) -> Generator:
        """Push ``nbytes`` from the publisher's ``buf`` to every mailbox."""
        if cc.rank != self.publisher:
            raise ValueError(f"only rank {self.publisher} may publish")
        if nbytes <= 0:
            raise ValueError("publish needs nbytes > 0")
        if buf.nbytes < nbytes:
            raise ValueError("buffer smaller than nbytes")
        if self.comm.size == 1:
            return
        nchunks = -(-nbytes // self.chunk_bytes)
        base = self._chunk_base
        self._chunk_base += nchunks
        children = self.tree.children_of(cc.rank)
        family = NotificationTree(len(children), self.notify_degree)
        done = self.done_flags[: len(children)]
        for idx in range(nchunks):
            seq = base + idx + 1
            b = idx % self.num_buffers
            off = idx * self.chunk_bytes
            span = min(self.chunk_bytes, nbytes - off)
            floor = seq - self.num_buffers
            if children and floor >= 1:
                yield from cc.wait_flags(
                    done, lambda vs, f=floor: all(v.seq >= f for v in vs)
                )
            yield from cc.put(cc.rank, self.buffers[b].offset, buf.sub(off, span), span)
            # Parallel IPIs down the notification tree carry the message
            # descriptor (total size + chunk sequence number).
            for slot in family.notify_targets(0):
                yield from cc.chip.irq.send(
                    cc.core,
                    self.comm.core_of(children[slot - 1]),
                    ("chunk", seq, nbytes, idx, nchunks),
                )
        final = base + nchunks
        yield from cc.wait_flags(
            done, lambda vs, f=final: all(v.seq >= f for v in vs)
        )

    def stop_daemons(self, cc: "CoreComm") -> Generator:
        """Shut the daemon tree down (publisher only)."""
        if cc.rank != self.publisher:
            raise ValueError(f"only rank {self.publisher} may stop the daemons")
        children = self.tree.children_of(cc.rank)
        family = NotificationTree(len(children), self.notify_degree)
        for slot in family.notify_targets(0):
            yield from cc.chip.irq.send(
                cc.core, self.comm.core_of(children[slot - 1]), ("stop",)
            )

    # -- the daemon ----------------------------------------------------------

    def _daemon(self, cc: "CoreComm") -> Generator:
        tree = self.tree
        parent = tree.parent_of(cc.rank)
        assert parent is not None
        siblings = tree.children_of(parent)
        my_slot = tree.child_index(cc.rank) + 1
        parent_family = NotificationTree(len(siblings), self.notify_degree)
        children = tree.children_of(cc.rank)
        my_family = NotificationTree(len(children), self.notify_degree)
        done = self.done_flags[: len(children)]
        my_done_flag = self.done_flags[tree.child_index(cc.rank)]
        irq = cc.chip.irq
        scratch = cc.alloc(self.chunk_bytes)
        assembly: bytearray | None = None

        while True:
            msg = yield from irq.wait(cc.core)
            if msg[0] == "stop":
                for slot in parent_family.notify_targets(my_slot):
                    yield from irq.send(
                        cc.core, self.comm.core_of(siblings[slot - 1]), ("stop",)
                    )
                for slot in my_family.notify_targets(0):
                    yield from irq.send(
                        cc.core, self.comm.core_of(children[slot - 1]), ("stop",)
                    )
                return
            _, seq, nbytes, idx, nchunks = msg
            b = idx % self.num_buffers
            off = idx * self.chunk_bytes
            span = min(self.chunk_bytes, nbytes - off)
            # (i) relay the interrupt among siblings.
            for slot in parent_family.notify_targets(my_slot):
                yield from irq.send(
                    cc.core, self.comm.core_of(siblings[slot - 1]), msg
                )
            # Recycle own buffer b (sequence numbers are global across
            # publishes, so this also protects back-to-back messages).
            floor = seq - self.num_buffers
            if children and floor >= 1:
                yield from cc.wait_flags(
                    done, lambda vs, f=floor: all(v.seq >= f for v in vs)
                )
            # (ii) pull the chunk into the own MPB.
            yield from cc.get(
                parent, self.buffers[b].offset, self.buffers[b].offset, span
            )
            # (iii) release the parent's buffer.
            yield from cc.flag_set(parent, my_done_flag, FlagValue(cc.rank, seq))
            # (iv) interrupt own children.
            for slot in my_family.notify_targets(0):
                yield from irq.send(
                    cc.core, self.comm.core_of(children[slot - 1]), msg
                )
            # (v) stage into the assembly buffer, deliver when complete.
            if idx == 0:
                assembly = bytearray(nbytes)
            yield from cc.get(cc.rank, self.buffers[b].offset, scratch.sub(0, span), span)
            assert assembly is not None
            assembly[off : off + span] = scratch.sub(0, span).read()
            if idx == nchunks - 1:
                self.mailboxes[cc.rank].deposit(bytes(assembly))
                assembly = None
