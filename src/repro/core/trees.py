"""Propagation and notification trees for OC-Bcast.

Propagation tree (paper Section 4.1): a k-ary tree over *positions*
``0..P-1`` -- position ``p``'s children are ``pk+1 .. pk+k`` -- combined
with a position-to-rank assignment.  The paper's id-based assignment maps
position ``p`` to rank ``(root + p) mod P``, giving exactly "the children
of core i are the cores with ids (s + ik + 1) mod P to (s + (i+1)k) mod
P".  A topology-aware assignment (:func:`topology_aware_order`) keeps the
same shape but places ranks to shorten parent-child mesh distances -- the
orthogonal optimisation the paper cites as [4] and leaves out; we include
it as an ablation.

Notification tree (paper Section 4.1, Figure 5): within each *family* --
a parent and its j <= k propagation children -- notifications propagate
down a small d-ary tree (binary by default, which the paper shows is
latency-optimal) rooted at the parent: family slot ``t``'s notification
children are slots ``dt+1 .. dt+d`` (slot 0 is the parent, slots 1..j the
children in order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


def kary_parent(rank: int, root: int, size: int, k: int) -> int | None:
    """Propagation parent of ``rank`` under the id-based assignment."""
    pos = (rank - root) % size
    if pos == 0:
        return None
    return (root + (pos - 1) // k) % size


def kary_children(rank: int, root: int, size: int, k: int) -> list[int]:
    """Propagation children of ``rank`` under the id-based assignment."""
    pos = (rank - root) % size
    first = pos * k + 1
    return [(root + p) % size for p in range(first, min(first + k, size))]


def kary_depth(size: int, k: int) -> int:
    """Number of tree levels below the root (0 for a single node)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    depth, reach = 0, 1
    width = k
    while reach < size:
        reach += width
        width *= k
        depth += 1
    return depth


@dataclass(frozen=True)
class NotificationTree:
    """The d-ary notification tree inside one propagation family.

    Family slots: 0 is the parent, 1..nchildren are the propagation
    children in child-index order.
    """

    nchildren: int
    degree: int = 2

    def __post_init__(self) -> None:
        if self.nchildren < 0:
            raise ValueError("nchildren must be >= 0")
        if self.degree < 1:
            raise ValueError("notification degree must be >= 1")

    def notify_targets(self, slot: int) -> list[int]:
        """Family slots that ``slot`` notifies (its d-ary heap children)."""
        if not 0 <= slot <= self.nchildren:
            raise ValueError(f"slot {slot} outside family of {self.nchildren}")
        first = self.degree * slot + 1
        return [t for t in range(first, first + self.degree) if t <= self.nchildren]

    def notifier_of(self, slot: int) -> int:
        """The family slot that notifies ``slot`` (slots >= 1 only)."""
        if not 1 <= slot <= self.nchildren:
            raise ValueError(f"slot {slot} has no notifier")
        return (slot - 1) // self.degree

    def depth(self) -> int:
        """Longest notifier chain from the parent to any child."""
        d = 0
        for slot in range(1, self.nchildren + 1):
            hops, t = 0, slot
            while t != 0:
                t = self.notifier_of(t)
                hops += 1
            d = max(d, hops)
        return d


@dataclass(frozen=True)
class PropagationTree:
    """A k-ary propagation tree over ranks ``0..size-1``.

    ``order[p]`` is the rank at position ``p``; ``order[0]`` is the root.
    The default order is the paper's id-based assignment.
    """

    size: int
    k: int
    root: int = 0
    order: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0 <= self.root < self.size:
            raise ValueError(f"root {self.root} outside 0..{self.size - 1}")
        order = self.order or tuple(
            (self.root + p) % self.size for p in range(self.size)
        )
        if sorted(order) != list(range(self.size)):
            raise ValueError("order must be a permutation of ranks")
        if order[0] != self.root:
            raise ValueError("order[0] must be the root")
        object.__setattr__(self, "order", order)
        object.__setattr__(
            self, "_pos", {rank: p for p, rank in enumerate(order)}
        )

    # -- navigation -----------------------------------------------------------

    def __contains__(self, rank: int) -> bool:
        return rank in self._pos  # type: ignore[attr-defined]

    def position_of(self, rank: int) -> int:
        return self._pos[rank]  # type: ignore[attr-defined]

    def rank_at(self, pos: int) -> int:
        return self.order[pos]

    def parent_of(self, rank: int) -> int | None:
        pos = self.position_of(rank)
        if pos == 0:
            return None
        return self.order[(pos - 1) // self.k]

    def children_of(self, rank: int) -> list[int]:
        pos = self.position_of(rank)
        first = pos * self.k + 1
        return [self.order[p] for p in range(first, min(first + self.k, self.size))]

    def child_index(self, rank: int) -> int:
        """Index of ``rank`` among its parent's children (doneFlag slot)."""
        pos = self.position_of(rank)
        if pos == 0:
            raise ValueError("the root has no child index")
        return (pos - 1) % self.k

    def is_leaf(self, rank: int) -> bool:
        return not self.children_of(rank)

    def depth(self) -> int:
        return kary_depth(self.size, self.k)

    def levels(self) -> list[list[int]]:
        """Ranks grouped by tree level, root first."""
        out: list[list[int]] = []
        pos = 0
        width = 1
        while pos < self.size:
            out.append([self.order[p] for p in range(pos, min(pos + width, self.size))])
            pos += width
            width *= self.k
        return out


@dataclass(frozen=True)
class MemberTree:
    """A k-ary propagation tree over an explicit *member subset*.

    Where :class:`PropagationTree` spans every rank ``0..size-1``, a
    MemberTree spans only ``members`` -- the survivors of the current
    membership view -- while keeping ranks in their original id space,
    so FT OC-Bcast can rebuild a smaller tree after a crash without
    renumbering anyone.  ``members[0]`` is the root; positions are
    assigned in member order using the same array-tree arithmetic
    (position ``p``'s children are ``pk+1..pk+k``), and the navigation
    API matches :class:`PropagationTree` so the broadcast engine can use
    either interchangeably.
    """

    members: tuple[int, ...]
    k: int

    def __post_init__(self) -> None:
        members = tuple(self.members)
        if not members:
            raise ValueError("a member tree needs at least the root")
        if len(set(members)) != len(members):
            raise ValueError("duplicate ranks in member tree")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        object.__setattr__(self, "members", members)
        object.__setattr__(
            self, "_pos", {rank: p for p, rank in enumerate(members)}
        )

    @classmethod
    def survivors(
        cls,
        size: int,
        k: int,
        root: int,
        dead: Sequence[int] | set[int] = (),
        order: Sequence[int] | None = None,
    ) -> "MemberTree":
        """The tree over every rank of ``0..size-1`` not in ``dead``.

        ``order`` (default: the paper's id-based assignment rotated to
        the root) fixes the position order *before* the dead are
        filtered out, so survivors keep their relative placement and two
        cores computing the tree from the same view agree exactly.

        The root itself may be dead: the tree *re-roots* at the first
        surviving rank of the base order (the same rank every survivor
        computes), and the remaining survivors keep their id-rotation
        placement -- orphaned subtrees are re-parented by the position
        arithmetic exactly as for a dead interior node.  This is what
        lets the coordinator-failover path rebuild a broadcast tree
        after the original root crashes.
        """
        base = tuple(order) if order is not None else tuple(
            (root + p) % size for p in range(size)
        )
        if sorted(base) != list(range(size)):
            raise ValueError("order must be a permutation of ranks")
        if base[0] != root:
            raise ValueError("order[0] must be the root")
        gone = set(dead)
        return cls(tuple(r for r in base if r not in gone), k)

    # -- navigation (PropagationTree-compatible) ---------------------------

    @property
    def root(self) -> int:
        return self.members[0]

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, rank: int) -> bool:
        return rank in self._pos  # type: ignore[attr-defined]

    def position_of(self, rank: int) -> int:
        return self._pos[rank]  # type: ignore[attr-defined]

    def rank_at(self, pos: int) -> int:
        return self.members[pos]

    def parent_of(self, rank: int) -> int | None:
        pos = self.position_of(rank)
        if pos == 0:
            return None
        return self.members[(pos - 1) // self.k]

    def children_of(self, rank: int) -> list[int]:
        pos = self.position_of(rank)
        first = pos * self.k + 1
        return [
            self.members[p] for p in range(first, min(first + self.k, self.size))
        ]

    def child_index(self, rank: int) -> int:
        """Index of ``rank`` among its parent's children (doneFlag slot)."""
        pos = self.position_of(rank)
        if pos == 0:
            raise ValueError("the root has no child index")
        return (pos - 1) % self.k

    def is_leaf(self, rank: int) -> bool:
        return not self.children_of(rank)

    def depth(self) -> int:
        return kary_depth(self.size, self.k)

    def levels(self) -> list[list[int]]:
        """Members grouped by tree level, root first."""
        out: list[list[int]] = []
        pos = 0
        width = 1
        while pos < self.size:
            out.append(
                [self.members[p] for p in range(pos, min(pos + width, self.size))]
            )
            pos += width
            width *= self.k
        return out


def subtree_positions(pos: int, size: int, k: int) -> int:
    """Number of positions in the array-tree subtree rooted at ``pos``."""
    count = 0
    frontier = [pos]
    while frontier:
        count += len(frontier)
        nxt: list[int] = []
        for p in frontier:
            first = p * k + 1
            nxt.extend(range(first, min(first + k, size)))
        frontier = nxt
    return count


def topology_aware_order(
    size: int,
    k: int,
    root: int,
    distance: Callable[[int, int], int],
) -> tuple[int, ...]:
    """A position-to-rank assignment that keeps subtrees spatially compact.

    For each child position of a node, a *leader* is picked nearest to
    the node's rank, then the leader's whole subtree is filled from the
    ranks nearest to the leader -- a recursive clustering that shortens
    parent-child mesh distances at every level (the optimisation the
    paper cites as [4] and treats as orthogonal).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside 0..{size - 1}")
    order: list[int] = [root] * size

    def assign(pos: int, rank: int, pool: list[int]) -> None:
        """Place ``rank`` at ``pos``; distribute ``pool`` over its strict
        subtree."""
        order[pos] = rank
        first = pos * k + 1
        remaining = list(pool)
        for child_pos in range(first, min(first + k, size)):
            want = subtree_positions(child_pos, size, k)
            remaining.sort(key=lambda r: (distance(rank, r), r))
            leader = remaining.pop(0)
            remaining.sort(key=lambda r: (distance(leader, r), r))
            cluster = remaining[: want - 1]
            remaining = remaining[want - 1 :]
            assign(child_pos, leader, cluster)
        assert not remaining

    assign(0, root, [r for r in range(size) if r != root])
    return tuple(order)
