"""2-D Jacobi stencil with halo exchange on the simulated SCC.

The canonical HPC communication mix: per-iteration nearest-neighbour
halo exchange (point-to-point), an initial parameter broadcast, periodic
allreduce convergence checks, and a final gather of the solution -- all
through the :class:`repro.mpi.Mpi` facade so the RMA and two-sided
backends run the *same application code*.

The grid is row-block decomposed; computation is vectorised NumPy with
simulated time charged per updated point (a 533 MHz P54C does a handful
of flops per point per microsecond-ish; the default keeps compute and
communication comparable, which is where collective overheads matter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives import ReduceOp
from ..mpi import Mpi
from ..rcce import Comm
from ..scc import SccChip, SccConfig, run_spmd

#: Boundary temperature broadcast by rank 0 at start-up.
DEFAULT_TOP_TEMPERATURE = 100.0


@dataclass(frozen=True)
class StencilResult:
    """Outcome of one stencil run."""

    grid: np.ndarray          # final n x n field (assembled at rank 0)
    residuals: tuple[float, ...]  # allreduced max-deltas at each check
    iterations: int
    makespan: float           # simulated microseconds
    backend: str
    halo: str = "blocking"


def reference_stencil(
    n: int, iterations: int, top: float = DEFAULT_TOP_TEMPERATURE
) -> np.ndarray:
    """Single-process NumPy reference for correctness checks."""
    grid = np.zeros((n, n))
    grid[0, :] = top
    for _ in range(iterations):
        interior = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        grid[1:-1, 1:-1] = interior
    return grid


def run_stencil(
    n: int = 48,
    ranks: int = 8,
    iterations: int = 20,
    backend: str = "rma",
    *,
    halo: str = "blocking",
    check_every: int = 5,
    tolerance: float = 0.0,
    compute_us_per_point: float = 0.02,
    config: SccConfig | None = None,
) -> StencilResult:
    """Run ``iterations`` Jacobi sweeps of an ``n x n`` grid over
    ``ranks`` cores; returns the assembled field and timing.

    ``tolerance > 0`` enables early termination when the allreduced
    residual falls below it (all ranks decide identically from the
    reduced value).
    """
    if n % ranks:
        raise ValueError(f"grid rows {n} must divide evenly over {ranks} ranks")
    if n // ranks < 1 or n < 3:
        raise ValueError("grid too small for this decomposition")
    if iterations < 1 or check_every < 1:
        raise ValueError("iterations and check_every must be >= 1")
    if halo not in ("blocking", "nonblocking"):
        raise ValueError("halo must be 'blocking' or 'nonblocking'")

    chip = SccChip(config)
    if ranks > chip.num_cores:
        raise ValueError(f"need {ranks} cores, chip has {chip.num_cores}")
    comm = Comm(chip, ranks=list(range(ranks)))
    mpi = Mpi(comm, backend=backend)
    rows = n // ranks
    row_bytes = n * 8
    op_max = ReduceOp.max("<f8")

    residuals: list[float] = []
    done_iters = [0]
    collected: dict[str, np.ndarray] = {}

    def program(core):
        rank = mpi.attach(core)
        me, P = rank.rank, rank.size

        # --- start-up: rank 0 broadcasts the boundary parameters ---
        params = rank.alloc(8)
        if me == 0:
            params.write(np.array([DEFAULT_TOP_TEMPERATURE]).tobytes())
        yield from rank.bcast(params, 8, root=0)
        top_temp = float(np.frombuffer(params.read(), "<f8")[0])

        # Local block with one ghost row on each side.
        local = np.zeros((rows + 2, n))
        if me == 0:
            local[1, :] = top_temp  # global top boundary row

        halo_up = rank.alloc(row_bytes)
        halo_down = rank.alloc(row_bytes)
        out_up = rank.alloc(row_bytes)
        out_down = rank.alloc(row_bytes)
        resid_in = rank.alloc(8)
        resid_out = rank.alloc(8)

        it = 0
        while it < iterations:
            if halo == "nonblocking":
                # Post everything; serve whichever neighbour is ready.
                reqs = []
                if me > 0:
                    out_up.write(local[1].tobytes())
                    reqs.append(rank.irecv(me - 1, halo_up, row_bytes))
                    reqs.append(rank.isend(me - 1, out_up, row_bytes))
                if me < P - 1:
                    out_down.write(local[rows].tobytes())
                    reqs.append(rank.irecv(me + 1, halo_down, row_bytes))
                    reqs.append(rank.isend(me + 1, out_down, row_bytes))
                yield from rank.wait_all(reqs)
                if me > 0:
                    local[0] = np.frombuffer(halo_up.read(), "<f8")
                if me < P - 1:
                    local[rows + 1] = np.frombuffer(halo_down.read(), "<f8")
            else:
                # --- halo exchange (parity-scheduled rendezvous) ---
                for phase in (0, 1):
                    if me % 2 == phase:
                        if me > 0:
                            halo_up.write(local[1].tobytes())
                            yield from rank.send(me - 1, halo_up, row_bytes)
                        if me < P - 1:
                            halo_down.write(local[rows].tobytes())
                            yield from rank.send(me + 1, halo_down, row_bytes)
                    else:
                        if me < P - 1:
                            yield from rank.recv(me + 1, halo_down, row_bytes)
                            local[rows + 1] = np.frombuffer(halo_down.read(), "<f8")
                        if me > 0:
                            yield from rank.recv(me - 1, halo_up, row_bytes)
                            local[0] = np.frombuffer(halo_up.read(), "<f8")

            # --- Jacobi sweep on the owned rows (vectorised) ---
            new = local.copy()
            lo = 2 if me == 0 else 1          # keep the global top boundary
            hi = rows if me == P - 1 else rows + 1
            if hi > lo:
                new[lo:hi, 1:-1] = 0.25 * (
                    local[lo - 1 : hi - 1, 1:-1]
                    + local[lo + 1 : hi + 1, 1:-1]
                    + local[lo:hi, :-2]
                    + local[lo:hi, 2:]
                )
            yield core.compute(compute_us_per_point * rows * n)
            delta = float(np.max(np.abs(new - local)))
            local = new
            it += 1

            # --- periodic convergence check ---
            if it % check_every == 0 or it == iterations:
                resid_in.write(np.array([delta]).tobytes())
                yield from rank.allreduce(resid_in, resid_out, 8, op_max)
                global_delta = float(np.frombuffer(resid_out.read(), "<f8")[0])
                if me == 0:
                    residuals.append(global_delta)
                if tolerance > 0.0 and global_delta < tolerance:
                    break

        done_iters[0] = it

        # --- gather the field at rank 0 ---
        block = rank.alloc(rows * row_bytes)
        block.write(local[1 : rows + 1].tobytes())
        full = rank.alloc(ranks * rows * row_bytes)
        yield from rank.gather(block, full, rows * row_bytes, root=0)
        if me == 0:
            collected["grid"] = np.frombuffer(full.read(), "<f8").reshape(n, n).copy()

    result = run_spmd(chip, program, core_ids=list(range(ranks)))
    return StencilResult(
        grid=collected["grid"],
        residuals=tuple(residuals),
        iterations=done_iters[0],
        makespan=result.makespan,
        backend=backend,
        halo=halo,
    )
