"""Parallel application kernels on the simulated chip.

The paper's final sentence plans to "integrate [RMA collectives] in an
MPI library, so we can analyze the overall performance gain in parallel
applications".  This package performs that analysis: small but complete
SPMD application kernels written against the :class:`repro.mpi.Mpi`
facade, runnable on either backend (``rma`` = the paper's collectives,
``two_sided`` = RCCE_comm's), with bit-identical numerical results and
directly comparable simulated run times.

- :mod:`repro.apps.stencil` -- 2-D Jacobi iteration with halo exchange,
  parameter broadcast and allreduce convergence checks (the canonical
  HPC communication mix).
- :mod:`repro.apps.power_iteration` -- distributed power iteration
  (dense matvec + allgather + allreduce normalisation), a
  broadcast/allgather-heavy kernel.
"""

from .power_iteration import PowerIterationResult, run_power_iteration
from .stencil import StencilResult, run_stencil

__all__ = [
    "PowerIterationResult",
    "StencilResult",
    "run_power_iteration",
    "run_stencil",
]
