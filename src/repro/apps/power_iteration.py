"""Distributed power iteration on the simulated SCC.

A broadcast/allgather-heavy kernel: the dominant eigenpair of a dense
symmetric matrix, row-block distributed.  Per iteration every rank
needs the *whole* vector (allgather), multiplies its row block
(vectorised NumPy, simulated flop time), and the normalisation is a
global allreduce -- so run time is governed by exactly the collectives
the paper optimises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..collectives import ReduceOp
from ..mpi import Mpi
from ..rcce import Comm
from ..scc import SccChip, SccConfig, run_spmd


@dataclass(frozen=True)
class PowerIterationResult:
    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    makespan: float
    backend: str


def make_matrix(n: int, seed: int = 7) -> np.ndarray:
    """A deterministic symmetric matrix with a well-separated top
    eigenvalue (diagonally shifted random symmetric)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = (a + a.T) / 2.0
    a += np.diag(np.linspace(n, 1, n))  # spread the spectrum
    return a


def reference_power_iteration(a: np.ndarray, iterations: int) -> tuple[float, np.ndarray]:
    """Single-process reference."""
    v = np.ones(a.shape[0])
    for _ in range(iterations):
        w = a @ v
        v = w / np.linalg.norm(w)
    return float(v @ a @ v), v


def run_power_iteration(
    n: int = 64,
    ranks: int = 8,
    iterations: int = 15,
    backend: str = "rma",
    *,
    us_per_flop: float = 0.004,
    seed: int = 7,
    config: SccConfig | None = None,
) -> PowerIterationResult:
    """Distributed power iteration over ``ranks`` cores."""
    if n % ranks:
        raise ValueError(f"matrix dim {n} must divide evenly over {ranks} ranks")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    chip = SccChip(config)
    if ranks > chip.num_cores:
        raise ValueError(f"need {ranks} cores, chip has {chip.num_cores}")
    comm = Comm(chip, ranks=list(range(ranks)))
    mpi = Mpi(comm, backend=backend)
    a = make_matrix(n, seed)
    rows = n // ranks
    block_bytes = rows * 8
    op_sum = ReduceOp.sum("<f8")
    out: dict[str, object] = {}

    def program(core):
        rank = mpi.attach(core)
        me = rank.rank
        a_local = a[me * rows : (me + 1) * rows, :]  # this rank's rows
        v = np.ones(n)

        vec_block = rank.alloc(block_bytes)
        vec_full = rank.alloc(ranks * block_bytes)
        norm_in = rank.alloc(8)
        norm_out = rank.alloc(8)

        for _ in range(iterations):
            # Local matvec over the full current vector.
            w_local = a_local @ v
            yield core.compute(us_per_flop * 2 * rows * n)
            # Global norm^2 via allreduce.
            norm_in.write(np.array([float(w_local @ w_local)]).tobytes())
            yield core.compute(us_per_flop * 2 * rows)
            yield from rank.allreduce(norm_in, norm_out, 8, op_sum)
            norm = float(np.sqrt(np.frombuffer(norm_out.read(), "<f8")[0]))
            # Normalise own block, allgather the new vector.
            vec_block.write((w_local / norm).tobytes())
            yield from rank.allgather(vec_block, vec_full, block_bytes)
            v = np.frombuffer(vec_full.read(), "<f8").copy()

        if me == 0:
            # Rayleigh quotient needs one more allgathered matvec worth of
            # data; v is already globally consistent here.
            out["eigenvalue"] = float(v @ a @ v)
            out["eigenvector"] = v

    result = run_spmd(chip, program, core_ids=list(range(ranks)))
    return PowerIterationResult(
        eigenvalue=out["eigenvalue"],  # type: ignore[arg-type]
        eigenvector=out["eigenvector"],  # type: ignore[arg-type]
        iterations=iterations,
        makespan=result.makespan,
        backend=backend,
    )
