"""Exception types raised by the simulation kernel.

The fault-tolerance layers (:mod:`repro.faults`, the FT protocol modes)
need to *assert on* failures, not just observe strings, so the subclasses
below carry structured fields: which process failed, at what simulated
time, and at which fault site (a flag name, an MPB offset, a link).
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class DeadlockError(SimError):
    """Raised by :meth:`Simulator.run` when processes remain blocked but the
    event queue is empty, i.e. no event can ever wake them again.

    The message lists each stuck process together with the event it was
    last blocked on and the simulated time it last ran, so protocol bugs
    (e.g. a flag that is polled but never set) and injected-fault
    deadlocks are diagnosable from the traceback alone.

    ``stuck`` holds ``(process_name, waiting_on_event_name, last_resume
    _time)`` triples and ``sim_time`` the time of detection.
    """

    def __init__(
        self,
        message: str,
        *,
        stuck: tuple[tuple[str, str, float], ...] = (),
        sim_time: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.stuck = stuck
        self.sim_time = sim_time


class Interrupted(SimError):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ScheduleInPastError(SimError):
    """Raised when an event is scheduled with a negative delay."""


class TimeoutError(SimError, TimeoutError):  # noqa: A001  (base resolves to the builtin)
    """A bounded wait (flag poll budget, acked put) expired.

    Subclasses the builtin ``TimeoutError`` as well, so generic
    ``except TimeoutError`` handlers in model code also catch it.
    """

    def __init__(
        self,
        message: str,
        *,
        process: str = "",
        sim_time: float = 0.0,
        site: str = "",
    ) -> None:
        super().__init__(message)
        self.process = process
        self.sim_time = sim_time
        self.site = site


class WatchdogError(SimError):
    """Thrown into a process by the kernel watchdog when the process has
    not advanced for a full watchdog interval (a silent stall).

    ``idle_for`` is the simulated time the process spent blocked;
    ``site`` names the event it was blocked on.
    """

    def __init__(
        self,
        message: str,
        *,
        process: str = "",
        sim_time: float = 0.0,
        site: str = "",
        idle_for: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.process = process
        self.sim_time = sim_time
        self.site = site
        self.idle_for = idle_for


class FaultInjected(SimError):
    """An injected fault made the current operation impossible (e.g. the
    executing core was crashed by the fault plan).

    ``kind`` is the :class:`repro.faults.FaultKind` value string and
    ``site`` the location the fault fired at (``core7``, ``mpb3@64``...).
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "",
        site: str = "",
        sim_time: float = 0.0,
        process: str = "",
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.site = site
        self.sim_time = sim_time
        self.process = process
