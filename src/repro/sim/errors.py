"""Exception types raised by the simulation kernel."""


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class DeadlockError(SimError):
    """Raised by :meth:`Simulator.run` when processes remain blocked but the
    event queue is empty, i.e. no event can ever wake them again.

    The message lists the stuck processes so protocol bugs (e.g. a flag that
    is polled but never set) are diagnosable from the test failure alone.
    """


class Interrupted(SimError):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ScheduleInPastError(SimError):
    """Raised when an event is scheduled with a negative delay."""
