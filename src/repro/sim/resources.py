"""Contended resources for hardware modeling.

:class:`Resource` models a server (an MPB access port, a mesh link) that
serves requests strictly FIFO, one at a time.  Model code uses it either
with explicit acquire/release::

    yield port.acquire()
    ... hold ...
    port.release()

or, for the common "occupy for a fixed service time" pattern, with
:meth:`Resource.serve`, which combines queueing and the hold in one
sub-generator::

    yield from port.serve(hold=0.0126)

For tight per-item loops (EXACT-mode cache-line arbitration) there is a
third form: :meth:`Resource.try_begin_run` coalesces an *uncontended* run
of ``n`` identical serve(service)+gap cycles into a single scheduled
wake-up.  The run is optimistic: the moment any other requester calls
:meth:`acquire`, the resource reconstructs the exact per-cycle state the
per-item loop would have produced at that instant (who holds the slot,
until when, with what queue wait) and wakes the runner at the next cycle
boundary to fall back to per-item arbitration.  The reconstruction uses
the same iterative float arithmetic as the per-item timeouts, so traces
and latencies are bit-identical either way -- see docs/PERFORMANCE.md for
the determinism contract.

The resource keeps utilisation statistics so benches can report port
occupancy directly.
"""

from __future__ import annotations

import heapq
from typing import Generator

from .errors import SimError
from .kernel import Event, Simulator


class _CoalescedRun:
    """Bookkeeping of one optimistic uncontended run on a Resource.

    The run owner sleeps on :attr:`event`; it fires with the number of
    completed cycles -- ``n`` at the natural end, fewer if an intruder
    forced an abort at a cycle boundary.
    """

    __slots__ = (
        "resource", "start", "n", "service", "gap", "event", "closed",
    )

    def __init__(
        self,
        resource: "Resource",
        start: float,
        n: int,
        service: float,
        gap: float,
        event: Event,
    ) -> None:
        self.resource = resource
        self.start = start
        self.n = n
        self.service = service
        self.gap = gap
        self.event = event
        self.closed = False

    # Exact-arithmetic contract: cycle windows are generated with the same
    # sequence of float additions the per-item loop performs
    # (t += service at the grant, t += gap after the release), never with
    # a multiplication, so every reconstructed timestamp is bit-equal to
    # the one the per-item loop would have scheduled.

    def final_service_end(self) -> float:
        """When the last cycle's service window closes (the run's port
        occupancy ends; the final gap follows)."""
        t = self.start
        service, gap = self.service, self.gap
        for _ in range(self.n - 1):
            t = t + service
            t = t + gap
        return t + service

    def _finalize(self, acquisitions: int, busy_cycles: int) -> None:
        """Fold the run's virtual slot usage into the stats and detach
        from the resource (waits were all zero, so only acquisition count
        and busy time accrue)."""
        self.closed = True
        res = self.resource
        res._run = None
        res.total_acquisitions += acquisitions
        res.busy_time += busy_cycles * self.service
        res.coalesced_runs += 1
        res.coalesced_cycles += acquisitions
        if res.wait_hist is not None:
            res.wait_hist.observe_zeros(acquisitions)  # type: ignore[attr-defined]

    def _pre_complete(self, _arg: object) -> None:
        """Fires at :meth:`final_service_end` (scheduled at begin time).

        The per-item loop frees the slot inside the owner's process
        resumption -- a now-queue callback that runs *after* every heap
        event of the instant.  Mirror that event shape: this heap marker
        (whose seq, assigned at begin time, stands in for the last service
        timer's) only enqueues :meth:`_finish`; the actual detach and the
        owner's end-of-gap wake-up happen there, in now-queue position.
        """
        if self.closed:
            return
        sim = self.resource.sim
        sim._schedule_at(sim.now, self._finish, None)

    def _finish(self, _arg: object) -> None:
        if self.closed:
            # A same-instant intruder (with an older seq) got here first
            # and already detached the run.
            return
        self._finalize(self.n, self.n)
        sim = self.resource.sim
        sim._schedule_at(sim.now + self.gap, _succeed_with, (self.event, self.n))

    def _intrude(self) -> None:
        """Another requester arrived mid-run: materialise the exact
        per-cycle state at the current instant and schedule the owner's
        fall-back wake-up.  Called by :meth:`Resource.acquire` *before*
        the intruder's request is processed."""
        res = self.resource
        sim = res.sim
        now = sim.now
        service, gap = self.service, self.gap
        # Locate the cycle containing `now` (exact float walk).  `now` is
        # at most final_service_end(): past that, _pre_complete has
        # already detached the run.
        t = self.start
        w_start = w_end = boundary = t
        i = 0
        for i in range(self.n):
            w_start = t
            w_end = t + service
            boundary = w_end + gap
            if now <= boundary:
                break
            t = boundary

        done = i + 1  # cycle i's service completes before the owner yields
        if now < w_end:
            # Inside cycle i's service window: the owner virtually holds
            # the slot until w_end; the intruder queues and is granted by
            # a materialised release, exactly as the per-item loop would.
            # The release is two-hop (heap marker at w_end, real release
            # and owner wake-up in now-queue position) because that is
            # where the per-item loop's process resumption runs it --
            # same-instant events of other processes must interleave with
            # it identically.
            self._finalize(done, done - 1)  # window i's busy time accrues
            res._in_use = 1                 # at the materialised release
            res._busy_since = w_start
            sim._schedule_at(
                w_end, _hop_release, (res, self.event, boundary, done)
            )
        elif now < boundary:
            # In the gap after cycle i: slot free, intruder granted
            # immediately; the owner falls back at the cycle boundary.
            self._finalize(done, done)
            sim._schedule_at(boundary, _succeed_with, (self.event, done))
        else:
            # Exactly at cycle i's boundary: the intruder's triggering
            # event outran the owner's (virtual) boundary timer, which in
            # the per-item world was scheduled at w_end -- an event firing
            # at this exact timestamp almost surely carries an older seq
            # (it was scheduled before w_end; landing exactly on the
            # boundary from within the gap would need an unrelated float
            # coincidence).  So the intruder wins the instant: slot free,
            # owner's wake-up queued behind the current event.
            self._finalize(done, done)
            sim._schedule_at(now, _succeed_with, (self.event, done))


def _hop_release(arg: tuple["Resource", Event, float, int]) -> None:
    """Heap marker at a materialised service window's end: defer the real
    release to a now-queue callback (the per-item loop releases inside the
    owner's process resumption, which runs in that position)."""
    sim = arg[0].sim
    sim._schedule_at(sim.now, _finish_release, arg)


def _finish_release(arg: tuple["Resource", Event, float, int]) -> None:
    """Release the materialised hold (granting the best waiter), then
    schedule the run owner's fall-back wake-up -- in that order, matching
    the per-item loop's release-then-rest-timer sequence."""
    res, event, boundary, done = arg
    res.release()
    res.sim._schedule_at(boundary, _succeed_with, (event, done))


def _succeed_with(pair: tuple[Event, int]) -> None:
    ev, value = pair
    ev.succeed(value)


class Resource:
    """A server with a fixed number of identical slots (default 1).

    Grant policy: waiters are served in ascending ``priority`` order,
    ties broken FIFO.  The default priority of 0 for every request gives
    plain FIFO.  Hardware arbiters that structurally favour some
    requesters (e.g. the SCC MPB port favouring mesh-closer cores, the
    source of Figure 4's unfairness) are modeled by passing a priority.
    """

    __slots__ = (
        "sim", "capacity", "name", "_in_use", "_waiters", "_seq", "_run",
        "total_acquisitions", "total_wait_time", "busy_time", "_busy_since",
        "max_queue", "queue_time", "_q_mark",
        "coalesced_runs", "coalesced_cycles", "wait_hist",
    )

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        # Heap of (priority, seq, requested_at, event).
        self._waiters: list[tuple[float, int, float, Event]] = []
        self._seq = 0
        #: Active coalesced run, if any (see try_begin_run).
        self._run: _CoalescedRun | None = None
        # Statistics.  Queue-depth bookkeeping lives entirely on the
        # contended branches, so the uncontended fast path pays nothing;
        # ``wait_hist`` is an optional sink (one `is not None` branch per
        # grant) the metrics layer attaches -- see repro.obs.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.busy_time = 0.0
        self._busy_since: float | None = None
        self.max_queue = 0
        self.queue_time = 0.0  # time-integral of queue depth
        self._q_mark = 0.0     # last instant the queue depth changed
        self.coalesced_runs = 0
        self.coalesced_cycles = 0
        self.wait_hist: object | None = None

    # -- core protocol ------------------------------------------------------

    def acquire(self, priority: float = 0.0) -> Event:
        """Return an event that fires when a slot is granted to the caller.

        The caller must eventually call :meth:`release`.
        """
        if self._run is not None:
            self._run._intrude()
        self.total_acquisitions += 1
        ev = Event(self.sim, f"{self.name}.acquire")
        if self._in_use < self.capacity and not self._waiters:
            self._grant(ev, waited=0.0)
        else:
            now = self.sim.now
            self.queue_time += len(self._waiters) * (now - self._q_mark)
            self._q_mark = now
            self._seq += 1
            heapq.heappush(self._waiters, (priority, self._seq, now, ev))
            if len(self._waiters) > self.max_queue:
                self.max_queue = len(self._waiters)
        return ev

    def release(self) -> None:
        """Release one slot and grant it to the best waiter, if any."""
        if self._in_use <= 0:
            raise SimError(f"{self.name}: release() without matching acquire()")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            now = self.sim.now
            self.queue_time += len(self._waiters) * (now - self._q_mark)
            self._q_mark = now
            _, _, requested_at, ev = heapq.heappop(self._waiters)
            self._grant(ev, now - requested_at)

    def _grant(self, ev: Event, waited: float) -> None:
        self._in_use += 1
        if self._busy_since is None:
            self._busy_since = self.sim.now
        self.total_wait_time += waited
        if self.wait_hist is not None:
            self.wait_hist.observe(waited)  # type: ignore[attr-defined]
        ev.succeed(waited)

    # -- conveniences --------------------------------------------------------

    def serve(
        self, hold: float, priority: float = 0.0
    ) -> Generator[Event, object, float]:
        """Queue for a slot, hold it ``hold`` time units, then release.

        Returns the time spent waiting in the queue (0.0 if uncontended).
        """
        waited = yield self.acquire(priority)
        try:
            if hold > 0:
                yield self.sim.timeout(hold)
        finally:
            self.release()
        return float(waited)  # type: ignore[arg-type]

    def try_begin_run(self, n: int, service: float, gap: float) -> Event | None:
        """Begin a coalesced run of ``n`` serve(``service``)+``gap`` cycles.

        Only possible on an idle single-slot resource (free, no waiters, no
        active run) with strictly positive ``service`` and ``gap`` -- the
        regime where the coalesced schedule provably reproduces the
        per-item loop's arbitration.  Returns an event whose value is the
        number of cycles completed: ``n`` when the run finished untouched,
        fewer when an intruder aborted it at a cycle boundary (the caller
        then falls back to per-item serving for the remainder).  Returns
        ``None`` when coalescing cannot engage.
        """
        if (
            n < 1
            or self.capacity != 1
            or self._in_use
            or self._waiters
            or self._run is not None
            or service <= 0.0
            or gap <= 0.0
        ):
            return None
        sim = self.sim
        ev = Event(sim, f"{self.name}.run")
        run = _CoalescedRun(self, sim.now, n, service, gap, ev)
        self._run = run
        sim._schedule_at(run.final_service_end(), run._pre_complete, None)
        return ev

    # -- introspection --------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilisation(self, elapsed: float | None = None) -> float:
        """Fraction of time at least one slot was busy.

        Note: virtual occupancy of an in-flight coalesced run is folded in
        only when the run ends, so sample after the simulation drains.
        """
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        span = elapsed if elapsed is not None else self.sim.now
        return busy / span if span > 0 else 0.0

    def mean_queue_depth(self, elapsed: float | None = None) -> float:
        """Time-averaged number of queued (not yet granted) requests."""
        integral = self.queue_time
        if self._waiters:
            integral += len(self._waiters) * (self.sim.now - self._q_mark)
        span = elapsed if elapsed is not None else self.sim.now
        return integral / span if span > 0 else 0.0

    def stats(self) -> dict[str, float]:
        """Snapshot of the accumulated counters (for repro.obs harvesting)."""
        return {
            "acquisitions": float(self.total_acquisitions),
            "wait_time": self.total_wait_time,
            "busy_time": self.busy_time,
            "utilisation": self.utilisation(),
            "max_queue": float(self.max_queue),
            "mean_queue_depth": self.mean_queue_depth(),
            "coalesced_runs": float(self.coalesced_runs),
            "coalesced_cycles": float(self.coalesced_cycles),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} busy, "
            f"{len(self._waiters)} queued>"
        )
