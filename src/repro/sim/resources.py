"""Contended resources for hardware modeling.

:class:`Resource` models a server (an MPB access port, a mesh link) that
serves requests strictly FIFO, one at a time.  Model code uses it either
with explicit acquire/release::

    yield port.acquire()
    ... hold ...
    port.release()

or, for the common "occupy for a fixed service time" pattern, with
:meth:`Resource.serve`, which combines queueing and the hold in one
sub-generator::

    yield from port.serve(hold=0.0126)

The resource keeps utilisation statistics so benches can report port
occupancy directly.
"""

from __future__ import annotations

import heapq
from typing import Generator

from .errors import SimError
from .kernel import Event, Simulator


class Resource:
    """A server with a fixed number of identical slots (default 1).

    Grant policy: waiters are served in ascending ``priority`` order,
    ties broken FIFO.  The default priority of 0 for every request gives
    plain FIFO.  Hardware arbiters that structurally favour some
    requesters (e.g. the SCC MPB port favouring mesh-closer cores, the
    source of Figure 4's unfairness) are modeled by passing a priority.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        # Heap of (priority, seq, requested_at, event).
        self._waiters: list[tuple[float, int, float, Event]] = []
        self._seq = 0
        # Statistics.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.busy_time = 0.0
        self._busy_since: float | None = None

    # -- core protocol ------------------------------------------------------

    def acquire(self, priority: float = 0.0) -> Event:
        """Return an event that fires when a slot is granted to the caller.

        The caller must eventually call :meth:`release`.
        """
        self.total_acquisitions += 1
        ev = Event(self.sim, f"{self.name}.acquire")
        if self._in_use < self.capacity and not self._waiters:
            self._grant(ev, waited=0.0)
        else:
            self._seq += 1
            heapq.heappush(self._waiters, (priority, self._seq, self.sim.now, ev))
        return ev

    def release(self) -> None:
        """Release one slot and grant it to the best waiter, if any."""
        if self._in_use <= 0:
            raise SimError(f"{self.name}: release() without matching acquire()")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            _, _, requested_at, ev = heapq.heappop(self._waiters)
            self._grant(ev, self.sim.now - requested_at)

    def _grant(self, ev: Event, waited: float) -> None:
        self._in_use += 1
        if self._busy_since is None:
            self._busy_since = self.sim.now
        self.total_wait_time += waited
        ev.succeed(waited)

    # -- conveniences --------------------------------------------------------

    def serve(
        self, hold: float, priority: float = 0.0
    ) -> Generator[Event, object, float]:
        """Queue for a slot, hold it ``hold`` time units, then release.

        Returns the time spent waiting in the queue (0.0 if uncontended).
        """
        waited = yield self.acquire(priority)
        try:
            if hold > 0:
                yield self.sim.timeout(hold)
        finally:
            self.release()
        return float(waited)  # type: ignore[arg-type]

    # -- introspection --------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilisation(self, elapsed: float | None = None) -> float:
        """Fraction of time at least one slot was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        span = elapsed if elapsed is not None else self.sim.now
        return busy / span if span > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} busy, "
            f"{len(self._waiters)} queued>"
        )
