"""Lightweight event tracing.

A :class:`Tracer` collects timestamped records emitted by model components
(cores, ports, algorithms).  It is off by default and costs one branch per
emit when disabled, so leaving emit calls in hot paths is acceptable.

Benches use traces to derive per-phase timings (e.g. "when did the last
leaf finish its off-chip copy"), and tests use them to assert protocol
ordering properties (a child never gets a chunk before its notify).

Beyond the stored record list, a tracer supports *listeners*: callables
invoked synchronously with each record as it is emitted (after filters).
The observability layer builds on this -- the online
:class:`repro.obs.InvariantChecker` subscribes as a listener and verifies
protocol invariants while the simulation runs, without a second pass over
the record list.  Span-shaped records (kinds ending in ``.begin`` /
``.end``) pair up into duration events in the Chrome-trace export
(:func:`repro.obs.to_chrome_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        items = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.4f}] {self.source:<14} {self.kind:<20} {items}"


class Tracer:
    """Collects :class:`TraceRecord` objects when enabled."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._filters: list[Callable[[TraceRecord], bool]] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(time, source, kind, detail)
        if all(f(rec) for f in self._filters):
            self.records.append(rec)
            for listener in self._listeners:
                listener(rec)

    def add_filter(self, predicate: Callable[[TraceRecord], bool]) -> None:
        """Only keep records for which ``predicate`` is true."""
        self._filters.append(predicate)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously with each kept record.

        Listeners see records in emission order, after filters; they must
        not mutate simulation state (they run inside model hot paths).
        """
        self._listeners.append(listener)

    def clear(self) -> None:
        self.records.clear()

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def from_source(self, source: str) -> list[TraceRecord]:
        return [r for r in self.records if r.source == source]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
