"""Minimal deterministic discrete-event simulation kernel.

The kernel follows the classic process-interaction style (compare SimPy):
model code is written as Python generators that ``yield`` :class:`Event`
objects and are resumed when those events fire.  Everything is single
threaded and deterministic: events scheduled for the same timestamp fire
in scheduling order.

Public surface:

- :class:`Simulator` -- the event loop (``now``, ``run``, ``process``,
  ``timeout``, ``event``).
- :class:`Event` -- one-shot occurrence carrying an optional value.
- :class:`Process` -- a running generator; itself an event that fires when
  the generator returns (its value is the generator's return value).
- :class:`Resource` -- FIFO server used to model contended hardware ports.
- :func:`all_of` / :func:`any_of` -- event combinators.
"""

from .errors import (
    DeadlockError,
    FaultInjected,
    Interrupted,
    SimError,
    TimeoutError,
    WatchdogError,
)
from .kernel import Event, Process, Simulator, all_of, any_of
from .resources import Resource
from .trace import TraceRecord, Tracer

__all__ = [
    "DeadlockError",
    "Event",
    "FaultInjected",
    "Interrupted",
    "Process",
    "Resource",
    "SimError",
    "Simulator",
    "TimeoutError",
    "TraceRecord",
    "Tracer",
    "WatchdogError",
    "all_of",
    "any_of",
]
