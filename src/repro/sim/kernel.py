"""Event loop, one-shot events and generator-based processes.

Determinism contract
--------------------
Two runs of the same model with the same inputs produce identical event
orders.  This is guaranteed by (a) a single global sequence number that
breaks timestamp ties in FIFO order and (b) callbacks being invoked in
registration order.  Model code must not consult wall-clock time or
unseeded RNGs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import (
    DeadlockError,
    Interrupted,
    ScheduleInPastError,
    SimError,
    WatchdogError,
)

# A model coroutine: yields Events, may `return` a value.
ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    makes it *triggered* and schedules its callbacks to run at the current
    simulation time.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "_value", "_exc", "triggered", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed`. Only valid once triggered."""
        if not self.triggered:
            raise SimError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def failed(self) -> bool:
        return self.triggered and self._exc is not None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:  # inline of Simulator._dispatch (hot path)
            self._callbacks = []
            sim = self.sim
            seq = sim._seq
            nowq = sim._now_queue
            for fn in callbacks:
                seq += 1
                nowq.append((seq, fn, self))
            sim._seq = seq
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event so that waiters see ``exc`` raised."""
        if self.triggered:
            raise SimError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._exc = exc
        self.sim._dispatch(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if it
        already has)."""
        if self.triggered:
            # Late subscription: run in the current dispatch step.
            self.sim._schedule(0.0, fn, self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Process(Event):
    """A running model generator.

    A ``Process`` is itself an :class:`Event`: it triggers when the
    generator returns, with the generator's return value as the event
    value, so processes can wait for each other by yielding the process.
    """

    __slots__ = ("_gen", "_waiting_on", "last_resume")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        super().__init__(sim, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        #: Simulated time this process last executed (for stall diagnosis).
        self.last_resume: float = sim.now
        sim._live_processes.add(self)
        # Start the process at the current simulation time.
        sim._schedule(0.0, self._resume, None)

    @property
    def waiting_on_name(self) -> str:
        """Name of the event this process is currently blocked on."""
        return self._waiting_on.name if self._waiting_on is not None else ""

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupted` into the generator at the current time.

        A process blocked on an event is detached from it; the event itself
        is unaffected and may still fire for other waiters.
        """
        if self.triggered:
            return
        self.sim._schedule(0.0, self._throw, Interrupted(cause))

    # -- internal ---------------------------------------------------------

    def _resume(self, triggering: Optional[Event]) -> None:
        if self.triggered:
            return  # e.g. interrupted while a wake-up was already queued
        if triggering is not None and triggering is not self._waiting_on:
            return  # stale wake-up after an interrupt re-targeted us
        self._waiting_on = None
        self.last_resume = self.sim.now
        try:
            if triggering is None:
                target = self._gen.send(None)
            elif triggering._exc is not None:
                target = self._gen.throw(triggering._exc)
            else:
                target = self._gen.send(triggering._value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:
            self._finish_fail(exc)
            return
        # Inline of _block_on: pending events (the overwhelmingly common
        # case) take the two-line fast path.
        if isinstance(target, Event):
            self._waiting_on = target
            if not target.triggered:
                target._callbacks.append(self._resume)
            else:
                # Already fired (e.g. an uncontended Resource grant):
                # resume via the zero-delay queue, no heap round-trip.
                self.sim._schedule(0.0, self._resume, target)
        else:
            self._finish_fail(
                SimError(f"process {self.name!r} yielded non-event {target!r}")
            )

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        self.last_resume = self.sim.now
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as err:
            self._finish_fail(err)
            return
        self._block_on(target)

    def _block_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._finish_fail(
                SimError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish_ok(self, value: Any) -> None:
        self.sim._live_processes.discard(self)
        self.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        self.sim._live_processes.discard(self)
        if not self._callbacks:
            # Nobody is waiting on this process: surface the error instead
            # of swallowing it silently.
            self.sim._crashed.append((self, exc))
        self.fail(exc)


class Simulator:
    """The discrete-event loop.

    Typical use::

        sim = Simulator()

        def prog():
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(prog())
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        #: Zero-delay fast path: callbacks scheduled for the *current*
        #: timestamp, in FIFO (= global sequence) order.  Every entry here
        #: would otherwise be a heap push/pop pair at time ``now``; the
        #: deque keeps the exact (time, seq) execution order -- see run().
        self._now_queue: deque[tuple[int, Callable[..., None], Any]] = deque()
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._crashed: list[tuple[Process, BaseException]] = []
        #: Optional zero-arg callable returning extra diagnostic text that
        #: is appended to detector errors (deadlock / watchdog).  Set by
        #: layers above the kernel -- e.g. the fault injector attaches its
        #: fault timeline here -- without the kernel importing them.
        self.diagnostic_context: Optional[Callable[[], str]] = None

    # -- scheduling -------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[..., None], arg: Any) -> None:
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        self._seq += 1
        if delay == 0.0:
            # Fires at the current time: FIFO order == seq order, and the
            # run loop interleaves it correctly with same-time heap entries.
            self._now_queue.append((self._seq, fn, arg))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    def _schedule_at(self, t: float, fn: Callable[..., None], arg: Any) -> None:
        """Schedule ``fn(arg)`` at the *absolute* simulated time ``t``.

        Unlike ``_schedule(t - now, ...)`` this avoids the float round trip
        through a relative delay, so a caller that reconstructs timestamps
        (e.g. a coalesced Resource run) hits bit-equal heap times.
        """
        if t < self.now:
            raise ScheduleInPastError(f"time {t!r} is before now={self.now!r}")
        self._seq += 1
        if t == self.now:
            self._now_queue.append((self._seq, fn, arg))
        else:
            heapq.heappush(self._heap, (t, self._seq, fn, arg))

    def _dispatch(self, event: Event) -> None:
        callbacks = event._callbacks
        if not callbacks:
            return
        event._callbacks = []
        nowq = self._now_queue
        seq = self._seq
        for fn in callbacks:
            seq += 1
            nowq.append((seq, fn, event))
        self._seq = seq

    # -- public factory methods -------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a pending one-shot event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that fires ``delay`` time units from now."""
        # A constant fallback name: formatting a per-timeout string would
        # dominate the cost of creating the event itself.
        ev = Event(self, name or "timeout")
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout {delay!r}")
        self._seq += 1
        if delay == 0.0:
            self._now_queue.append((self._seq, ev.succeed, value))
        else:
            heapq.heappush(
                self._heap, (self.now + delay, self._seq, ev.succeed, value)
            )
        return ev

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a process at the current time."""
        return Process(self, gen, name)

    # -- running ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated ``until`` passes).

        Raises :class:`DeadlockError` if processes remain alive with no
        scheduled events, and re-raises the first unobserved process crash.
        Returns the final simulation time (``until`` itself when given and
        the event queue drains before the deadline).
        """
        heap = self._heap
        nowq = self._now_queue
        crashed = self._crashed
        heappop = heapq.heappop
        while heap or nowq:
            # Exact (time, seq) order: the now-queue holds current-time
            # entries sorted by seq; a heap entry at the same time runs
            # first iff its seq is smaller.
            if nowq:
                if heap:
                    top = heap[0]
                    if top[0] == self.now and top[1] < nowq[0][0]:
                        heappop(heap)
                        top[2](top[3])
                        if crashed:
                            proc, exc = crashed.pop(0)
                            raise SimError(f"process {proc.name!r} crashed") from exc
                        continue
                _, fn, arg = nowq.popleft()
                fn(arg)
            else:
                t = heap[0][0]
                if until is not None and t > until:
                    self.now = until
                    return until
                _, _, fn, arg = heappop(heap)
                self.now = t
                fn(arg)
            if crashed:
                proc, exc = crashed.pop(0)
                raise SimError(f"process {proc.name!r} crashed") from exc
        if until is not None:
            # The queue drained before the deadline: the clock still
            # advances to the requested time (nothing can happen between).
            if until > self.now:
                self.now = until
            return self.now
        if self._live_processes:
            stuck = tuple(
                sorted(
                    (p.name, p.waiting_on_name, p.last_resume)
                    for p in self._live_processes
                )
            )
            detail = ", ".join(
                f"{name} (waiting on {ev or '<nothing>'!r} since t={since:.4f})"
                for name, ev, since in stuck
            )
            raise DeadlockError(
                f"no events left at t={self.now:.4f} but "
                f"{len(self._live_processes)} process(es) still blocked: "
                f"{detail}{self._diagnostic_suffix()}",
                stuck=stuck,
                sim_time=self.now,
            )
        return self.now

    def _diagnostic_suffix(self) -> str:
        """Extra context (e.g. the fault timeline) for detector errors."""
        if self.diagnostic_context is None:
            return ""
        try:
            text = self.diagnostic_context()
        except Exception:  # diagnosis must never mask the real error
            return ""
        return f"\n{text}" if text else ""

    def start_watchdog(self, interval: float, name: str = "watchdog") -> Process:
        """Start a watchdog process that converts silent stalls into
        :class:`WatchdogError`\\ s.

        Every ``interval`` simulated time units the watchdog inspects all
        other live processes; any process that has not advanced for at
        least a full interval gets a :class:`WatchdogError` thrown into it
        (naming the event it was blocked on and for how long), turning an
        eventual :class:`DeadlockError` with no context into a precise,
        per-process diagnosis.  ``interval`` must therefore exceed the
        longest legitimate blocking wait of the model.

        The watchdog exits once no other live processes remain, so a run
        that completes normally still drains its event queue.
        """
        if interval <= 0:
            raise SimError(f"watchdog interval must be > 0, got {interval!r}")
        holder: list[Process] = []

        def loop() -> ProcessGen:
            while True:
                yield self.timeout(interval, name=f"{name}.tick")
                me = holder[0]
                others = [p for p in self._live_processes if p is not me]
                if not others:
                    return
                for p in others:
                    idle = self.now - p.last_resume
                    if idle >= interval and p._waiting_on is not None:
                        self._schedule(
                            0.0,
                            p._throw,
                            WatchdogError(
                                f"process {p.name!r} stalled for {idle:.4f} "
                                f"time units waiting on "
                                f"{p.waiting_on_name!r} at t={self.now:.4f}"
                                f"{self._diagnostic_suffix()}",
                                process=p.name,
                                sim_time=self.now,
                                site=p.waiting_on_name,
                                idle_for=idle,
                            ),
                        )

        proc = self.process(loop(), name=name)
        holder.append(proc)
        return proc

    def step(self) -> bool:
        """Execute a single scheduled callback. Returns False when empty."""
        nowq = self._now_queue
        if nowq:
            heap = self._heap
            if not heap or heap[0][0] != self.now or heap[0][1] > nowq[0][0]:
                _, fn, arg = nowq.popleft()
                fn(arg)
                return True
        elif not self._heap:
            return False
        t, _, fn, arg = heapq.heappop(self._heap)
        self.now = t
        fn(arg)
        return True

    @property
    def queued_events(self) -> int:
        return len(self._heap) + len(self._now_queue)

    @property
    def events_scheduled(self) -> int:
        """Total callbacks scheduled so far (the global sequence counter).

        Read-only view for the metrics layer: the run loop pays nothing
        for it, and it doubles as an exact proxy for engine work done.
        """
        return self._seq

    def stats(self) -> dict[str, float]:
        """Engine counters for :mod:`repro.obs` harvesting (no hot-path cost)."""
        return {
            "now": self.now,
            "events_scheduled": float(self._seq),
            "events_queued": float(self.queued_events),
            "live_processes": float(len(self._live_processes)),
        }


def all_of(sim: Simulator, events: Iterable[Event], name: str = "all_of") -> Event:
    """An event that fires once every event in ``events`` has fired.

    Its value is the list of the constituent values, in input order.
    """
    events = list(events)
    done = sim.event(name)
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done
    results: list[Any] = [None] * remaining

    def make_cb(i: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            nonlocal remaining
            if done.triggered:
                return
            if ev.failed:
                done.fail(ev._exc)  # type: ignore[arg-type]
                return
            results[i] = ev._value
            remaining -= 1
            if remaining == 0:
                done.succeed(results)

        return cb

    for i, ev in enumerate(events):
        ev.add_callback(make_cb(i))
    return done


def any_of(sim: Simulator, events: Iterable[Event], name: str = "any_of") -> Event:
    """An event that fires when the first of ``events`` fires.

    Its value is ``(index, value)`` of the winning event.
    """
    events = list(events)
    if not events:
        raise SimError("any_of requires at least one event")
    done = sim.event(name)

    def make_cb(i: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if done.triggered:
                return
            if ev.failed:
                done.fail(ev._exc)  # type: ignore[arg-type]
                return
            done.succeed((i, ev._value))

        return cb

    for i, ev in enumerate(events):
        ev.add_callback(make_cb(i))
    return done
