"""put/get micro-benchmarks over distance and message size (Figure 3).

Each sample measures the mean completion time of one operation kind at
one (message size, distance) point, on an otherwise idle chip -- the
paper's Section 3.2 validation setup.  Samples are returned as
:class:`repro.model.fitting.Observation` objects so they feed directly
into the least-squares parameter fit (Table 1).
"""

from __future__ import annotations

from typing import Generator, Sequence

import numpy as np

from ..model.fitting import Observation
from ..rcce import Comm
from ..scc import SccChip, SccConfig, run_spmd
from ..scc.config import CACHE_LINE

#: Alias: a micro-benchmark sample IS a model observation.
PutGetSample = Observation


def core_at_mpb_distance(chip: SccChip, src_core: int, d: int) -> int:
    """Lowest-numbered core whose MPB is ``d`` hops from ``src_core``."""
    for c in range(chip.num_cores):
        if c != src_core and chip.mesh.core_distance(src_core, c) == d:
            return c
    raise ValueError(f"no core at MPB distance {d} from core {src_core}")


def core_at_mem_distance(chip: SccChip, d: int) -> int:
    """Lowest-numbered core whose memory controller is ``d`` hops away."""
    for c in range(chip.num_cores):
        if chip.mesh.mem_distance(c) == d:
            return c
    raise ValueError(f"no core at memory distance {d}")


def _measure(
    chip: SccChip,
    comm: Comm,
    actor: int,
    body_factory,
    iters: int,
) -> float:
    """Run ``body_factory(cc)`` ``iters`` times on ``actor``; mean time."""
    times: list[float] = []

    def program(core) -> Generator:
        cc = comm.attach(core)
        for _ in range(iters):
            t0 = chip.now
            yield from body_factory(cc)
            times.append(chip.now - t0)
        return None

    run_spmd(chip, program, core_ids=[actor])
    return float(np.mean(times))


def measure_put_mpb(
    config: SccConfig, m: int, d: int, iters: int = 5
) -> Observation:
    """MPB -> MPB put of ``m`` lines to a core at distance ``d``."""
    chip = SccChip(config)
    comm = Comm(chip)
    actor = 0
    target = comm.rank_of(core_at_mpb_distance(chip, actor, d))
    region = comm.layout.alloc_lines(m)

    def body(cc):
        yield from cc.put(target, region.offset, region.offset, m * CACHE_LINE)

    t = _measure(chip, comm, actor, body, iters)
    return Observation("put_mpb", m, 1, d, t)


def measure_get_mpb(
    config: SccConfig, m: int, d: int, iters: int = 5
) -> Observation:
    """MPB -> MPB get of ``m`` lines from a core at distance ``d``."""
    chip = SccChip(config)
    comm = Comm(chip)
    actor = 0
    source = comm.rank_of(core_at_mpb_distance(chip, actor, d))
    region = comm.layout.alloc_lines(m)

    def body(cc):
        yield from cc.get(source, region.offset, region.offset, m * CACHE_LINE)

    t = _measure(chip, comm, actor, body, iters)
    return Observation("get_mpb", m, d, 1, t)


def measure_put_mem(
    config: SccConfig, m: int, d_mem: int, iters: int = 5
) -> Observation:
    """Memory -> MPB put: the actor (chosen so its memory controller is
    ``d_mem`` hops away) reads fresh off-chip lines and writes the MPB of
    its tile mate (1 hop)."""
    chip = SccChip(config)
    comm = Comm(chip)
    actor = core_at_mem_distance(chip, d_mem)
    target = comm.rank_of(actor ^ 1) if chip.num_cores > 1 else 0
    region = comm.layout.alloc_lines(m)
    nbytes = m * CACHE_LINE

    def body(cc):
        src = cc.alloc(nbytes)  # fresh lines every iteration: L1 misses
        yield from cc.put(target, region.offset, src, nbytes)

    t = _measure(chip, comm, actor, body, iters)
    d_dst = chip.mesh.core_distance(actor, comm.core_of(target))
    return Observation("put_mem", m, d_mem, d_dst, t)


def measure_get_mem(
    config: SccConfig, m: int, d_mem: int, iters: int = 5
) -> Observation:
    """MPB -> memory get: the actor reads its tile mate's MPB (1 hop) and
    writes fresh off-chip lines through a controller ``d_mem`` hops away."""
    chip = SccChip(config)
    comm = Comm(chip)
    actor = core_at_mem_distance(chip, d_mem)
    source = comm.rank_of(actor ^ 1) if chip.num_cores > 1 else 0
    region = comm.layout.alloc_lines(m)
    nbytes = m * CACHE_LINE

    def body(cc):
        dst = cc.alloc(nbytes)
        yield from cc.get(source, region.offset, dst, nbytes)

    t = _measure(chip, comm, actor, body, iters)
    d_src = chip.mesh.core_distance(actor, comm.core_of(source))
    return Observation("get_mem", m, d_src, d_mem, t)


def sweep_putget(
    config: SccConfig | None = None,
    *,
    sizes: Sequence[int] = (1, 4, 8, 16),
    mpb_distances: Sequence[int] | None = None,
    mem_distances: Sequence[int] | None = None,
    iters: int = 5,
) -> list[Observation]:
    """The full Figure 3 sweep: all four panels.

    Defaults cover every reachable distance on the configured mesh
    (1..9 for MPBs and 1..4 for memory on the real SCC).
    """
    config = config or SccConfig()
    probe = SccChip(config)
    if mpb_distances is None:
        reachable = {
            probe.mesh.core_distance(0, c) for c in range(1, probe.num_cores)
        }
        mpb_distances = sorted(reachable)
    if mem_distances is None:
        mem_distances = sorted(
            {probe.mesh.mem_distance(c) for c in range(probe.num_cores)}
        )
    out: list[Observation] = []
    for m in sizes:
        for d in mpb_distances:
            out.append(measure_put_mpb(config, m, d, iters))
            out.append(measure_get_mpb(config, m, d, iters))
        for d in mem_distances:
            out.append(measure_put_mem(config, m, d, iters))
            out.append(measure_get_mem(config, m, d, iters))
    return out
