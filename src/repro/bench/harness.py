"""Broadcast experiment runner.

Reproduces the paper's measurement methodology (Section 6.1) on the
simulated chip:

- core 0 is the source unless specified otherwise;
- a message is broadcast from the root's private memory to every other
  core's private memory;
- iterations run back to back on one chip (steady-state pipelining, as on
  hardware), with warm-up iterations discarded;
- every iteration uses a fresh (uncached) buffer offset to avoid L1
  effects, exactly as the paper preallocates a large array and strides
  through it;
- latency is the paper's definition: from the root's call to the last
  core's return, on the shared global clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Sequence

import numpy as np

from ..collectives import binomial_bcast, scatter_allgather_bcast
from ..core import NotifyMode, OcBcast, OcBcastConfig, OsagBcast
from ..rcce import Comm, CoreComm
from ..scc import MemRef, SccChip, SccConfig, run_spmd
from ..scc.analytic import AnalyticEngine, AnalyticResult, AnalyticUnsupported
from ..scc.config import CACHE_LINE, ContentionMode

#: Algorithm names accepted by :class:`BcastSpec`.
ALGORITHMS = ("oc", "binomial", "scatter_allgather", "osag")


@dataclass(frozen=True)
class BcastSpec:
    """Which broadcast to run and how it is tuned."""

    algo: str = "oc"
    k: int = 7
    chunk_lines: int = 96
    num_buffers: int = 2
    notify_degree: int = 2
    leaf_direct_to_memory: bool = False
    notify_mode: NotifyMode = NotifyMode.FLAGS
    order: tuple[int, ...] | None = None  # OC propagation-tree override

    def __post_init__(self) -> None:
        if self.algo not in ALGORITHMS:
            raise ValueError(f"algo must be one of {ALGORITHMS}, got {self.algo!r}")

    @property
    def label(self) -> str:
        if self.algo == "oc":
            return f"OC-Bcast k={self.k}"
        return {
            "binomial": "binomial",
            "scatter_allgather": "scatter-allgather",
            "osag": "one-sided s-ag",
        }[self.algo]

    def build(
        self, comm: Comm
    ) -> Callable[[CoreComm, int, MemRef, int], Generator]:
        """Instantiate the algorithm on a communicator; returns the
        ``bcast(cc, root, buf, nbytes)`` generator function."""
        if self.algo == "oc":
            oc = OcBcast(
                comm,
                OcBcastConfig(
                    k=self.k,
                    chunk_lines=self.chunk_lines,
                    num_buffers=self.num_buffers,
                    notify_degree=self.notify_degree,
                    leaf_direct_to_memory=self.leaf_direct_to_memory,
                    notify_mode=self.notify_mode,
                ),
            )
            order = self.order

            def oc_bcast(cc: CoreComm, root: int, buf: MemRef, n: int) -> Generator:
                yield from oc.bcast(cc, root, buf, n, order=order)

            return oc_bcast
        if self.algo == "binomial":
            return binomial_bcast
        if self.algo == "osag":
            return OsagBcast(comm).bcast
        return scatter_allgather_bcast


@dataclass(frozen=True)
class BcastResult:
    """Measured latencies of one broadcast experiment."""

    spec: BcastSpec
    nbytes: int
    latencies: tuple[float, ...]  # per measured iteration, microseconds
    verified: bool  # every core received the exact payload each iteration
    #: Wall time on the simulated clock from the root entering the first
    #: measured iteration to the last core leaving the last one.
    measured_span: float = 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def min_latency(self) -> float:
        return float(np.min(self.latencies))

    @property
    def throughput_mb_s(self) -> float:
        """Payload bytes per mean-latency microsecond (== MB/s)."""
        return self.nbytes / self.mean_latency if self.mean_latency else 0.0

    @property
    def steady_throughput_mb_s(self) -> float:
        """Aggregate rate over all measured back-to-back iterations --
        the pipeline's steady-state throughput, which is what exposes the
        97-cache-line dip of Figure 8b."""
        if self.measured_span <= 0.0:
            return 0.0
        return len(self.latencies) * self.nbytes / self.measured_span

    @property
    def cache_lines(self) -> int:
        return -(-self.nbytes // CACHE_LINE)


def _payload(nbytes: int, seed: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def analytic_engine_for(
    spec: BcastSpec, config: SccConfig | None = None, *, root: int = 0
) -> AnalyticEngine:
    """Build the :class:`AnalyticEngine` equivalent of a harness spec.

    Only OC-Bcast has a closed-form replay (the engine models its
    schedule, not arbitrary algorithms), so any other ``spec.algo``
    raises :class:`AnalyticUnsupported` -- callers either surface that
    or fall back to a simulated mode.
    """
    if spec.algo != "oc":
        raise AnalyticUnsupported(
            f"ANALYTIC mode models the OC-Bcast schedule only, "
            f"not {spec.algo!r}; use exact/batch/ideal for other algorithms"
        )
    return AnalyticEngine(
        config,
        k=spec.k,
        chunk_lines=spec.chunk_lines,
        num_buffers=spec.num_buffers,
        notify_degree=spec.notify_degree,
        leaf_direct_to_memory=spec.leaf_direct_to_memory,
        interrupt_notify=spec.notify_mode is NotifyMode.INTERRUPT,
        root=root,
        order=spec.order,
    )


def _to_bcast_result(spec: BcastSpec, ana: AnalyticResult) -> BcastResult:
    # No bytes move in an analytic evaluation; delivery is structural
    # (every rank's completion time exists), so the result reports
    # verified=True just as a verify=False simulated run does.
    return BcastResult(
        spec=spec,
        nbytes=ana.nbytes,
        latencies=ana.latencies,
        verified=True,
        measured_span=ana.measured_span,
    )


def run_broadcast(
    spec: BcastSpec,
    nbytes: int,
    *,
    config: SccConfig | None = None,
    root: int = 0,
    iters: int = 3,
    warmup: int = 1,
    verify: bool = True,
    seed: int = 1,
    tracer=None,
    metrics=None,
) -> BcastResult:
    """Run one broadcast configuration and measure per-iteration latency.

    A fresh chip is built per call (experiments are independent, as the
    paper's runs are); iterations share the chip back to back.

    ``tracer`` (a :class:`repro.sim.Tracer`) and ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) attach observability to the
    run's chip; chip statistics are harvested into ``metrics`` after the
    run.  Neither changes the measured latencies (bit-identical -- see
    docs/OBSERVABILITY.md).
    """
    if nbytes <= 0:
        raise ValueError("nbytes must be > 0")
    if iters < 1 or warmup < 0:
        raise ValueError("need iters >= 1 and warmup >= 0")
    if config is not None and config.contention_mode is ContentionMode.ANALYTIC:
        engine = analytic_engine_for(spec, config, root=root)
        ana = engine.evaluate(nbytes, iters=iters, warmup=warmup)
        if metrics is not None:
            for name, value in ana.metrics.items():
                metrics.inc(name, value)
        return _to_bcast_result(spec, ana)
    chip = SccChip(config, tracer=tracer, metrics=metrics)
    comm = Comm(chip)
    bcast = spec.build(comm)
    total_iters = warmup + iters
    payloads = [_payload(nbytes, seed + i) for i in range(total_iters)]

    enters: list[dict[int, float]] = [{} for _ in range(total_iters)]
    exits: list[dict[int, float]] = [{} for _ in range(total_iters)]
    ok: list[bool] = []

    def program(core) -> Generator:
        cc = comm.attach(core)
        # One large preallocated array, strided per iteration (fresh cache
        # lines every time -- the paper's anti-caching discipline).
        bufs = [cc.alloc(nbytes) for _ in range(total_iters)]
        if cc.rank == root:
            for i, b in enumerate(bufs):
                b.write(payloads[i])
        for i, b in enumerate(bufs):
            enters[i][cc.rank] = chip.now
            yield from bcast(cc, root, b, nbytes)
            exits[i][cc.rank] = chip.now
            if verify and cc.rank != root:
                ok.append(b.read() == payloads[i])
        return None

    run_spmd(chip, program)
    if metrics is not None:
        from ..obs import collect_chip_metrics

        collect_chip_metrics(chip)
    latencies = tuple(
        max(exits[i].values()) - enters[i][root]
        for i in range(warmup, total_iters)
    )
    measured_span = max(exits[total_iters - 1].values()) - enters[warmup][root]
    return BcastResult(
        spec=spec,
        nbytes=nbytes,
        latencies=latencies,
        verified=(not verify) or all(ok),
        measured_span=measured_span,
    )


def sweep_broadcast(
    specs: Sequence[BcastSpec],
    sizes_cache_lines: Sequence[int],
    *,
    config: SccConfig | None = None,
    iters: int = 3,
    warmup: int = 1,
    verify: bool = True,
) -> dict[str, list[BcastResult]]:
    """Latency/throughput sweep: every spec at every message size.

    Returns ``{spec.label: [BcastResult per size]}``.

    Under :attr:`ContentionMode.ANALYTIC` each spec's whole size axis is
    evaluated in one vectorised batch -- the engine's per-call overhead
    is paid once per spec instead of once per point.
    """
    out: dict[str, list[BcastResult]] = {}
    if config is not None and config.contention_mode is ContentionMode.ANALYTIC:
        for spec in specs:
            engine = analytic_engine_for(spec, config)
            batch = engine.evaluate_batch(
                [ncl * CACHE_LINE for ncl in sizes_cache_lines],
                iters=iters, warmup=warmup,
            )
            out[spec.label] = [_to_bcast_result(spec, ana) for ana in batch]
        return out
    for spec in specs:
        rows = [
            run_broadcast(
                spec,
                ncl * CACHE_LINE,
                config=config,
                iters=iters,
                warmup=warmup,
                verify=verify,
            )
            for ncl in sizes_cache_lines
        ]
        out[spec.label] = rows
    return out
