"""Trace analysis: pipeline timelines, overlap, and port utilisation.

Turns a :class:`~repro.sim.Tracer` recording (and the chip's resource
statistics) into the quantities the paper reasons about qualitatively:
how deep the chunk pipeline is, how much chunk processing overlaps, how
busy each MPB port was, and how much flag traffic the protocol generated.
Used by tests to assert pipelining *mechanically* and available to users
for performance debugging.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scc.chip import SccChip
from ..sim import Tracer


@dataclass(frozen=True)
class ChunkSpan:
    """Lifetime of one chunk: root staging to last core finishing it."""

    idx: int
    staged_at: float
    last_done_at: float
    completions: int

    @property
    def span(self) -> float:
        return self.last_done_at - self.staged_at


def chunk_timeline(tracer: Tracer) -> list[ChunkSpan]:
    """Per-chunk spans from ``oc.chunk_staged`` / ``oc.chunk_done``
    records (emitted by OC-Bcast when tracing is enabled)."""
    staged: dict[int, float] = {}
    done: dict[int, list[float]] = {}
    for rec in tracer.of_kind("oc.chunk_staged"):
        staged.setdefault(rec.detail["idx"], rec.time)
    for rec in tracer.of_kind("oc.chunk_done"):
        done.setdefault(rec.detail["idx"], []).append(rec.time)
    spans = []
    for idx in sorted(staged):
        times = done.get(idx, [])
        if not times:
            continue
        spans.append(
            ChunkSpan(
                idx=idx,
                staged_at=staged[idx],
                last_done_at=max(times),
                completions=len(times),
            )
        )
    return spans


def pipeline_overlap(tracer: Tracer) -> float:
    """How much chunk lifetimes overlap: the sum of chunk spans divided
    by the wall time they collectively cover.  1.0 means fully serial
    chunk processing; values well above 1 mean a filled pipeline."""
    spans = chunk_timeline(tracer)
    if not spans:
        raise ValueError("no chunk records in trace (enable the tracer)")
    total = sum(s.span for s in spans)
    wall = max(s.last_done_at for s in spans) - min(s.staged_at for s in spans)
    return total / wall if wall > 0 else float("inf")


def pipeline_depth(tracer: Tracer) -> int:
    """Maximum number of chunks simultaneously in flight."""
    events: list[tuple[float, int]] = []
    for s in chunk_timeline(tracer):
        events.append((s.staged_at, +1))
        events.append((s.last_done_at, -1))
    depth = peak = 0
    for _, delta in sorted(events):
        depth += delta
        peak = max(peak, depth)
    return peak


def flag_traffic(tracer: Tracer) -> dict[str, int]:
    """Counts of synchronisation writes by flag/array name."""
    counts: dict[str, int] = {}
    for rec in tracer.of_kind("flag_write"):
        name = rec.detail.get("flag", "?")
        counts[name] = counts.get(name, 0) + 1
    for rec in tracer.of_kind("slot_write"):
        name = rec.detail.get("array", "?")
        counts[name] = counts.get(name, 0) + 1
    return counts


def mpb_port_utilisation(chip: SccChip) -> dict[int, float]:
    """Fraction of simulated time each core's MPB port was busy
    (from the Resource statistics; meaningful in BATCH/EXACT modes)."""
    elapsed = chip.now
    return {
        core_id: mpb.port.utilisation(elapsed)
        for core_id, mpb in enumerate(chip.mpbs)
    }


def busiest_port(chip: SccChip) -> tuple[int, float]:
    """The (core id, utilisation) of the most contended MPB."""
    util = mpb_port_utilisation(chip)
    core_id = max(util, key=util.get)
    return core_id, util[core_id]
