"""Fault-injection campaigns: N seeded trials of a collective under fault.

A :class:`FaultCampaign` measures what the fault-tolerant OC-Bcast mode
buys.  It first *profiles* a fault-free run (an attached
:class:`~repro.faults.FaultInjector` counts candidate fault sites of each
class even with an empty plan), then draws per-trial fault coordinates
from a seeded :class:`random.Random` -- every trial is an exact,
replayable :class:`~repro.faults.FaultPlan`, so a campaign is reproduced
bit-for-bit by its seed.  Each trial runs on a fresh chip with the
kernel watchdog armed and is classified as:

- ``delivered`` -- every core got the payload, no fault fired;
- ``recovered`` -- a fault fired and every *live* core still got the
  payload (crashed cores excepted when the plan crashes one);
- ``deadlock``  -- the run hung until the watchdog (or the kernel's
  deadlock detector) killed it;
- ``timeout``   -- an FT retry budget was exhausted
  (:class:`repro.sim.TimeoutError` escaped);
- ``corrupt``   -- the run finished but some core holds wrong bytes;
- ``crashed``   -- a fault crashed a core and the rest did not finish
  cleanly either.

By default the message is one chunk (96 cache lines): with OC-Bcast's
monotonic sequence flags, a dropped flag write *mid-stream* is masked by
the following chunk's write, so single-chunk messages are the adversarial
case where **every** flag write is fatal to the baseline.  The campaign
also reports the robustness tax: fault-free FT latency versus fault-free
baseline latency on the same chip configuration.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Generator, Sequence

import numpy as np

from ..core import OcBcast, OcBcastConfig, PropagationTree
from ..faults import (
    ADVERSARY_KINDS, CRASH_SITES, FaultInjector, FaultKind, FaultPlan,
    FaultSpec,
)
from ..member.service import DEFAULT_SERVICE_OC, OcBcastService
from ..obs import MetricsRegistry
from ..rcce import Comm
from ..scc import SccChip, SccConfig, run_spmd
from ..scc.analytic import AnalyticEngine, AnalyticUnsupported
from ..scc.config import CACHE_LINE
from ..sim import DeadlockError, FaultInjected, SimError, Tracer, WatchdogError
from ..sim.errors import TimeoutError as SimTimeoutError
from ..sim.trace import TraceRecord

#: Trial classifications, in reporting order.  ``aborted`` is a
#: service-only outcome: the source died with no surviving payload
#: holder and every live member uniformly aborted -- agreement held,
#: nothing was delivered.
OUTCOMES = (
    "delivered", "recovered", "aborted", "deadlock", "timeout", "corrupt",
    "crashed",
)

#: Byzantine-leg classifications, in reporting order.  ``agreed`` --
#: every honest member delivered identical bytes; ``detected`` -- every
#: honest member uniformly refused (no echo/ready quorum formed);
#: ``disagreement`` -- two honest members delivered *different* bytes,
#: the one outcome the RBC layer exists to rule out; ``partial`` --
#: deliverers and refusers coexist among honest members.
BYZ_OUTCOMES = (
    "agreed", "detected", "disagreement", "partial", "deadlock", "timeout",
    "crashed",
)

#: Fault kinds the analytic reference can vouch for under adaptive
#: fidelity.  Occurrence-counted write faults and stalls perturb a run
#: the engine's fault-free formulas still bracket (the faulty trials
#: replay through the kernel regardless; the reference only serves
#: *fault-free* trials).  Time-window faults (LINK_DOWN bursts,
#: CORE_PAUSE) and the Byzantine adversary kinds have no closed-form
#: counterpart at all -- a campaign mixing them degrades to all-kernel
#: execution, with the reason recorded in ``CampaignResult.fidelity``.
ANALYTIC_REFERENCE_KINDS = frozenset({
    FaultKind.DROP_FLAG_WRITE,
    FaultKind.CORRUPT_FLAG_WRITE,
    FaultKind.DROP_DATA_WRITE,
    FaultKind.CORRUPT_DATA_WRITE,
    FaultKind.LINK_STALL,
    FaultKind.CORE_CRASH,
})

#: Trace kinds that make up a fault timeline.
TIMELINE_KINDS = (
    "fault.injected",
    "fault.recovered",
    "flag_write_retry_ok",
    "put_retry_ok",
    "oc.ft.renotify",
    "oc.ft.child_dead",
)


@dataclass(frozen=True)
class TrialRun:
    """One execution (service, FT or baseline) of one trial's fault plan."""

    outcome: str
    latency: float  # makespan in us; 0.0 when the run did not finish
    n_injected: int
    n_recovered: int
    detail: str = ""
    #: Live cores evicted from the group (service runs only).
    n_evicted: int = 0
    #: Time-to-detect / time-to-repair / time-to-elect (us) harvested
    #: from the service run's ``member.ttd_us`` / ``member.ttr_us`` /
    #: ``member.tte_us`` histograms.
    ttd: float | None = None
    ttr: float | None = None
    tte: float | None = None
    #: Silent-partition outcomes (service runs only): members that left
    #: the group on their own account, and heartbeat reports that never
    #: acked -- both previously invisible outside the trace.
    n_self_evict: int = 0
    n_report_failed: int = 0

    @property
    def finished(self) -> bool:
        return self.outcome in ("delivered", "recovered", "corrupt")


@dataclass(frozen=True)
class TrialResult:
    """One seeded trial: the plan plus its per-mode runs."""

    index: int
    plan: FaultPlan
    ft: TrialRun | None = None
    baseline: TrialRun | None = None
    service: TrialRun | None = None
    #: Byzantine-service run (campaigns with ``byz=True`` run only this).
    byz: TrialRun | None = None


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of a fault campaign."""

    trials: tuple[TrialResult, ...]
    ft_counts: Counter
    baseline_counts: Counter | None
    #: Fault-free latencies (us) of both modes -- the robustness tax.
    base_latency: float
    ft_latency: float
    profile: dict[str, int]
    nbytes: int
    seed: int
    #: Fault timeline of the first FT trial that saw an injection.
    timeline: tuple[TraceRecord, ...] = ()
    #: Service-mode outcome counts / fault-free latency (``service=True``).
    service_counts: Counter | None = None
    service_latency: float = 0.0
    #: Byzantine-mode outcome counts / fault-free latency (``byz=True``).
    byz_counts: Counter | None = None
    byz_latency: float = 0.0
    #: Adaptive-fidelity bookkeeping (``fidelity="adaptive"`` campaigns):
    #: how many trials were served from the memoised fault-free reference
    #: runs vs replayed through the event kernel, the analytic engine's
    #: latency predictions and their relative error vs the kernel, and --
    #: when the scheduler had to degrade to all-kernel execution -- why.
    fidelity: dict | None = None

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def rbc_tax_pct(self) -> float:
        """Fault-free Byzantine-mode latency overhead over the crash-only
        service -- what the echo/ready digest rounds cost when nobody is
        lying."""
        if self.service_latency <= 0.0 or self.byz_latency <= 0.0:
            return 0.0
        return (self.byz_latency / self.service_latency - 1.0) * 100.0

    @property
    def byz_agreement_rate(self) -> float:
        """Fraction of Byzantine trials where honest members agreed --
        all delivered identical bytes or all refused.  ``disagreement``
        and ``partial`` break it."""
        if self.byz_counts is None or not self.n_trials:
            return 0.0
        good = self.byz_counts["agreed"] + self.byz_counts["detected"]
        return good / self.n_trials

    @property
    def ft_overhead_pct(self) -> float:
        """Fault-free FT latency overhead over the baseline, in percent."""
        if self.base_latency <= 0.0:
            return 0.0
        return (self.ft_latency / self.base_latency - 1.0) * 100.0

    @property
    def ft_survival_rate(self) -> float:
        """Fraction of trials the FT mode finished with correct payloads."""
        good = self.ft_counts["delivered"] + self.ft_counts["recovered"]
        return good / self.n_trials if self.n_trials else 0.0

    @property
    def service_overhead_pct(self) -> float:
        """Fault-free service-mode latency overhead over the baseline."""
        if self.base_latency <= 0.0 or self.service_latency <= 0.0:
            return 0.0
        return (self.service_latency / self.base_latency - 1.0) * 100.0

    @property
    def service_survival_rate(self) -> float:
        """Fraction of trials the service committed with correct payloads
        on every live member."""
        if self.service_counts is None or not self.n_trials:
            return 0.0
        good = (self.service_counts["delivered"]
                + self.service_counts["recovered"])
        return good / self.n_trials

    @property
    def service_agreement_rate(self) -> float:
        """Fraction of trials where every live member decided alike --
        all delivered identical bytes or all aborted (uniform
        agreement, the completion-protocol guarantee)."""
        if self.service_counts is None or not self.n_trials:
            return 0.0
        good = (self.service_counts["delivered"]
                + self.service_counts["recovered"]
                + self.service_counts["aborted"])
        return good / self.n_trials

    def _service_times(self, attr: str) -> list[float]:
        return [
            getattr(t.service, attr)
            for t in self.trials
            if t.service is not None and getattr(t.service, attr) is not None
        ]

    def ttd_summary(self) -> dict[str, float]:
        """count/mean/min/max of the service runs' time-to-detect (us)."""
        return _describe(self._service_times("ttd"))

    def ttr_summary(self) -> dict[str, float]:
        """count/mean/min/max of the service runs' time-to-repair (us)."""
        return _describe(self._service_times("ttr"))

    def tte_summary(self) -> dict[str, float]:
        """count/mean/min/max of the service runs' time-to-elect (us)."""
        return _describe(self._service_times("tte"))

    def byz_ttd_summary(self) -> dict[str, float]:
        """count/mean/min/max of the Byzantine runs' time-to-detect (us)."""
        return _describe([
            t.byz.ttd for t in self.trials
            if t.byz is not None and t.byz.ttd is not None
        ])

    def summary(self) -> str:
        from .reporting import format_table

        if self.byz_counts is not None:
            rows = [[o, self.byz_counts.get(o, 0)] for o in BYZ_OUTCOMES]
            lines = [
                format_table(
                    ["outcome", "byz service"], rows,
                    title=f"Byzantine campaign: {self.n_trials} trials, "
                          f"seed={self.seed}, "
                          f"{self.nbytes // CACHE_LINE} CL",
                ),
                "",
                f"fault-free latency: crash-only service "
                f"{self.service_latency:.2f} us, byz service "
                f"{self.byz_latency:.2f} us "
                f"({self.rbc_tax_pct:+.2f}% rbc tax)",
                f"byz agreement rate: "
                f"{100.0 * self.byz_agreement_rate:.1f}% "
                f"(disagreements: {self.byz_counts.get('disagreement', 0)})",
            ]
            ttd = self.byz_ttd_summary()
            if ttd["count"]:
                lines.append(
                    f"time-to-detect:  n={ttd['count']:.0f} "
                    f"mean={ttd['mean']:.0f} us "
                    f"[{ttd['min']:.0f}, {ttd['max']:.0f}]"
                )
            return "\n".join(lines)

        headers = ["outcome", "FT"]
        if self.baseline_counts is not None:
            headers.append("baseline")
        if self.service_counts is not None:
            headers.append("service")
        rows = []
        for outcome in OUTCOMES:
            row = [outcome, self.ft_counts.get(outcome, 0)]
            if self.baseline_counts is not None:
                row.append(self.baseline_counts.get(outcome, 0))
            if self.service_counts is not None:
                row.append(self.service_counts.get(outcome, 0))
            rows.append(row)
        lines = [
            format_table(
                headers, rows,
                title=f"Fault campaign: {self.n_trials} trials, seed={self.seed}, "
                      f"{self.nbytes // CACHE_LINE} CL",
            ),
            "",
            f"fault-free latency: baseline {self.base_latency:.2f} us, "
            f"FT {self.ft_latency:.2f} us "
            f"({self.ft_overhead_pct:+.2f}% robustness tax)",
            f"FT survival rate: {100.0 * self.ft_survival_rate:.1f}%",
        ]
        if self.fidelity is not None:
            fast = self.fidelity.get("n_analytic", 0)
            replayed = self.fidelity.get("n_replayed", 0)
            line = (
                f"adaptive fidelity: {fast} fault-free trial(s) served "
                f"analytically, {replayed} replayed through the kernel"
            )
            if self.fidelity.get("degraded"):
                line += f" (degraded: {self.fidelity.get('reason', '?')})"
            lines.append(line)
        if self.service_counts is not None:
            lines.append(
                f"service fault-free latency: {self.service_latency:.2f} us "
                f"({self.service_overhead_pct:+.2f}% service tax)"
            )
            lines.append(
                "service survival rate: "
                f"{100.0 * self.service_survival_rate:.1f}%"
            )
            ttd, ttr = self.ttd_summary(), self.ttr_summary()
            if ttd["count"]:
                lines.append(
                    f"time-to-detect:  n={ttd['count']:.0f} "
                    f"mean={ttd['mean']:.0f} us "
                    f"[{ttd['min']:.0f}, {ttd['max']:.0f}]"
                )
            if ttr["count"]:
                lines.append(
                    f"time-to-repair:  n={ttr['count']:.0f} "
                    f"mean={ttr['mean']:.0f} us "
                    f"[{ttr['min']:.0f}, {ttr['max']:.0f}]"
                )
            tte = self.tte_summary()
            if tte["count"]:
                lines.append(
                    f"time-to-elect:   n={tte['count']:.0f} "
                    f"mean={tte['mean']:.0f} us "
                    f"[{tte['min']:.0f}, {tte['max']:.0f}]"
                )
            n_self_evict = sum(
                t.service.n_self_evict for t in self.trials
                if t.service is not None
            )
            n_report_failed = sum(
                t.service.n_report_failed for t in self.trials
                if t.service is not None
            )
            if n_self_evict or n_report_failed:
                lines.append(
                    f"silent partitions: {n_self_evict} self-evictions, "
                    f"{n_report_failed} unacked heartbeat reports"
                )
        return "\n".join(lines)


def _describe(xs: list[float]) -> dict[str, float]:
    if not xs:
        return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": float(len(xs)),
        "mean": sum(xs) / len(xs),
        "min": min(xs),
        "max": max(xs),
    }


@dataclass(frozen=True)
class FaultCampaign:
    """A seeded campaign of fault-injection trials over OC-Bcast.

    ``kinds`` cycles round-robin over the trials, so a 100-trial campaign
    over two kinds runs 50 of each; per-trial coordinates (which nth
    matching operation, which core, stall/pause length) come from one
    :class:`random.Random` seeded with ``seed``.
    """

    trials: int = 100
    seed: int = 1
    kinds: tuple[FaultKind, ...] = (FaultKind.DROP_FLAG_WRITE,)
    nbytes: int = 96 * CACHE_LINE
    config: SccConfig | None = None
    root: int = 0
    k: int = 7
    chunk_lines: int = 96
    num_buffers: int = 2
    compare_baseline: bool = True
    #: Kernel watchdog period (us); must exceed every legitimate idle wait.
    watchdog_interval: float = 50_000.0
    stall_duration: float = 500.0
    pause_duration: float = 1_000.0
    ft_max_retries: int = 3
    #: Also run every trial against the crash-surviving broadcast
    #: service (:class:`repro.member.OcBcastService`).
    service: bool = False
    #: Faults per trial plan (multi-fault campaigns cycle ``kinds``
    #: *within* each trial, so one plan can crash a core and corrupt a
    #: data line in the same run).
    faults_per_trial: int = 1
    #: Where CORE_CRASH strikes: ``"leaf"`` (the FT layer can route
    #: around it), ``"interior"`` (orphans a subtree -- only the service
    #: survives), ``"root"`` (kills the source/coordinator itself --
    #: takes the service's election and completion protocol to survive),
    #: or ``"any"``.
    crash_site: str = "leaf"
    #: Draw crash occurrences from the middle third of the profiled
    #: range, so multi-chunk broadcasts lose the core *mid-stream*.
    mid_stream: bool = False
    #: LINK_DOWN burst window (us of silently dropped protocol writes).
    link_down_duration: float = 400.0
    #: FLAPPING_LINK envelope: total flap window, down/up cycle period
    #: and the fraction of each cycle spent down.  The defaults flap a
    #: victim's MPB port for several heartbeat rounds -- long enough to
    #: false-evict a fixed-deadline membership config, short enough that
    #: a phi-accrual detector keeps the member (docs/FAULTS.md section 10).
    flap_duration: float = 8_000.0
    flap_period: float = 1_000.0
    flap_duty: float = 0.4
    #: REPEATED_CRASH churn: quiet gap between successive crashes and
    #: how many cores the churn process takes down in total.
    churn_gap: float = 2_000.0
    churn_cycles: int = 2
    #: CONGESTION_STORM window and the extra per-access stall every MPB
    #: transaction pays while the storm lasts.
    storm_duration: float = 2_000.0
    storm_stall: float = 40.0
    #: Byzantine campaign: every trial runs the RBC-hardened service
    #: (``OcBcastConfig(byz=True)``) against ``adversaries`` compromised
    #: cores (the crash-oriented FT/baseline/service legs are skipped --
    #: adversary fault sites only exist in byz mode).  The first
    #: adversary kind drawn as EQUIVOCATE is forced onto the root: only
    #: the source can serve two payload variants.
    byz: bool = False
    #: Compromised cores per Byzantine trial.
    adversaries: int = 1
    #: Probability that a trial draws a fault plan at all.  1.0 (the
    #: default) reproduces the classic campaign exactly -- no extra RNG
    #: draw happens, so existing seeds map to identical plans.  Below
    #: 1.0, the complement of trials runs fault-free: the regime where
    #: adaptive fidelity pays (real systems are fault-free almost
    #: always; campaigns sized for rare-event statistics spend almost
    #: all their time re-simulating the same fault-free run).
    fault_rate: float = 1.0
    #: ``"exact"`` runs every trial through the event kernel.
    #: ``"adaptive"`` serves fault-free trials from the campaign's
    #: memoised fault-free reference runs -- sound because the simulator
    #: is deterministic, so a fault-free trial IS the reference run --
    #: with the analytic engine cross-checking the reference latencies
    #: (prediction off by more than ``analytic_tolerance`` means the
    #: config is outside the engine's validated envelope, and the whole
    #: campaign degrades to all-kernel execution).  Classifications are
    #: byte-identical to ``"exact"`` either way; see docs/PERFORMANCE.md.
    fidelity: str = "exact"
    #: Max relative error allowed between the analytic prediction and
    #: the kernel-measured fault-free reference latencies.  ``None``
    #: resolves per contention mode: 2% against EXACT/IDEAL/ANALYTIC
    #: kernels (the engine's validated envelope), 10% against BATCH --
    #: itself an approximation, whose whole-transfer port holds sit up
    #: to ~7% above the uncontended model around the one-chunk knee.
    analytic_tolerance: float | None = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if not self.kinds:
            raise ValueError("need at least one fault kind")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if self.fidelity not in ("exact", "adaptive"):
            raise ValueError(
                f"fidelity must be 'exact' or 'adaptive', got {self.fidelity!r}"
            )
        if self.analytic_tolerance is not None and self.analytic_tolerance <= 0.0:
            raise ValueError("analytic_tolerance must be > 0")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be > 0")
        if self.faults_per_trial < 1:
            raise ValueError("faults_per_trial must be >= 1")
        if self.crash_site not in CRASH_SITES:
            raise ValueError(
                f"crash_site must be one of {'/'.join(CRASH_SITES)}, "
                f"got {self.crash_site!r}"
            )
        if self.link_down_duration <= 0:
            raise ValueError("link_down_duration must be > 0")
        if self.flap_duration <= 0 or self.flap_period <= 0:
            raise ValueError("flap_duration and flap_period must be > 0")
        if not 0.0 < self.flap_duty < 1.0:
            raise ValueError("flap_duty must be strictly between 0 and 1")
        if self.churn_gap <= 0 or self.churn_cycles < 1:
            raise ValueError("churn_gap must be > 0 and churn_cycles >= 1")
        if self.storm_duration <= 0 or self.storm_stall <= 0:
            raise ValueError("storm_duration and storm_stall must be > 0")
        if self.byz:
            size = (self.config or SccConfig()).num_cores
            if not 1 <= self.adversaries < size:
                raise ValueError(
                    f"a Byzantine campaign needs 1 <= adversaries < "
                    f"{size} cores, got {self.adversaries}"
                )

    # -- building blocks -----------------------------------------------------

    def _oc_config(self, ft: bool) -> OcBcastConfig:
        return OcBcastConfig(
            k=self.k,
            chunk_lines=self.chunk_lines,
            num_buffers=self.num_buffers,
            ft=ft,
            ft_max_retries=self.ft_max_retries,
            # Acked data puts only pay off when data writes can be faulted.
            ft_ack_data=FaultKind.DROP_DATA_WRITE in self.kinds,
        )

    def _service_oc_config(self) -> OcBcastConfig:
        return replace(
            DEFAULT_SERVICE_OC,
            k=self.k,
            chunk_lines=self.chunk_lines,
            num_buffers=self.num_buffers,
            ft_max_retries=self.ft_max_retries,
        )

    def _byz_oc_config(self) -> OcBcastConfig:
        return replace(self._service_oc_config(), byz=True)

    def _payload(self) -> bytes:
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, 256, size=self.nbytes, dtype=np.uint8).tobytes()

    def run_one(
        self,
        plan: FaultPlan,
        *,
        ft: bool,
        service: bool = False,
        byz: bool = False,
        trace: bool = False,
    ) -> tuple[TrialRun, tuple[TraceRecord, ...]]:
        """Run one broadcast under ``plan`` on a fresh chip and classify it.

        ``service=True`` runs the crash-surviving service
        (:class:`repro.member.OcBcastService`) instead of a bare OC-Bcast
        (``ft`` is then ignored -- the service is always fault-tolerant)
        and harvests its TTD/TTR histograms into the returned run.
        ``byz=True`` runs the RBC-hardened service and classifies over
        *honest* members only (:data:`BYZ_OUTCOMES`): adversary ranks'
        results are worthless by definition.  Returns the classified run
        plus (when ``trace``) the fault-relevant trace records.
        """
        tracer = Tracer(enabled=trace)
        injector = FaultInjector(plan)
        metrics = MetricsRegistry() if (service or byz) else None
        chip = SccChip(
            self.config, tracer=tracer, faults=injector, metrics=metrics
        )
        comm = Comm(chip)
        payload = self._payload()
        nbytes = self.nbytes
        root = self.root

        if byz:
            svc = OcBcastService(
                comm, root=root, oc_config=self._byz_oc_config()
            )

            def program(core) -> Generator:
                cc = comm.attach(core)
                buf = cc.alloc(nbytes)
                if cc.rank == root:
                    buf.write(payload)
                try:
                    status = yield from svc.bcast(cc, buf, nbytes)
                except FaultInjected:
                    return "crashed"
                if status != "ok":
                    return status
                return ("ok", zlib.crc32(buf.read()))
        elif service:
            svc = OcBcastService(
                comm, root=root, oc_config=self._service_oc_config()
            )

            def program(core) -> Generator:
                cc = comm.attach(core)
                buf = cc.alloc(nbytes)
                if cc.rank == root:
                    buf.write(payload)
                try:
                    status = yield from svc.bcast(cc, buf, nbytes)
                except FaultInjected:
                    return "crashed"
                if status in ("evicted", "aborted"):
                    return status
                return buf.read() == payload
        else:
            oc = OcBcast(comm, self._oc_config(ft))

            def program(core) -> Generator:
                cc = comm.attach(core)
                buf = cc.alloc(nbytes)
                if cc.rank == root:
                    buf.write(payload)
                try:
                    yield from oc.bcast(cc, root, buf, nbytes)
                except FaultInjected:
                    return "crashed"
                return buf.read() == payload

        chip.sim.start_watchdog(self.watchdog_interval)
        start = chip.now
        outcome, latency, detail = "", 0.0, ""
        n_evicted = 0
        try:
            res = run_spmd(chip, program)
        except SimError as exc:
            # The kernel wraps an exception escaping a process in
            # SimError(...) from exc; classify by the original cause.
            cause = exc if exc.__cause__ is None else exc.__cause__
            if isinstance(cause, WatchdogError):
                outcome, detail = "deadlock", f"watchdog: {cause}"
            elif isinstance(cause, DeadlockError):
                outcome, detail = "deadlock", str(cause)
            elif isinstance(cause, SimTimeoutError):
                outcome, detail = "timeout", str(cause)
            elif isinstance(cause, FaultInjected):
                outcome, detail = "crashed", str(cause)
            else:
                raise
        else:
            latency = res.end_time - start
            if byz:
                adversary = {
                    s.core for s in plan.specs if s.kind in ADVERSARY_KINDS
                }
                honest = [
                    v for r, v in enumerate(res.values) if r not in adversary
                ]
                ok_crcs = {v[1] for v in honest if isinstance(v, tuple)}
                n_ok = sum(1 for v in honest if isinstance(v, tuple))
                n_det = sum(1 for v in honest if v == "detected")
                src_crc = zlib.crc32(payload)
                if len(ok_crcs) > 1:
                    outcome = "disagreement"
                    detail = (
                        f"honest members delivered {len(ok_crcs)} distinct "
                        f"payloads"
                    )
                elif n_ok == len(honest):
                    outcome = "agreed"
                    detail = (
                        "source value" if ok_crcs == {src_crc}
                        else "attacker variant"
                    )
                elif n_ok == 0 and n_det == len(honest):
                    outcome = "detected"
                    detail = f"uniform refusal by {n_det} honest member(s)"
                else:
                    outcome = "partial"
                    detail = (
                        f"{n_ok} delivered, {n_det} refused, "
                        f"{len(honest) - n_ok - n_det} other"
                    )
                records = tuple(
                    r for r in tracer.records if r.kind in TIMELINE_KINDS
                )
                ttd = None
                if metrics is not None:
                    h = metrics.histograms.get("rbc.ttd_us")
                    ttd = h.mean if h is not None and h.count else None
                return (
                    TrialRun(
                        outcome=outcome,
                        latency=latency,
                        n_injected=injector.n_injected,
                        n_recovered=injector.n_recovered,
                        detail=detail,
                        ttd=ttd,
                    ),
                    records,
                )
            vals = list(res.values)
            n_bad = sum(1 for v in vals if v is False)
            n_crashed = sum(1 for v in vals if v == "crashed")
            n_evicted = sum(1 for v in vals if v == "evicted")
            n_aborted = sum(1 for v in vals if v == "aborted")
            n_ok = sum(1 for v in vals if v is True)
            if n_bad:
                outcome = "corrupt"
                detail = f"{n_bad} core(s) hold wrong bytes"
            elif n_aborted:
                if n_ok:
                    # Uniform agreement broken: deliverers and aborters
                    # coexist -- as bad as wrong bytes.
                    outcome = "corrupt"
                    detail = (
                        f"non-uniform outcome: {n_ok} delivered, "
                        f"{n_aborted} aborted"
                    )
                else:
                    outcome = "aborted"
                    detail = f"uniform abort by {n_aborted} live member(s)"
            elif injector.n_injected:
                outcome = "recovered"
                parts = []
                if n_crashed:
                    parts.append(f"{n_crashed} crashed")
                if n_evicted:
                    parts.append(f"{n_evicted} evicted")
                if parts:
                    detail = ", ".join(parts) + ", survivors delivered"
            else:
                outcome = "delivered"
        records = tuple(
            r for r in tracer.records if r.kind in TIMELINE_KINDS
        )
        ttd = ttr = tte = None
        n_self_evict = n_report_failed = 0
        if metrics is not None:
            h = metrics.histograms.get("member.ttd_us")
            ttd = h.mean if h is not None and h.count else None
            h = metrics.histograms.get("member.ttr_us")
            ttr = h.mean if h is not None and h.count else None
            h = metrics.histograms.get("member.tte_us")
            tte = h.mean if h is not None and h.count else None
            c = metrics.counters.get("svc.self_evict")
            n_self_evict = int(c.value) if c is not None else 0
            c = metrics.counters.get("svc.report_failed")
            n_report_failed = int(c.value) if c is not None else 0
        return (
            TrialRun(
                outcome=outcome,
                latency=latency,
                n_injected=injector.n_injected,
                n_recovered=injector.n_recovered,
                detail=detail,
                n_evicted=n_evicted,
                ttd=ttd,
                ttr=ttr,
                tte=tte,
                n_self_evict=n_self_evict,
                n_report_failed=n_report_failed,
            ),
            records,
        )

    def _draw_nth(self, rng: random.Random, n: int) -> int:
        """An occurrence number inside the profiled range (middle third
        when ``mid_stream`` targets a fault partway through the run)."""
        n = max(1, n)
        if self.mid_stream and n >= 3:
            return rng.randint(max(1, n // 3), max(1, 2 * n // 3))
        return rng.randint(1, n)

    def trial_plans(self) -> list[FaultPlan]:
        """The campaign's per-trial fault plans -- a pure function of the
        seed and the profiled fault-free run, so two calls agree exactly.

        With ``faults_per_trial > 1`` the kinds cycle *within* each trial,
        so one plan combines e.g. a mid-stream interior crash with a
        corrupted data line.  Specs are drawn rejection-style so no two
        claim the same ``(category, core, nth)`` site (which
        :class:`~repro.faults.FaultPlan` rejects).
        """
        if self.byz:
            return self._byz_trial_plans()
        profile = self.profile_sites()
        rng = random.Random(self.seed)
        size = (self.config or SccConfig()).num_cores
        tree = PropagationTree(size, self.k, self.root)
        leaves = [
            r for r in range(size)
            if r != self.root and not tree.children_of(r)
        ]
        interior = [
            r for r in range(size)
            if r != self.root and tree.children_of(r)
        ]
        crash_pool = {
            "leaf": leaves,
            "interior": interior or leaves,
            "any": leaves + interior,
            "root": [self.root],
        }[self.crash_site]
        non_root = [r for r in range(size) if r != self.root]

        def draw(kind: FaultKind) -> FaultSpec:
            if kind in (FaultKind.DROP_FLAG_WRITE, FaultKind.CORRUPT_FLAG_WRITE):
                return FaultSpec(
                    kind, nth=self._draw_nth(rng, profile.get("flag_write", 0))
                )
            if kind in (FaultKind.DROP_DATA_WRITE, FaultKind.CORRUPT_DATA_WRITE):
                return FaultSpec(
                    kind, nth=self._draw_nth(rng, profile.get("data_write", 0))
                )
            if kind is FaultKind.LINK_STALL:
                return FaultSpec(
                    kind,
                    nth=self._draw_nth(rng, profile.get("mpb_access", 0)),
                    duration=self.stall_duration,
                )
            if kind is FaultKind.LINK_DOWN:
                core = rng.choice(non_root)
                return FaultSpec(
                    kind,
                    core=core,
                    nth=self._draw_nth(
                        rng, profile.get(f"mpb_access@core{core}", 0)
                    ),
                    duration=self.link_down_duration,
                )
            if kind is FaultKind.FLAPPING_LINK:
                core = rng.choice(non_root)
                return FaultSpec(
                    kind,
                    core=core,
                    nth=self._draw_nth(
                        rng, profile.get(f"mpb_access@core{core}", 0)
                    ),
                    duration=self.flap_duration,
                    period=self.flap_period,
                    duty=self.flap_duty,
                )
            if kind is FaultKind.REPEATED_CRASH:
                core = rng.choice(crash_pool)
                return FaultSpec(
                    kind,
                    core=core,
                    nth=self._draw_nth(
                        rng, profile.get(f"core_op@core{core}", 0)
                    ),
                    period=self.churn_gap,
                    cycles=self.churn_cycles,
                )
            if kind is FaultKind.CONGESTION_STORM:
                return FaultSpec(
                    kind,
                    nth=self._draw_nth(rng, profile.get("mpb_access", 0)),
                    duration=self.storm_duration,
                    period=self.storm_stall,
                )
            if kind is FaultKind.CORE_PAUSE:
                core = rng.choice(non_root)
                return FaultSpec(
                    kind,
                    core=core,
                    nth=self._draw_nth(
                        rng, profile.get(f"core_op@core{core}", 0)
                    ),
                    duration=self.pause_duration,
                )
            # CORE_CRASH: site chosen by ``crash_site`` -- a crashed leaf
            # is routable by the FT layer alone, a crashed interior node
            # orphans its subtree and takes the service to survive.
            core = rng.choice(crash_pool)
            return FaultSpec(
                kind,
                core=core,
                nth=self._draw_nth(rng, profile.get(f"core_op@core{core}", 0)),
            )

        plans: list[FaultPlan] = []
        for i in range(self.trials):
            # One Bernoulli draw per trial -- but only when the rate is
            # below 1.0, so default campaigns consume the seed stream
            # exactly as they always have.
            if self.fault_rate < 1.0 and rng.random() >= self.fault_rate:
                plans.append(FaultPlan((), label=f"trial{i}:fault-free"))
                continue
            specs: list[FaultSpec] = []
            claimed: set[tuple[str, int | None, int]] = set()
            for j in range(self.faults_per_trial):
                kind = self.kinds[(i * self.faults_per_trial + j) % len(self.kinds)]
                for _ in range(32):
                    spec = draw(kind)
                    site = (spec.category, spec.core, spec.nth)
                    if site not in claimed:
                        break
                else:  # pragma: no cover - 32 collisions needs a tiny profile
                    continue
                claimed.add(site)
                specs.append(spec)
            label = "+".join(s.kind.value for s in specs)
            plans.append(FaultPlan(tuple(specs), label=f"trial{i}:{label}"))
        return plans

    def _byz_trial_plans(self) -> list[FaultPlan]:
        """Per-trial adversary sets: ``adversaries`` compromised cores
        drawn from the seeded RNG.  The kind cycle uses whatever
        adversary kinds ``kinds`` carries (all three when it carries
        none); EQUIVOCATE is forced onto the root -- only the source can
        serve two variants -- and at most one spec targets each core, so
        the adversary count is exact."""
        profile = self.byz_profile_sites()
        rng = random.Random(self.seed)
        size = (self.config or SccConfig()).num_cores
        kinds = tuple(k for k in self.kinds if k in ADVERSARY_KINDS) or (
            FaultKind.EQUIVOCATE,
            FaultKind.LIE_IN_QUORUM,
            FaultKind.FORGE_FLAG_VALUE,
        )
        non_root = [r for r in range(size) if r != self.root]
        n_stage = max(1, profile.get(f"adv_stage@core{self.root}", 1))
        plans: list[FaultPlan] = []
        for i in range(self.trials):
            if self.fault_rate < 1.0 and rng.random() >= self.fault_rate:
                plans.append(FaultPlan(
                    (), num_cores=size, label=f"trial{i}:fault-free"
                ))
                continue
            specs: list[FaultSpec] = []
            used: set[int] = set()
            for j in range(self.adversaries):
                kind = kinds[(i * self.adversaries + j) % len(kinds)]
                if kind is FaultKind.EQUIVOCATE:
                    if self.root in used:
                        kind = FaultKind.LIE_IN_QUORUM  # one source only
                    else:
                        specs.append(FaultSpec(
                            kind, core=self.root,
                            nth=rng.randint(1, n_stage), duration=1,
                        ))
                        used.add(self.root)
                        continue
                pool = [r for r in non_root if r not in used]
                if not pool:  # pragma: no cover - adversaries < size
                    break
                core = rng.choice(pool)
                used.add(core)
                n_vote = max(1, profile.get(f"quorum_vote@core{core}", 1))
                specs.append(
                    FaultSpec(kind, core=core, nth=rng.randint(1, n_vote))
                )
            label = "+".join(s.kind.value for s in specs)
            plans.append(FaultPlan(
                tuple(specs), num_cores=size, label=f"trial{i}:{label}"
            ))
        return plans

    def profile_sites(self) -> dict[str, int]:
        """Count candidate fault sites with a fault-free baseline run."""
        injector = FaultInjector(FaultPlan())
        chip = SccChip(self.config, faults=injector)
        self._bcast_once(chip, ft=False)
        return injector.profile()

    def byz_profile_sites(self) -> dict[str, int]:
        """Count adversary fault sites (``adv_stage`` / ``quorum_vote``)
        with a fault-free Byzantine-service run -- those sites only
        exist when the RBC layer is active."""
        injector = FaultInjector(FaultPlan())
        chip = SccChip(self.config, faults=injector)
        self._service_once(chip, self._byz_oc_config())
        return injector.profile()

    def _bcast_once(self, chip: SccChip, *, ft: bool) -> float:
        comm = Comm(chip)
        oc = OcBcast(comm, self._oc_config(ft))
        payload = self._payload()
        nbytes, root = self.nbytes, self.root

        def program(core) -> Generator:
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == root:
                buf.write(payload)
            yield from oc.bcast(cc, root, buf, nbytes)
            if cc.rank != root and buf.read() != payload:
                raise AssertionError(f"rank {cc.rank}: fault-free run corrupt")
            return None

        start = chip.now
        res = run_spmd(chip, program)
        return res.end_time - start

    # -- the campaign --------------------------------------------------------

    def service_latency_once(self) -> float:
        """Fault-free service-mode makespan (the service tax numerator)."""
        return self._service_once(
            SccChip(self.config), self._service_oc_config()
        )

    def byz_latency_once(self) -> float:
        """Fault-free Byzantine-mode makespan (the rbc tax numerator)."""
        return self._service_once(SccChip(self.config), self._byz_oc_config())

    def _service_once(self, chip: SccChip, oc_config: OcBcastConfig) -> float:
        comm = Comm(chip)
        svc = OcBcastService(comm, root=self.root, oc_config=oc_config)
        payload = self._payload()
        nbytes, root = self.nbytes, self.root

        def program(core) -> Generator:
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == root:
                buf.write(payload)
            status = yield from svc.bcast(cc, buf, nbytes)
            if status != "ok" or (cc.rank != root and buf.read() != payload):
                raise AssertionError(f"rank {cc.rank}: fault-free service run bad")
            return None

        start = chip.now
        res = run_spmd(chip, program)
        return res.end_time - start

    def run(self) -> CampaignResult:
        """Profile, then run every trial (FT first, then baseline and the
        service when enabled; ``byz=True`` campaigns run only the
        Byzantine-service leg).  Equivalent to ``run_trials(jobs=1)``."""
        return self.run_trials(jobs=1)

    def run_trials(self, *, jobs: int = 1) -> CampaignResult:
        """The one campaign scheduler: serial, parallel and adaptive
        fidelity share it (``jobs`` fans fault-bearing trials across
        worker processes; results are equal for any ``jobs``).

        With ``fidelity="adaptive"``, fault-free trials never reach the
        event kernel: a fault-free trial is a deterministic replica of
        the campaign's fault-free reference run, so its
        :class:`TrialRun` is served from the memoised reference --
        byte-identical to what the kernel would have produced -- after
        the analytic engine has cross-checked the reference latencies
        (a prediction outside ``analytic_tolerance`` degrades the whole
        campaign back to all-kernel execution).
        """
        if self.byz:
            return self._run_byz(jobs=jobs)
        profile = self.profile_sites()
        base_latency = self._bcast_once(SccChip(self.config), ft=False)
        ft_latency = self._bcast_once(SccChip(self.config), ft=True)
        service_latency = self.service_latency_once() if self.service else 0.0

        plans = self.trial_plans()
        fidelity_info = self._check_fidelity(plans, base_latency, ft_latency)
        reference = None
        if fidelity_info is not None and not fidelity_info["degraded"] \
                and fidelity_info["n_analytic"]:
            ref_ft, _ = self.run_one(FaultPlan(), ft=True)
            ref_base = None
            if self.compare_baseline:
                ref_base, _ = self.run_one(FaultPlan(), ft=False)
            ref_service = None
            if self.service:
                ref_service, _ = self.run_one(FaultPlan(), ft=True, service=True)

            def reference(i: int, plan: FaultPlan) -> TrialResult:
                return TrialResult(
                    index=i, plan=plan, ft=ref_ft,
                    baseline=ref_base, service=ref_service,
                )

        merged = self._dispatch(plans, reference, _trial_worker, jobs)

        ft_counts: Counter = Counter()
        baseline_counts: Counter | None = (
            Counter() if self.compare_baseline else None
        )
        service_counts: Counter | None = Counter() if self.service else None
        timeline: tuple[TraceRecord, ...] = ()
        trials: list[TrialResult] = []
        for trial, records in merged:
            ft_counts[trial.ft.outcome] += 1
            if baseline_counts is not None and trial.baseline is not None:
                baseline_counts[trial.baseline.outcome] += 1
            if service_counts is not None and trial.service is not None:
                service_counts[trial.service.outcome] += 1
            if not timeline and trial.ft.n_injected:
                timeline = records
            trials.append(trial)
        return CampaignResult(
            trials=tuple(trials),
            ft_counts=ft_counts,
            baseline_counts=baseline_counts,
            base_latency=base_latency,
            ft_latency=ft_latency,
            profile=profile,
            nbytes=self.nbytes,
            seed=self.seed,
            timeline=timeline,
            service_counts=service_counts,
            service_latency=service_latency,
            fidelity=fidelity_info,
        )

    def _run_byz(self, *, jobs: int = 1) -> CampaignResult:
        """The Byzantine campaign: profile adversary sites, measure the
        fault-free rbc tax, then classify every adversary trial.  The
        RBC rounds have no closed-form replay, so adaptive fidelity
        degrades to all-kernel execution here (recorded in the result)."""
        profile = self.byz_profile_sites()
        base_latency = self._bcast_once(SccChip(self.config), ft=False)
        service_latency = self.service_latency_once()
        byz_latency = self.byz_latency_once()

        fidelity_info = None
        if self.fidelity == "adaptive":
            fidelity_info = {
                "mode": "adaptive", "n_analytic": 0, "n_replayed": self.trials,
                "degraded": True,
                "reason": "Byzantine echo/ready rounds are not analytically "
                          "modelled; every trial runs on the event kernel",
            }
        plans = self.trial_plans()
        merged = self._dispatch(plans, None, _byz_trial_worker, jobs)
        byz_counts: Counter = Counter()
        timeline: tuple[TraceRecord, ...] = ()
        trials: list[TrialResult] = []
        for trial, records in merged:
            byz_counts[trial.byz.outcome] += 1
            if not timeline and trial.byz.n_injected:
                timeline = records
            trials.append(trial)
        return CampaignResult(
            trials=tuple(trials),
            ft_counts=Counter(),
            baseline_counts=None,
            base_latency=base_latency,
            ft_latency=0.0,
            profile=profile,
            nbytes=self.nbytes,
            seed=self.seed,
            timeline=timeline,
            service_latency=service_latency,
            byz_counts=byz_counts,
            byz_latency=byz_latency,
            fidelity=fidelity_info,
        )

    def _check_fidelity(
        self,
        plans: Sequence[FaultPlan],
        base_latency: float,
        ft_latency: float,
    ) -> dict | None:
        """Arm the adaptive fast path -- or explain why it degraded.

        The guard: :class:`~repro.scc.analytic.AnalyticEngine` predicts
        the fault-free baseline and FT latencies; both must agree with
        the kernel-measured references within ``analytic_tolerance``.
        An out-of-tolerance prediction (or a config the engine refuses
        to model) means this campaign sits outside the engine's
        validated envelope, so every trial keeps its kernel run.
        """
        if self.fidelity != "adaptive":
            return None
        from ..scc.config import ContentionMode

        cfg = self.config or SccConfig()
        tolerance = self.analytic_tolerance
        if tolerance is None:
            tolerance = (
                0.10 if cfg.contention_mode is ContentionMode.BATCH else 0.02
            )
        n_free = sum(1 for p in plans if not p.specs)
        info: dict = {
            "mode": "adaptive",
            "n_analytic": n_free,
            "n_replayed": len(plans) - n_free,
            "tolerance": tolerance,
            "degraded": False,
        }
        unmodelled = sorted(
            {k.value for k in self.kinds if k not in ANALYTIC_REFERENCE_KINDS}
        )
        if unmodelled:
            # Chaos/composite campaigns: time-window and adversary kinds
            # are outside the analytic reference's vocabulary, so the
            # cross-check cannot vouch for this campaign's envelope.
            info["degraded"] = True
            info["reason"] = (
                f"fault kind(s) {', '.join(unmodelled)} have no analytic "
                f"counterpart (time-window/adversary faults); every trial "
                f"runs on the event kernel"
            )
            info["n_analytic"] = 0
            info["n_replayed"] = len(plans)
            return info
        try:
            kw = dict(
                k=self.k, chunk_lines=self.chunk_lines,
                num_buffers=self.num_buffers, root=self.root,
            )
            pred_base = AnalyticEngine(cfg, **kw).evaluate(
                self.nbytes
            ).latencies[0]
            pred_ft = AnalyticEngine(
                cfg, ft=True, ft_ack_data=self._oc_config(True).ft_ack_data,
                **kw,
            ).evaluate(self.nbytes).latencies[0]
            info["predicted_base"] = pred_base
            info["predicted_ft"] = pred_ft
            info["rel_err_base"] = abs(pred_base - base_latency) / base_latency
            info["rel_err_ft"] = abs(pred_ft - ft_latency) / ft_latency
            worst = max(info["rel_err_base"], info["rel_err_ft"])
            if worst > tolerance:
                info["degraded"] = True
                info["reason"] = (
                    f"analytic prediction off by {worst:.2%} "
                    f"(> {tolerance:.2%}): config outside the "
                    f"engine's validated envelope"
                )
        except AnalyticUnsupported as exc:
            info["degraded"] = True
            info["reason"] = str(exc)
        if info["degraded"]:
            info["n_analytic"] = 0
            info["n_replayed"] = len(plans)
        return info

    def _dispatch(
        self,
        plans: Sequence[FaultPlan],
        reference,
        worker,
        jobs: int,
    ) -> list[tuple[TrialResult, tuple[TraceRecord, ...]]]:
        """Execute the trial list: fault-free trials come from
        ``reference`` when the adaptive fast path armed it, everything
        else goes through ``worker`` -- in-process for ``jobs <= 1``
        (tracing lazily, exactly as the classic serial loop did) or
        fanned across a process pool, merged back in trial order."""
        pending = [
            i for i, plan in enumerate(plans)
            if reference is None or plan.specs
        ]
        ran: dict[int, tuple[TrialResult, tuple[TraceRecord, ...]]] = {}
        if jobs <= 1:
            # Trace until the first injection is found -- the timeline
            # only ever comes from the first injected trial.
            found = False
            for i in pending:
                out = worker((self, i, plans[i], not found))
                run = out[0].byz if self.byz else out[0].ft
                if not found and run.n_injected:
                    found = True
                ran[i] = out
        else:
            from .parallel import parallel_map

            outs = parallel_map(
                worker, [(self, i, plans[i], True) for i in pending],
                jobs=jobs,
            )
            ran = dict(zip(pending, outs))
        return [
            ran[i] if i in ran else (reference(i, plan), ())
            for i, plan in enumerate(plans)
        ]


def _trial_worker(
    arg: "tuple[FaultCampaign, int, FaultPlan, bool]",
) -> tuple[TrialResult, tuple[TraceRecord, ...]]:
    """One seeded trial: the FT run plus the optional baseline/service
    legs.  Module-level (picklable) so the same function serves the
    in-process loop and the process pool."""
    campaign, index, plan, trace = arg
    ft_run, records = campaign.run_one(plan, ft=True, trace=trace)
    base_run = None
    if campaign.compare_baseline:
        base_run, _ = campaign.run_one(plan, ft=False)
    service_run = None
    if campaign.service:
        service_run, _ = campaign.run_one(plan, ft=True, service=True)
    return (
        TrialResult(
            index=index, plan=plan, ft=ft_run,
            baseline=base_run, service=service_run,
        ),
        records,
    )


def _byz_trial_worker(
    arg: "tuple[FaultCampaign, int, FaultPlan, bool]",
) -> tuple[TrialResult, tuple[TraceRecord, ...]]:
    """One Byzantine trial (the RBC-hardened service only)."""
    campaign, index, plan, trace = arg
    byz_run, records = campaign.run_one(plan, ft=True, byz=True, trace=trace)
    return TrialResult(index=index, plan=plan, byz=byz_run), records


def parse_kinds(names: Sequence[str]) -> tuple[FaultKind, ...]:
    """Map CLI names (``drop_flag``, ``corrupt_flag``, ``drop_data``,
    ``corrupt_data``, ``stall``, ``link_down``, ``pause``, ``crash``,
    the sustained regimes ``flap``/``flapping_link``,
    ``churn``/``repeated_crash``, ``storm``/``congestion_storm``, and
    the adversary kinds ``equivocate``, ``forge_flag``, ``lie_quorum``)
    to :class:`FaultKind`."""
    alias = {
        "drop_flag": FaultKind.DROP_FLAG_WRITE,
        "corrupt_flag": FaultKind.CORRUPT_FLAG_WRITE,
        "drop_data": FaultKind.DROP_DATA_WRITE,
        "corrupt_data": FaultKind.CORRUPT_DATA_WRITE,
        "stall": FaultKind.LINK_STALL,
        "link_down": FaultKind.LINK_DOWN,
        "pause": FaultKind.CORE_PAUSE,
        "crash": FaultKind.CORE_CRASH,
        "flap": FaultKind.FLAPPING_LINK,
        "flapping_link": FaultKind.FLAPPING_LINK,
        "churn": FaultKind.REPEATED_CRASH,
        "repeated_crash": FaultKind.REPEATED_CRASH,
        "storm": FaultKind.CONGESTION_STORM,
        "congestion_storm": FaultKind.CONGESTION_STORM,
        "equivocate": FaultKind.EQUIVOCATE,
        "forge_flag": FaultKind.FORGE_FLAG_VALUE,
        "lie_quorum": FaultKind.LIE_IN_QUORUM,
    }
    kinds = []
    for name in names:
        try:
            kinds.append(alias[name])
        except KeyError:
            raise ValueError(
                f"unknown fault kind {name!r}; choose from {sorted(alias)}"
            ) from None
    return tuple(kinds)
