"""The numbers the paper reports, for side-by-side comparison.

Everything here is transcribed from the paper text (figures are reported
only where the text states a number; curve shapes are checked by the
benches as relations, e.g. "k=2 is ~25% slower than k=7 between 96 and
192 cache lines").
"""

from __future__ import annotations

from ..model.params import TABLE_1, ModelParams

#: Table 1 -- the measured model parameters (microseconds).
TABLE1_PARAMS: ModelParams = TABLE_1

#: Table 2 -- analytic peak broadcast throughput (MB/s).
TABLE2_THROUGHPUT_MB_S: dict[str, float] = {
    "OC-Bcast k=2": 35.22,
    "OC-Bcast k=7": 34.30,
    "OC-Bcast k=47": 35.88,
    "scatter-allgather": 13.38,
}

#: Section 6.2.1: measured 1-cache-line broadcast latency (microseconds).
FIG8A_LATENCY_1CL_US: dict[str, float] = {
    "OC-Bcast k=7": 16.6,
    "binomial": 21.6,
}

#: Section 1.2 / 6.2.1: OC-Bcast's latency improvement over the binomial
#: tree is at least this factor (27%).
MIN_LATENCY_IMPROVEMENT: float = 0.27

#: Section 6.2.1: between 96 and 192 cache lines, k=7 beats k=2 by ~25%.
K7_OVER_K2_IMPROVEMENT: float = 0.25

#: Section 6.2.2: OC-Bcast's peak throughput is "almost 3 times" the
#: scatter-allgather baseline's.
THROUGHPUT_RATIO_OC_OVER_SAG: float = 3.0

#: Section 3.3: up to this many cores may access one MPB concurrently
#: without measurable contention.
CONTENTION_FREE_ACCESSORS: int = 24

#: Section 3.3 / Figure 4: at 48 concurrent accessors the slowest core is
#: more than this factor slower than the fastest (get of 128 lines / put
#: of 1 line).
FIG4_GET_SPREAD_AT_48: float = 2.0
FIG4_PUT_SPREAD_AT_48: float = 4.0

#: Section 6.2.2: measured k=47 throughput falls ~16% short of the model.
K47_THROUGHPUT_SHORTFALL: float = 0.16

#: Section 3.2: 1-hop vs 9-hop put/get differ by only ~30%.
DISTANCE_SPREAD_1_TO_9_HOPS: float = 0.30

#: Figure 6/8 x-ranges (cache lines).
LATENCY_SIZES_CL: tuple[int, ...] = (1, 8, 16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192)
THROUGHPUT_SIZES_CL: tuple[int, ...] = (1, 4, 16, 64, 96, 97, 192, 256, 1024, 4096, 8192, 16384, 32768)
