"""Experiment harness: everything needed to regenerate the paper's tables
and figures on the simulated chip.

- :mod:`repro.bench.harness` -- broadcast experiment runner (algorithm
  factories, iteration/warm-up policy, latency bookkeeping on the global
  clock).
- :mod:`repro.bench.microbench` -- put/get sweeps over distance and size
  (Figure 3, Table 1).
- :mod:`repro.bench.contention` -- concurrent MPB access (Figure 4) and
  the loaded-mesh-link probe (Section 3.3).
- :mod:`repro.bench.paper_data` -- the numbers the paper reports, for
  side-by-side comparison.
- :mod:`repro.bench.faultcampaign` -- seeded fault-injection campaigns
  comparing fault-tolerant OC-Bcast against the baseline.
- :mod:`repro.bench.churn` -- sustained-regime churn campaigns: many
  consecutive broadcasts under a continuously active fault process,
  adaptive (phi-accrual + backoff) vs fixed-deadline configurations.
- :mod:`repro.bench.parallel` -- fan independent grid points / campaign
  trials across worker processes with bit-identical merged results.
- :mod:`repro.bench.reporting` -- ASCII tables/series and CSV output.
- :mod:`repro.bench.analysis` -- trace-based pipeline timelines, overlap
  metrics and MPB-port utilisation.
- :mod:`repro.bench.ascii_plot` -- terminal line charts for figure data.
"""

from .analysis import (
    busiest_port,
    chunk_timeline,
    flag_traffic,
    mpb_port_utilisation,
    pipeline_depth,
    pipeline_overlap,
)
from .ascii_plot import ascii_chart
from .churn import ChurnCampaign, ChurnResult, ChurnTrial
from .faultcampaign import (
    CampaignResult,
    FaultCampaign,
    TrialResult,
    TrialRun,
)
from .harness import BcastResult, BcastSpec, run_broadcast, sweep_broadcast
from .microbench import PutGetSample, sweep_putget
from .parallel import (
    default_jobs,
    parallel_map,
    run_campaign_parallel,
    sweep_broadcast_parallel,
)
from .contention import ContentionResult, concurrent_access, mesh_link_probe
from .reporting import format_fault_timeline, format_series, format_table, write_csv

__all__ = [
    "BcastResult",
    "BcastSpec",
    "CampaignResult",
    "ChurnCampaign",
    "ChurnResult",
    "ChurnTrial",
    "ContentionResult",
    "FaultCampaign",
    "TrialResult",
    "TrialRun",
    "PutGetSample",
    "ascii_chart",
    "busiest_port",
    "chunk_timeline",
    "concurrent_access",
    "default_jobs",
    "parallel_map",
    "run_campaign_parallel",
    "sweep_broadcast_parallel",
    "flag_traffic",
    "mpb_port_utilisation",
    "pipeline_depth",
    "pipeline_overlap",
    "format_fault_timeline",
    "format_series",
    "format_table",
    "mesh_link_probe",
    "run_broadcast",
    "sweep_broadcast",
    "sweep_putget",
    "write_csv",
]
