"""Terminal line charts for figure series (no plotting dependencies).

Renders the paper's figure data as ASCII scatter/line charts so the CLI
and examples can show curve *shapes* (knees, crossovers, the 97-line
dip), not just tables.  One character cell per (x-bucket, y-bucket);
each series draws with its own marker and the legend maps markers to
labels.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

MARKERS = "ox+*#@%&"


def _scale(
    value: float, lo: float, hi: float, cells: int, log: bool
) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(frac * (cells - 1)))))


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``series`` (each aligned with ``x``) as an ASCII chart."""
    if not x:
        raise ValueError("need at least one x value")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series")
    for label, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {label!r} length != x length")

    xs = list(map(float, x))
    all_y = [float(v) for ys in series.values() for v in ys]
    if logx and min(xs) <= 0:
        raise ValueError("logx needs positive x values")
    if logy and min(all_y) <= 0:
        raise ValueError("logy needs positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, ys) in zip(MARKERS, series.items()):
        for xv, yv in zip(xs, ys):
            col = _scale(float(xv), x_lo, x_hi, width, logx)
            row = height - 1 - _scale(float(yv), y_lo, y_hi, height, logy)
            grid[row][col] = marker

    fmt = "{:.4g}"
    lines: list[str] = []
    if title:
        lines.append(title)
    top = f"{fmt.format(y_hi)} {y_label}"
    lines.append(top)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    left = fmt.format(x_lo) + (" (log)" if logx else "")
    right = fmt.format(x_hi) + f" {x_label}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " + left + " " * pad + right)
    lines.append(f"  y-min: {fmt.format(y_lo)}" + (" (log y)" if logy else ""))
    legend = "  ".join(
        f"{m}={label}" for m, label in zip(MARKERS, series.keys())
    )
    lines.append("  " + legend)
    return "\n".join(lines)
