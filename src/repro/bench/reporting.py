"""Plain-text reporting: fixed-width tables, aligned series, CSV dumps.

Benches print the same rows/series the paper's tables and figures show,
with a "paper" column beside the measured one where the paper reports a
number.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned fixed-width table."""
    def cell(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render figure data: one x column plus one column per series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(s[i] for s in series.values())] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def format_fault_timeline(
    records: Iterable[Any],
    title: str | None = "Fault timeline",
) -> str:
    """Render fault/recovery trace records as an aligned timeline.

    Accepts :class:`repro.sim.trace.TraceRecord` objects (typically the
    ``timeline`` of a :class:`repro.bench.faultcampaign.CampaignResult`,
    or a tracer filtered to ``fault.*`` / retry / ``oc.ft.*`` kinds).
    """
    rows = [
        [
            f"{r.time:.4f}",
            r.source,
            r.kind,
            " ".join(f"{k}={v}" for k, v in r.detail.items()),
        ]
        for r in records
    ]
    if not rows:
        return "(no fault events)"
    return format_table(["t (us)", "source", "event", "detail"], rows, title=title)


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> str:
    """Write rows to a CSV file, creating parent directories; returns path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
