"""Parallel execution of independent simulation runs.

Every benchmark in this package is a grid of *independent* simulations: a
sweep runs one fresh chip per ``(spec, size)`` point, a fault campaign one
fresh chip per trial.  Each point is deterministic given its inputs (the
spec carries the algorithm, the config carries the jitter seed, the
campaign derives per-trial plans from its seed), so the grid can be fanned
out across worker processes and merged back **in submission order**
without changing a single output bit -- ``jobs=1`` and ``jobs=N`` produce
identical results, and both match the serial loops in
:mod:`repro.bench.harness` / :mod:`repro.bench.faultcampaign`.

The workers are plain module-level functions over picklable dataclasses,
so the pool works with any start method.  ``jobs <= 1`` short-circuits to
an in-process loop (no pool, no pickling) -- callers can pass ``--jobs``
straight through without special-casing.
"""

from __future__ import annotations

import os
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..faults import FaultPlan
from ..scc import SccChip, SccConfig
from ..scc.config import CACHE_LINE
from ..sim.trace import TraceRecord
from .faultcampaign import CampaignResult, FaultCampaign, TrialResult
from .harness import BcastResult, BcastSpec, run_broadcast

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """A sensible worker count for this machine (cores, capped at 8 --
    each worker is a full simulator, memory-hungry beyond that)."""
    return min(os.cpu_count() or 1, 8)


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], *, jobs: int = 1
) -> list[_R]:
    """Apply ``fn`` to every item, in worker processes when ``jobs > 1``.

    Results come back in input order regardless of completion order, so a
    deterministic ``fn`` makes the whole call deterministic.  ``fn`` must
    be a module-level function and items/results picklable when
    ``jobs > 1``.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))


# -- broadcast sweeps ---------------------------------------------------------


def _bcast_point(
    point: tuple[BcastSpec, int, SccConfig | None, int, int, bool, int],
) -> BcastResult:
    """Worker: one ``(spec, size)`` grid point on a fresh chip."""
    spec, nbytes, config, iters, warmup, verify, seed = point
    return run_broadcast(
        spec, nbytes, config=config,
        iters=iters, warmup=warmup, verify=verify, seed=seed,
    )


def sweep_broadcast_parallel(
    specs: Sequence[BcastSpec],
    sizes_cache_lines: Sequence[int],
    *,
    config: SccConfig | None = None,
    iters: int = 3,
    warmup: int = 1,
    verify: bool = True,
    seed: int = 1,
    jobs: int = 1,
) -> dict[str, list[BcastResult]]:
    """Parallel equivalent of :func:`repro.bench.sweep_broadcast`.

    The full ``specs x sizes`` grid is fanned across ``jobs`` workers;
    every point carries the same explicit ``seed`` the serial sweep uses,
    and the merge is by grid position -- the returned mapping is equal to
    the serial one for any ``jobs``.
    """
    points = [
        (spec, ncl * CACHE_LINE, config, iters, warmup, verify, seed)
        for spec in specs
        for ncl in sizes_cache_lines
    ]
    flat = parallel_map(_bcast_point, points, jobs=jobs)
    n = len(sizes_cache_lines)
    return {
        spec.label: flat[i * n:(i + 1) * n] for i, spec in enumerate(specs)
    }


# -- fault campaigns ----------------------------------------------------------


def _campaign_trial(
    arg: tuple[FaultCampaign, int, FaultPlan],
) -> tuple[TrialResult, tuple[TraceRecord, ...]]:
    """Worker: one seeded trial (FT run plus optional baseline run).

    Always traces the FT run: tracing has no timing effect, and the
    caller needs the records of whichever trial turns out to be the first
    with an injection (unknowable before the merge).
    """
    campaign, index, plan = arg
    ft_run, records = campaign.run_one(plan, ft=True, trace=True)
    base_run = None
    if campaign.compare_baseline:
        base_run, _ = campaign.run_one(plan, ft=False)
    service_run = None
    if campaign.service:
        service_run, _ = campaign.run_one(plan, ft=True, service=True)
    return (
        TrialResult(
            index=index, plan=plan, ft=ft_run,
            baseline=base_run, service=service_run,
        ),
        records,
    )


def _byz_trial(
    arg: tuple[FaultCampaign, int, FaultPlan],
) -> tuple[TrialResult, tuple[TraceRecord, ...]]:
    """Worker: one Byzantine trial (the RBC-hardened service only)."""
    campaign, index, plan = arg
    byz_run, records = campaign.run_one(plan, ft=True, byz=True, trace=True)
    return TrialResult(index=index, plan=plan, byz=byz_run), records


def run_campaign_parallel(
    campaign: FaultCampaign, *, jobs: int = 1
) -> CampaignResult:
    """Parallel equivalent of :meth:`FaultCampaign.run`.

    The profile and the two fault-free reference runs stay in-process
    (they seed the trial plans); the trials -- the bulk of the work --
    fan out.  Results merge in trial order and the timeline is taken from
    the lowest-index trial that saw an injection, exactly as the serial
    loop encounters it, so the returned :class:`CampaignResult` is equal
    for any ``jobs``.
    """
    if jobs <= 1:
        return campaign.run()
    if campaign.byz:
        return _run_byz_parallel(campaign, jobs=jobs)
    profile = campaign.profile_sites()
    base_latency = campaign._bcast_once(SccChip(campaign.config), ft=False)
    ft_latency = campaign._bcast_once(SccChip(campaign.config), ft=True)
    service_latency = campaign.service_latency_once() if campaign.service else 0.0

    plans = campaign.trial_plans()
    merged = parallel_map(
        _campaign_trial,
        [(campaign, i, plan) for i, plan in enumerate(plans)],
        jobs=jobs,
    )

    ft_counts: Counter = Counter()
    baseline_counts: Counter | None = (
        Counter() if campaign.compare_baseline else None
    )
    service_counts: Counter | None = Counter() if campaign.service else None
    timeline: tuple[TraceRecord, ...] = ()
    trials: list[TrialResult] = []
    for trial, records in merged:
        ft_counts[trial.ft.outcome] += 1
        if baseline_counts is not None and trial.baseline is not None:
            baseline_counts[trial.baseline.outcome] += 1
        if service_counts is not None and trial.service is not None:
            service_counts[trial.service.outcome] += 1
        if not timeline and trial.ft.n_injected:
            timeline = records
        trials.append(trial)
    return CampaignResult(
        trials=tuple(trials),
        ft_counts=ft_counts,
        baseline_counts=baseline_counts,
        base_latency=base_latency,
        ft_latency=ft_latency,
        profile=profile,
        nbytes=campaign.nbytes,
        seed=campaign.seed,
        timeline=timeline,
        service_counts=service_counts,
        service_latency=service_latency,
    )


def _run_byz_parallel(campaign: FaultCampaign, *, jobs: int) -> CampaignResult:
    """Fan the Byzantine trials out; merge exactly as
    :meth:`FaultCampaign._run_byz` does serially."""
    profile = campaign.byz_profile_sites()
    base_latency = campaign._bcast_once(SccChip(campaign.config), ft=False)
    service_latency = campaign.service_latency_once()
    byz_latency = campaign.byz_latency_once()

    plans = campaign.trial_plans()
    merged = parallel_map(
        _byz_trial,
        [(campaign, i, plan) for i, plan in enumerate(plans)],
        jobs=jobs,
    )
    byz_counts: Counter = Counter()
    timeline: tuple[TraceRecord, ...] = ()
    trials: list[TrialResult] = []
    for trial, records in merged:
        byz_counts[trial.byz.outcome] += 1
        if not timeline and trial.byz.n_injected:
            timeline = records
        trials.append(trial)
    return CampaignResult(
        trials=tuple(trials),
        ft_counts=Counter(),
        baseline_counts=None,
        base_latency=base_latency,
        ft_latency=0.0,
        profile=profile,
        nbytes=campaign.nbytes,
        seed=campaign.seed,
        timeline=timeline,
        service_latency=service_latency,
        byz_counts=byz_counts,
        byz_latency=byz_latency,
    )
