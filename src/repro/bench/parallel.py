"""Parallel execution of independent simulation runs.

Every benchmark in this package is a grid of *independent* simulations: a
sweep runs one fresh chip per ``(spec, size)`` point, a fault campaign one
fresh chip per trial.  Each point is deterministic given its inputs (the
spec carries the algorithm, the config carries the jitter seed, the
campaign derives per-trial plans from its seed), so the grid can be fanned
out across worker processes and merged back **in submission order**
without changing a single output bit -- ``jobs=1`` and ``jobs=N`` produce
identical results, and both match the serial loops in
:mod:`repro.bench.harness` / :mod:`repro.bench.faultcampaign`.

The workers are plain module-level functions over picklable dataclasses,
so the pool works with any start method.  ``jobs <= 1`` short-circuits to
an in-process loop (no pool, no pickling) -- callers can pass ``--jobs``
straight through without special-casing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..scc import SccConfig
from ..scc.config import CACHE_LINE, ContentionMode
from .faultcampaign import CampaignResult, FaultCampaign
from .harness import BcastResult, BcastSpec, run_broadcast, sweep_broadcast

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """A sensible worker count for this machine (cores, capped at 8 --
    each worker is a full simulator, memory-hungry beyond that)."""
    return min(os.cpu_count() or 1, 8)


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], *, jobs: int = 1
) -> list[_R]:
    """Apply ``fn`` to every item, in worker processes when ``jobs > 1``.

    Results come back in input order regardless of completion order, so a
    deterministic ``fn`` makes the whole call deterministic.  ``fn`` must
    be a module-level function and items/results picklable when
    ``jobs > 1``.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work))


# -- broadcast sweeps ---------------------------------------------------------


def _bcast_point(
    point: tuple[BcastSpec, int, SccConfig | None, int, int, bool, int],
) -> BcastResult:
    """Worker: one ``(spec, size)`` grid point on a fresh chip."""
    spec, nbytes, config, iters, warmup, verify, seed = point
    return run_broadcast(
        spec, nbytes, config=config,
        iters=iters, warmup=warmup, verify=verify, seed=seed,
    )


def sweep_broadcast_parallel(
    specs: Sequence[BcastSpec],
    sizes_cache_lines: Sequence[int],
    *,
    config: SccConfig | None = None,
    iters: int = 3,
    warmup: int = 1,
    verify: bool = True,
    seed: int = 1,
    jobs: int = 1,
) -> dict[str, list[BcastResult]]:
    """Parallel equivalent of :func:`repro.bench.sweep_broadcast`.

    The full ``specs x sizes`` grid is fanned across ``jobs`` workers;
    every point carries the same explicit ``seed`` the serial sweep uses,
    and the merge is by grid position -- the returned mapping is equal to
    the serial one for any ``jobs``.

    Under :attr:`ContentionMode.ANALYTIC` the grid is handed straight to
    the serial sweep: one vectorised engine batch per spec beats fanning
    per-point engine builds across processes, and the seed never matters
    analytically (no payload bytes move).
    """
    if config is not None and config.contention_mode is ContentionMode.ANALYTIC:
        return sweep_broadcast(
            specs, sizes_cache_lines, config=config,
            iters=iters, warmup=warmup, verify=verify,
        )
    points = [
        (spec, ncl * CACHE_LINE, config, iters, warmup, verify, seed)
        for spec in specs
        for ncl in sizes_cache_lines
    ]
    flat = parallel_map(_bcast_point, points, jobs=jobs)
    n = len(sizes_cache_lines)
    return {
        spec.label: flat[i * n:(i + 1) * n] for i, spec in enumerate(specs)
    }


# -- fault campaigns ----------------------------------------------------------


def run_campaign_parallel(
    campaign: FaultCampaign, *, jobs: int = 1
) -> CampaignResult:
    """Parallel equivalent of :meth:`FaultCampaign.run`.

    A thin alias of :meth:`FaultCampaign.run_trials` -- the one
    scheduler behind serial, parallel and adaptive-fidelity campaigns
    (the profile and fault-free reference runs stay in-process; trials
    fan out and merge in trial order, so the returned
    :class:`CampaignResult` is equal for any ``jobs``).
    """
    return campaign.run_trials(jobs=jobs)
