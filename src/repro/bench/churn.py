"""Churn campaigns: sustained fault regimes over consecutive broadcasts.

The classic :class:`~repro.bench.FaultCampaign` injects *point* faults:
one dropped write, one crash, one stall per trial, each chosen by
occurrence count.  This module measures the other regime the resilience
layer exists for -- a fault process that stays active across **many
consecutive broadcasts**: a continuously flapping link partitioning one
member on a duty cycle, with a mid-stream core crash layered on top.

Each trial runs the same seeded fault plan against two service
configurations:

- **adaptive** -- phi-accrual suspicion
  (:class:`repro.resilience.DetectorConfig`), exponential-backoff retry
  pacing on heartbeats, view installs and FT data/flag paths
  (:class:`repro.resilience.RetryPolicy`), and a per-message retry
  budget that converts pathological overload into a deterministic
  :class:`repro.resilience.OverloadError` refusal;
- **fixed** -- the legacy compiled-in constants: shared ``hb_timeout``
  deadline, immediate re-sends, unbounded attempts up to
  ``max_attempts``.

The point of the comparison: under a flapping link, an *immediate*
retry burst lands entirely inside one down phase (the heartbeat never
arrives -- the member looks dead), while a *paced* schedule straddles
the next up phase (the heartbeat arrives late -- and the adaptive
window, having observed such delays, tolerates it).  The fixed
configuration therefore **falsely evicts a live member or stalls**,
where the adaptive one recovers or refuses cleanly.

A trial terminates cleanly iff it is classified ``survived`` or
``refused``.  ``false_evict`` is the campaign-level I8 check: a rank
the plan never crashed was evicted from the group.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, replace
from typing import Generator

import numpy as np

from ..core import OcBcastConfig
from ..faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from ..member.heartbeat import MembershipConfig
from ..member.service import DEFAULT_SERVICE_OC, OcBcastService
from ..obs import InvariantChecker, MetricsRegistry
from ..rcce import Comm
from ..resilience import DetectorConfig, OverloadError, RetryPolicy
from ..scc import SccChip, SccConfig, run_spmd
from ..scc.config import CACHE_LINE
from ..sim import DeadlockError, FaultInjected, SimError, Tracer, WatchdogError
from ..sim.errors import TimeoutError as SimTimeoutError

#: Trial classifications, in reporting order.  ``survived`` and
#: ``refused`` are the clean terminations; ``false_evict`` terminated
#: but evicted a live member (the I8 violation); ``stalled`` covers
#: deadlock, watchdog and exhausted-attempt timeouts alike.
CHURN_OUTCOMES = ("survived", "refused", "false_evict", "stalled", "corrupt")

#: Kinds whose plan spec names a core the plan itself kills -- evicting
#: those ranks is *correct*, never a false eviction.
_CRASH_KINDS = (FaultKind.CORE_CRASH, FaultKind.REPEATED_CRASH)


@dataclass(frozen=True)
class ChurnTrial:
    """One seeded trial of one configuration (adaptive or fixed)."""

    outcome: str
    #: Broadcasts fully committed by every live member.
    completed: int
    n_injected: int
    n_false_evicted: int
    n_refused: int
    #: Online I8 (``no-false-eviction``) violations caught by the
    #: streaming :class:`repro.obs.InvariantChecker` (adaptive leg only,
    #: with ``check_i8``).
    n_i8_violations: int = 0
    detail: str = ""

    @property
    def terminated(self) -> bool:
        return self.outcome in ("survived", "refused")


@dataclass(frozen=True)
class ChurnResult:
    """Aggregate outcome of a churn campaign."""

    adaptive_counts: Counter
    fixed_counts: Counter | None
    trials: tuple[tuple[ChurnTrial, "ChurnTrial | None"], ...]
    seed: int
    broadcasts: int

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def termination_rate(self) -> float:
        """Fraction of adaptive trials that terminated cleanly."""
        if not self.n_trials:
            return 0.0
        good = sum(1 for a, _ in self.trials if a.terminated)
        return good / self.n_trials

    @property
    def n_false_evictions(self) -> int:
        """Total live members falsely evicted across adaptive trials."""
        return sum(a.n_false_evicted for a, _ in self.trials)

    @property
    def n_i8_violations(self) -> int:
        """Online I8 violations across adaptive trials."""
        return sum(a.n_i8_violations for a, _ in self.trials)

    @property
    def fixed_failure_trials(self) -> int:
        """Fixed-deadline trials that false-evicted or stalled -- the
        regimes the adaptive configuration is built to survive."""
        return sum(
            1 for _, f in self.trials
            if f is not None and f.outcome in ("false_evict", "stalled")
        )

    def summary(self) -> str:
        from .reporting import format_table

        headers = ["outcome", "adaptive"]
        if self.fixed_counts is not None:
            headers.append("fixed-deadline")
        rows = []
        for outcome in CHURN_OUTCOMES:
            row = [outcome, self.adaptive_counts.get(outcome, 0)]
            if self.fixed_counts is not None:
                row.append(self.fixed_counts.get(outcome, 0))
            rows.append(row)
        lines = [
            format_table(
                headers, rows,
                title=f"Churn campaign: {self.n_trials} trials, "
                      f"seed={self.seed}, "
                      f"{self.broadcasts} broadcasts/trial",
            ),
            "",
            f"adaptive termination rate: "
            f"{100.0 * self.termination_rate:.1f}% "
            f"({self.n_false_evictions} false evictions, "
            f"{self.n_i8_violations} online I8 violations)",
        ]
        if self.fixed_counts is not None:
            lines.append(
                f"fixed-deadline false-evict/stall trials: "
                f"{self.fixed_failure_trials}/{self.n_trials}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ChurnCampaign:
    """A seeded campaign of sustained-regime trials over the broadcast
    service.

    Every trial arms one FLAPPING_LINK regime on a random non-root
    member from that member's first MPB access (continuously active for
    the whole run) and crashes one *other* random non-root member
    mid-stream, then drives ``broadcasts`` consecutive service
    broadcasts through it.
    """

    trials: int = 100
    seed: int = 1
    broadcasts: int = 10
    nbytes: int = 96 * CACHE_LINE
    config: SccConfig | None = None
    root: int = 0
    k: int = 7
    chunk_lines: int = 96
    num_buffers: int = 2
    #: Also run every plan against the fixed-deadline configuration.
    compare_fixed: bool = True
    #: Flap regime: cycle length, down fraction.
    flap_period: float = 2_000.0
    flap_duty: float = 0.4
    #: One mid-stream CORE_CRASH per trial (off = flapping only).
    crash: bool = True
    #: Kernel watchdog period (us); must exceed every legitimate idle
    #: wait of the *fixed* configuration too.
    watchdog_interval: float = 120_000.0
    #: Attach the streaming :class:`repro.obs.InvariantChecker` to every
    #: adaptive-leg trial and count I8 (``no-false-eviction``) violations
    #: online.  The fixed leg is exempt by design -- false-evicting under
    #: flap is exactly the failure it demonstrates.
    check_i8: bool = True

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial")
        if self.broadcasts < 1:
            raise ValueError("need at least one broadcast per trial")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be > 0")
        if self.flap_period <= 0.0:
            raise ValueError("flap_period must be > 0")
        if not 0.0 < self.flap_duty < 1.0:
            raise ValueError("flap_duty must be strictly inside (0, 1)")

    # -- the two configurations under test ----------------------------------

    def _backoff(self) -> RetryPolicy:
        """The paced schedule: sized so its cumulative pause straddles a
        flap down phase (``duty * period``) with room to spare."""
        down = self.flap_duty * self.flap_period
        return RetryPolicy.backoff(
            max_retries=5,
            base=max(150.0, down * 0.4),
            factor=2.0,
            cap=self.flap_period,
            jitter=0.1,
            seed=self.seed,
        )

    def _notify_wait(self) -> float:
        """The adaptive leg's notify/commit wait (us).  The commit
        notification relays hop by hop down the tree on *paced* acked
        writes, so the wait must cover the worst-case backoff schedule
        of every hop above this node (tree depth is 2 for 48 cores at
        k=7) -- the same coherence rule the membership config enforces
        for heartbeats.  A wait shorter than the legal pacing turns a
        flap-delayed commit into a phantom recovery round that desyncs
        the member from an already-committed coordinator."""
        return 2.0 * self._backoff().max_total_pause() + 2_000.0

    def adaptive_member_config(self) -> MembershipConfig:
        """Phi-accrual suspicion + paced retries + refusal budget."""
        pol = self._backoff()
        # Never suspect below the worst *legal* response lag: an orphan
        # of a crashed parent sits out the notify wait, then its paced
        # heartbeat may straddle one flap down phase.
        floor = self._notify_wait() + pol.max_total_pause() + self.flap_period
        hb_timeout = floor + 2_000.0
        return MembershipConfig(
            hb_timeout=hb_timeout,
            view_timeout=2.0 * hb_timeout,
            detector=DetectorConfig(
                threshold=8.0,
                window=32,
                min_std=max(25.0, self.flap_duty * self.flap_period),
                min_samples=4,
                floor=floor,
            ),
            hb_retry=pol,
            view_retry=pol,
            retry_budget=4,
        )

    def fixed_member_config(self) -> MembershipConfig:
        """The legacy compiled-in constants (no detector, immediate
        re-sends, no refusal budget)."""
        return MembershipConfig()

    def _oc_config(self, adaptive: bool) -> OcBcastConfig:
        base = replace(
            DEFAULT_SERVICE_OC,
            k=self.k,
            chunk_lines=self.chunk_lines,
            num_buffers=self.num_buffers,
        )
        if adaptive:
            base = replace(
                base,
                ft_retry=self._backoff(),
                ft_notify_timeout=self._notify_wait(),
            )
        return base

    # -- trial plans ---------------------------------------------------------

    def _payloads(self) -> list[bytes]:
        rng = np.random.default_rng(self.seed)
        return [
            rng.integers(0, 256, size=self.nbytes, dtype=np.uint8).tobytes()
            for _ in range(self.broadcasts)
        ]

    def profile_sites(self) -> dict[str, int]:
        """Candidate-site counts from one fault-free adaptive run."""
        injector = FaultInjector(FaultPlan())
        chip = SccChip(self.config, faults=injector)
        self._drive(chip, adaptive=True)
        return injector.profile()

    def trial_plans(self) -> list[FaultPlan]:
        """Per-trial plans -- a pure function of the seed and the
        fault-free profile, shared verbatim by both configurations."""
        profile = self.profile_sites()
        rng = random.Random(self.seed)
        size = (self.config or SccConfig()).num_cores
        non_root = [r for r in range(size) if r != self.root]
        plans: list[FaultPlan] = []
        for i in range(self.trials):
            victim = rng.choice(non_root)
            specs = [FaultSpec(
                FaultKind.FLAPPING_LINK,
                core=victim,
                nth=1,  # continuously active from the victim's first access
                duration=100.0 * self.watchdog_interval,
                period=self.flap_period,
                duty=self.flap_duty,
            )]
            if self.crash:
                pool = [r for r in non_root if r != victim]
                crash_core = rng.choice(pool)
                n = max(1, profile.get(f"core_op@core{crash_core}", 1))
                specs.append(FaultSpec(
                    FaultKind.CORE_CRASH,
                    core=crash_core,
                    nth=rng.randint(max(1, n // 3), max(1, 2 * n // 3)),
                ))
            plans.append(FaultPlan(
                tuple(specs), label=f"churn{i}:core{victim}"
            ))
        return plans

    # -- execution -----------------------------------------------------------

    def latency_once(self, *, adaptive: bool) -> float:
        """Fault-free makespan (simulated us) of the whole
        ``broadcasts``-broadcast stream under one configuration -- the
        resilience-tax probe: both legs replay the same seeded
        payloads, so the ratio isolates the detector + policy
        bookkeeping.  Deterministic."""
        chip = SccChip(self.config)
        return self._drive(chip, adaptive=adaptive).end_time

    def _drive(self, chip: SccChip, *, adaptive: bool):
        """Run ``broadcasts`` consecutive service broadcasts; returns
        the SPMD result (per-rank ``(status, completed)`` values plus
        the end time)."""
        comm = Comm(chip)
        svc = OcBcastService(
            comm,
            root=self.root,
            oc_config=self._oc_config(adaptive),
            member_config=(
                self.adaptive_member_config() if adaptive
                else self.fixed_member_config()
            ),
        )
        payloads = self._payloads()
        nbytes, root, broadcasts = self.nbytes, self.root, self.broadcasts

        def program(core) -> Generator:
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            done = 0
            for b in range(broadcasts):
                if cc.rank == root:
                    buf.write(payloads[b])
                try:
                    status = yield from svc.bcast(cc, buf, nbytes)
                except FaultInjected:
                    return ("crashed", done)
                except OverloadError:
                    return ("refused", done)
                if status == "evicted":
                    return ("evicted", done)
                if status == "aborted":
                    continue
                if buf.read() != payloads[b]:
                    return ("corrupt", done)
                done += 1
            return ("ok", done)

        chip.sim.start_watchdog(self.watchdog_interval)
        return run_spmd(chip, program)

    def run_one(self, plan: FaultPlan, *, adaptive: bool) -> ChurnTrial:
        """Run one trial plan against one configuration and classify."""
        injector = FaultInjector(plan)
        metrics = MetricsRegistry()
        checker = None
        tracer = None
        if adaptive and self.check_i8:
            tracer = Tracer(enabled=True)
        chip = SccChip(self.config, faults=injector, metrics=metrics,
                       tracer=tracer)
        if tracer is not None:
            # Faults are armed on purpose: only the membership promise
            # (I8) and the protocol invariants are on trial, not I1.
            checker = InvariantChecker(lossless=False).attach(chip)
        crashed_by_plan = {
            s.core for s in plan.specs if s.kind in _CRASH_KINDS
        }

        def i8_count() -> int:
            if checker is None:
                return 0
            return sum(
                1 for v in checker.violations
                if v.invariant == "no-false-eviction"
            )

        try:
            vals = self._drive(chip, adaptive=adaptive).values
        except SimError as exc:
            cause = exc if exc.__cause__ is None else exc.__cause__
            if isinstance(cause, (WatchdogError, DeadlockError,
                                  SimTimeoutError)):
                return ChurnTrial(
                    outcome="stalled", completed=0,
                    n_injected=injector.n_injected,
                    n_false_evicted=0, n_refused=0,
                    n_i8_violations=i8_count(),
                    detail=f"{type(cause).__name__}: {cause}",
                )
            raise
        statuses = [v[0] for v in vals]
        refused = [r for r, s in enumerate(statuses) if s == "refused"]
        false_evicted = [
            r for r, s in enumerate(statuses)
            if s == "evicted" and r not in crashed_by_plan
        ]
        live_ok = [
            v[1] for r, v in enumerate(vals)
            if v[0] == "ok" and r not in crashed_by_plan
        ]
        completed = min(live_ok) if live_ok else 0
        if any(s == "corrupt" for s in statuses):
            outcome, detail = "corrupt", "a live member holds wrong bytes"
        elif false_evicted:
            outcome = "false_evict"
            detail = f"live rank(s) {false_evicted} evicted"
        elif refused:
            outcome = "refused"
            detail = f"rank(s) {refused} refused on budget"
        else:
            outcome, detail = "survived", ""
        return ChurnTrial(
            outcome=outcome,
            completed=completed,
            n_injected=injector.n_injected,
            n_false_evicted=len(false_evicted),
            n_refused=len(refused),
            n_i8_violations=i8_count(),
            detail=detail,
        )

    def run(self) -> ChurnResult:
        """Run every trial: the adaptive leg always, the fixed-deadline
        leg when ``compare_fixed``."""
        plans = self.trial_plans()
        adaptive_counts: Counter = Counter()
        fixed_counts: Counter | None = (
            Counter() if self.compare_fixed else None
        )
        trials: list[tuple[ChurnTrial, ChurnTrial | None]] = []
        for plan in plans:
            a = self.run_one(plan, adaptive=True)
            adaptive_counts[a.outcome] += 1
            f = None
            if self.compare_fixed:
                f = self.run_one(plan, adaptive=False)
                fixed_counts[f.outcome] += 1
            trials.append((a, f))
        return ChurnResult(
            adaptive_counts=adaptive_counts,
            fixed_counts=fixed_counts,
            trials=tuple(trials),
            seed=self.seed,
            broadcasts=self.broadcasts,
        )
