"""Contention studies: concurrent MPB access (Figure 4) and the loaded
mesh link probe (Section 3.3).

Both experiments run in ``EXACT`` contention mode (per-cache-line port
arbitration) with a little core-overhead jitter so concurrent loops
desynchronise the way real cores do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

import numpy as np

from ..rcce import Comm
from ..scc import ContentionMode, SccChip, SccConfig, run_spmd
from ..scc.config import CACHE_LINE


@dataclass(frozen=True)
class ContentionResult:
    """Per-core mean completion times of one concurrency level."""

    op: str
    lines: int
    n_cores: int
    per_core_mean: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.per_core_mean))

    @property
    def fastest(self) -> float:
        return float(np.min(self.per_core_mean))

    @property
    def slowest(self) -> float:
        return float(np.max(self.per_core_mean))

    @property
    def spread(self) -> float:
        """Slowest over fastest core (the paper's unfairness measure)."""
        return self.slowest / self.fastest if self.fastest else float("inf")


def _contention_config(config: SccConfig | None) -> SccConfig:
    base = config or SccConfig()
    return base.with_(contention_mode=ContentionMode.EXACT, jitter=max(base.jitter, 0.02))


def concurrent_access(
    op: str,
    n_cores: int,
    lines: int,
    *,
    target_core: int = 0,
    config: SccConfig | None = None,
    iters: int = 20,
) -> ContentionResult:
    """``n_cores`` cores concurrently ``get`` from (or ``put`` 1-line
    values to) ``target_core``'s MPB, the Figure 4 experiment.

    Actors are the ``n_cores`` lowest-numbered cores other than the
    target; each runs ``iters`` back-to-back operations and reports its
    mean completion time.
    """
    if op not in ("get", "put"):
        raise ValueError("op must be 'get' or 'put'")
    if n_cores < 1:
        raise ValueError("n_cores must be >= 1")
    cfg = _contention_config(config)
    chip = SccChip(cfg)
    if n_cores >= chip.num_cores:
        raise ValueError(f"at most {chip.num_cores - 1} concurrent actors")
    comm = Comm(chip)
    region = comm.layout.alloc_lines(lines)
    actors = [c for c in range(chip.num_cores) if c != target_core][:n_cores]
    target_rank = comm.rank_of(target_core)
    per_core: dict[int, float] = {}
    nbytes = lines * CACHE_LINE

    def program(core) -> Generator:
        cc = comm.attach(core)
        times = []
        for _ in range(iters):
            t0 = chip.now
            if op == "get":
                yield from cc.get(target_rank, region.offset, region.offset, nbytes)
            else:
                # Parallel puts of many lines to one location are not a
                # realistic pattern (paper 3.3); callers pass lines=1.
                yield from cc.put(target_rank, region.offset, region.offset, nbytes)
            times.append(chip.now - t0)
        per_core[core.id] = float(np.mean(times))
        return None

    run_spmd(chip, program, core_ids=actors)
    return ContentionResult(
        op=op,
        lines=lines,
        n_cores=n_cores,
        per_core_mean=tuple(per_core[c] for c in actors),
    )


def contention_sweep(
    op: str,
    lines: int,
    counts: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 24, 32, 40, 47),
    *,
    config: SccConfig | None = None,
    iters: int = 20,
) -> list[ContentionResult]:
    """Figure 4's x-axis sweep."""
    return [
        concurrent_access(op, n, lines, config=config, iters=iters) for n in counts
    ]


@dataclass(frozen=True)
class LinkProbeResult:
    """Latency of the probe get with and without background load."""

    loaded: float
    unloaded: float

    @property
    def slowdown(self) -> float:
        return self.loaded / self.unloaded if self.unloaded else float("inf")


def mesh_link_probe(
    *,
    config: SccConfig | None = None,
    probe_iters: int = 10,
    loader_lines: int = 128,
) -> LinkProbeResult:
    """Section 3.3's mesh stress test: every core outside tiles (2,2) and
    (3,2) hammers gets of 128 lines across the (2,2)-(3,2) link (X-Y
    routing funnels row-2-bound traffic through it), while a probe core on
    (2,2) measures a get from (3,2)."""
    base = config or SccConfig()
    cfg = base.with_(
        contention_mode=ContentionMode.EXACT, model_links=True, jitter=0.02
    )
    if cfg.mesh_cols < 6 or cfg.mesh_rows < 3:
        raise ValueError("mesh link probe needs at least a 6x3 mesh")

    def run(with_load: bool) -> float:
        chip = SccChip(cfg)
        comm = Comm(chip)
        region = comm.layout.alloc_lines(loader_lines)
        mesh = chip.mesh
        probe_core = mesh.cores_of_tile((2, 2))[0]
        probe_src = mesh.cores_of_tile((3, 2))[0]
        left_src = mesh.cores_of_tile((0, 2))[0]
        right_src = mesh.cores_of_tile((5, 2))[0]
        excluded = set(mesh.cores_of_tile((2, 2))) | set(mesh.cores_of_tile((3, 2)))
        loaders = [c for c in range(chip.num_cores) if c not in excluded]
        probe_times: list[float] = []
        nbytes = loader_lines * CACHE_LINE

        def loader(core) -> Generator:
            cc = comm.attach(core)
            x = mesh.tile_of_core(core.id)[0]
            # Cross the chip: data from the opposite side of row 2 funnels
            # through the (2,2)-(3,2) link in one of the two directions.
            src = comm.rank_of(left_src if x >= 3 else right_src)
            while not probe_done[0]:
                yield from cc.get(src, region.offset, region.offset, nbytes)
            return None

        def probe(core) -> Generator:
            cc = comm.attach(core)
            src = comm.rank_of(probe_src)
            for _ in range(probe_iters):
                t0 = chip.now
                yield from cc.get(src, region.offset, region.offset, nbytes)
                probe_times.append(chip.now - t0)
            probe_done[0] = True
            return None

        probe_done = [False]
        if with_load:
            for c in loaders:
                chip.sim.process(loader(chip.cores[c]), name=f"loader{c}")
        run_spmd(chip, probe, core_ids=[probe_core])
        return float(np.mean(probe_times))

    return LinkProbeResult(loaded=run(True), unloaded=run(False))
