"""An MPI-flavoured facade over the collective stack.

The paper's Section 7 plans to "integrate [RMA collectives] in an MPI
library, so we can analyze the overall performance gain in parallel
applications".  This module is that integration layer: one object that
owns the MPB budget and picks algorithms the way RCCE_comm (and MPICH)
do -- by message size and by backend:

- ``backend="rma"`` -- OC-Bcast, OC-Reduce, OC-Barrier (the paper's
  designs, one MPB budget shared between them);
- ``backend="two_sided"`` -- RCCE_comm's binomial tree for small
  broadcasts, scatter-allgather for large ones, binomial reduce,
  dissemination barrier.

Usage::

    chip = SccChip()
    mpi = Mpi(Comm(chip), backend="rma")

    def program(core):
        rank = mpi.attach(core)
        buf = rank.alloc(4096)
        ...
        yield from rank.bcast(buf, 4096, root=0)
        yield from rank.barrier()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from .collectives import (
    BarrierState,
    ReduceOp,
    binomial_bcast,
    binomial_gather,
    binomial_reduce,
    dissemination_barrier,
    ring_allgather,
    scatter_allgather_bcast,
)
from .core import OcBarrier, OcBcast, OcBcastConfig, OcReduce, OsagBcast
from .rcce import Comm, CoreComm
from .scc.config import CACHE_LINE
from .scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from .scc.core import Core

BACKENDS = ("rma", "two_sided")

#: RCCE_comm-style switch point between the binomial tree and
#: scatter-allgather for two-sided broadcasts (cache lines).  Figure 8
#: puts the crossover in the few-hundred-line range.
SAG_THRESHOLD_LINES = 256


class Mpi:
    """A communicator-wide collective library instance.

    Owns all MPB allocations; construct exactly one per :class:`Comm`.
    """

    def __init__(
        self,
        comm: Comm,
        backend: str = "rma",
        *,
        k: int = 7,
        bcast_chunk_lines: int = 32,
        reduce_chunk_lines: int = 4,
        allgather_slice_lines: int = 16,
        p2p_payload_lines: int = 64,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.comm = comm
        self.backend = backend
        if backend == "rma":
            # One MPB hosts all four RMA engines PLUS a send/recv payload
            # for point-to-point traffic (halo exchanges and the like);
            # reserving it explicitly keeps p2p from being starved down
            # to a few lines by the engines.
            from .rcce.twosided import TwoSidedState

            comm._twosided = TwoSidedState(comm, payload_lines=p2p_payload_lines)
            self._bcast = OcBcast(
                comm, OcBcastConfig(k=k, chunk_lines=bcast_chunk_lines)
            )
            self._reduce = OcReduce(comm, k=k, chunk_lines=reduce_chunk_lines)
            self._barrier = OcBarrier(comm, k=k)
            self._allgather = OsagBcast(
                comm, slice_lines=allgather_slice_lines, enable_scatter=False
            )
        else:
            self._barrier_state = BarrierState(comm)
            comm.twosided  # allocate the send/recv state eagerly

    @property
    def size(self) -> int:
        return self.comm.size

    def attach(self, core: "Core") -> "MpiRank":
        return MpiRank(self, self.comm.attach(core))


class MpiRank:
    """Per-core view: the collective calls a rank's program makes."""

    def __init__(self, mpi: Mpi, cc: CoreComm) -> None:
        self.mpi = mpi
        self.cc = cc
        self.rank = cc.rank
        self.size = cc.size

    # -- memory & point-to-point (plain RCCE) ------------------------------

    def alloc(self, nbytes: int) -> MemRef:
        return self.cc.alloc(nbytes)

    def send(self, dst: int, buf: MemRef, nbytes: int) -> Generator:
        yield from self.cc.send(dst, buf, nbytes)

    def recv(self, src: int, buf: MemRef, nbytes: int) -> Generator:
        yield from self.cc.recv(src, buf, nbytes)

    def isend(self, dst: int, buf: MemRef, nbytes: int):
        """Post a non-blocking send (progress via :meth:`wait_all`)."""
        return self.cc.isend(dst, buf, nbytes)

    def irecv(self, src: int, buf: MemRef, nbytes: int):
        """Post a non-blocking receive (progress via :meth:`wait_all`)."""
        return self.cc.irecv(src, buf, nbytes)

    def wait_all(self, requests) -> Generator:
        yield from self.cc.wait_all(requests)

    # -- collectives ----------------------------------------------------------

    def bcast(self, buf: MemRef, nbytes: int, root: int = 0) -> Generator:
        """Broadcast; algorithm chosen by backend and message size."""
        mpi = self.mpi
        if mpi.backend == "rma":
            yield from mpi._bcast.bcast(self.cc, root, buf, nbytes)
        elif nbytes <= SAG_THRESHOLD_LINES * CACHE_LINE:
            yield from binomial_bcast(self.cc, root, buf, nbytes)
        else:
            yield from scatter_allgather_bcast(self.cc, root, buf, nbytes)

    def reduce(
        self,
        sendbuf: MemRef,
        recvbuf: MemRef,
        nbytes: int,
        op: ReduceOp,
        root: int = 0,
    ) -> Generator:
        """Reduce to ``root``; ``recvbuf`` is scratch on other ranks."""
        mpi = self.mpi
        if mpi.backend == "rma":
            yield from mpi._reduce.reduce(self.cc, root, sendbuf, recvbuf, nbytes, op)
        else:
            yield from binomial_reduce(self.cc, root, sendbuf, recvbuf, nbytes, op)

    def barrier(self) -> Generator:
        mpi = self.mpi
        if mpi.backend == "rma":
            yield from mpi._barrier.barrier(self.cc)
        else:
            yield from dissemination_barrier(self.cc, mpi._barrier_state)

    def gather(
        self, src: MemRef, dst: MemRef, block_bytes: int, root: int = 0
    ) -> Generator:
        """Tree gather (two-sided on either backend; blocks land by
        relative rank, see :func:`binomial_gather`)."""
        yield from binomial_gather(self.cc, root, src, dst, block_bytes)

    def allgather(self, src: MemRef, dst: MemRef, block_bytes: int) -> Generator:
        """Allgather: one-sided MPB-forwarding ring on the RMA backend,
        two-sided ring otherwise."""
        if self.mpi.backend == "rma":
            yield from self.mpi._allgather.allgather(self.cc, src, dst, block_bytes)
        else:
            yield from ring_allgather(self.cc, src, dst, block_bytes)

    def allreduce(
        self, sendbuf: MemRef, recvbuf: MemRef, nbytes: int, op: ReduceOp
    ) -> Generator:
        """Reduce to rank 0, then broadcast the result (the classic
        reduce+bcast composition; every rank ends with the result in
        ``recvbuf``)."""
        yield from self.reduce(sendbuf, recvbuf, nbytes, op, root=0)
        yield from self.bcast(recvbuf, nbytes, root=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MpiRank {self.rank}/{self.size} backend={self.mpi.backend}>"
