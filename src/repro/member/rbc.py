"""Bracha echo/ready reliable broadcast over the MPB vote slots.

The crash-surviving service (PRs 4-5) trusts every member to *report*
honestly: acked writes and CRC headers catch lost and corrupted bytes,
but a compromised core can stage two different payloads under two
perfectly valid headers (EQUIVOCATE), or vote whatever it likes in the
quorum rounds (FORGE_FLAG_VALUE / LIE_IN_QUORUM).  This module closes
that gap with Bracha-style reliable broadcast [Bracha 87] run *after*
OC-Bcast delivery, using payload digests as the value being agreed on:

1. **ECHO** -- each member folds the per-chunk CRCs it already verified
   during fetch into one *message digest* and pushes a single
   ``(v, digest)`` vote into every member's symmetric
   :class:`~repro.rcce.flags.DigestSlotArray` (single writer per slot).
   One vote per message -- not per chunk -- because a member's slot is a
   register: a second vote would overwrite the first before slow peers
   tally it.  The engine casts the vote the moment the member's own
   payload is verified, so the fan-out overlaps the done-chain ascent
   and the commit round the member would otherwise spend idle.  The
   first cast is optimistic (plain writes); a stalled quorum re-casts
   with acked writes (see :meth:`RbcService._cast`) -- together the two
   levers keep the fault-free tax under the campaign's 15% guard.
2. **Echo quorum** -- wait until some digest ``D`` holds an echo quorum
   in the member's own tally copy.  Two echo quorums on different
   digests would have to intersect in at least ``f+1`` members, i.e. at
   least one honest member voting twice -- impossible -- so at most one
   ``D`` can win globally.
3. **READY** -- vote ``(v, D)`` in every member's ready array.  A member
   whose echo wait timed out (split votes) instead *amplifies*: ``f+1``
   matching READY votes contain at least one honest voter, so adopting
   their digest is safe.
4. **Delivery gate** -- deliver only after ``2f+1`` READY votes on one
   digest.  A member whose local payload mismatches the agreed digest
   re-fetches the still-MPB-resident chunks (the last ``num_buffers``)
   from an ECHO voter of that digest -- an echo vote asserts "my own
   payload digests to D", so its buffers hold the winning bytes -- and
   re-verifies the whole message before accepting.  If no digest ever
   reaches the gate, or the divergent chunk is no longer staged
   anywhere, the member *refuses* delivery (``"detected"``) -- with more
   than ``f`` adversaries the protocol degrades to detection, never
   divergence.

Quorum sizes (:func:`echo_quorum`, :func:`ready_quorum`,
:func:`ready_amplify`) require ``n >= 3f+1``; at exactly ``n = 3f+1``
the echo quorum is the classic ``2f+1``.

The single-writer slot discipline is the substrate's trust base: a
Byzantine core can write arbitrary values *in its own slots* -- a
different forged digest per member is allowed and modelled -- but cannot
overwrite another member's vote, just as a real SCC core cannot forge
the source of an MPB write it does not issue.

Agreement and validity are audited online as invariant I7 over the
``rbc.outcome`` trace records (:mod:`repro.obs.invariants`).
"""

from __future__ import annotations

import random
import zlib
from typing import TYPE_CHECKING, Generator

from ..faults.plan import FaultKind
from ..rcce.flags import DigestSlotArray
from ..scc.config import CACHE_LINE
from ..scc.memory import MemRef
from ..sim.errors import TimeoutError as SimTimeoutError
from .heartbeat import TTD_BOUNDS

if TYPE_CHECKING:  # pragma: no cover
    from ..core.ocbcast import OcBcast, OcBcastConfig
    from ..rcce.comm import Comm, CoreComm

#: XOR mask a LIE_IN_QUORUM adversary applies to the true digest: a
#: well-formed, consistent, wrong vote.
_LIE_MASK = 0x5A5A5A5A


def max_faulty(n: int) -> int:
    """The largest adversary count ``f`` with ``n >= 3f+1``."""
    if n < 1:
        raise ValueError(f"need at least one member, got {n}")
    return (n - 1) // 3


def echo_quorum(n: int) -> int:
    """Votes needed to win the ECHO round: ``ceil((n+f+1)/2)``.

    Any two echo quorums intersect in ``>= f+1`` members, hence in at
    least one honest member -- who votes once -- so two different
    digests can never both reach quorum.  At ``n = 3f+1`` this is the
    classic ``2f+1``.
    """
    f = max_faulty(n)
    return max(2 * f + 1, (n + f + 2) // 2)


def ready_amplify(n: int) -> int:
    """READY votes that prove at least one honest member saw an echo
    quorum: ``f+1`` (at most ``f`` can be lying)."""
    return max_faulty(n) + 1


def ready_quorum(n: int) -> int:
    """READY votes gating delivery: ``2f+1``, of which ``>= f+1`` are
    honest -- enough that every other honest member will eventually
    amplify past ``f+1`` and the group cannot split."""
    return 2 * max_faulty(n) + 1


class RbcService:
    """The per-communicator RBC state: two symmetric vote arrays and the
    per-rank round bookkeeping.  Constructed by
    :class:`~repro.member.service.OcBcastService` when ``byz=True``."""

    def __init__(self, comm: "Comm", oc: "OcBcast", config: "OcBcastConfig") -> None:
        n = comm.size
        self.comm = comm
        self.oc = oc
        self.config = config
        self.f = max_faulty(n)
        self.n_echo = echo_quorum(n)
        self.n_amplify = ready_amplify(n)
        self.n_ready = ready_quorum(n)
        lines = DigestSlotArray.lines_needed(n)
        self.echo = DigestSlotArray(
            comm.layout.alloc_lines(lines), n, name="rbc.echo"
        )
        self.ready = DigestSlotArray(
            comm.layout.alloc_lines(lines), n, name="rbc.ready"
        )
        #: Per-rank next vote sequence (advances by one per broadcast
        #: attempt, so a retried attempt opens a fresh round).
        self._next = [0] * n
        #: Per-rank in-flight attempt: (buf, nbytes, nchunks, vote seq).
        self._pending: dict[int, tuple[MemRef, int, int, int]] = {}
        #: Per-rank adversary spec drawn at echo time (drives the ready
        #: phase of the same rounds).
        self._spec: dict[int, object] = {}

    # -- registration and the engine's echo hook ---------------------------

    def register(self, rank: int, buf: MemRef, nbytes: int) -> None:
        """Open the vote round for one broadcast attempt of ``rank``.
        Called by the service right before ``oc.bcast``; the engine's
        pre-commit hook then finds the payload to digest here."""
        nchunks = max(1, -(-nbytes // self.config.chunk_bytes))
        self._next[rank] += 1
        self._pending[rank] = (buf, nbytes, nchunks, self._next[rank])

    def _message_digest(self, buf: MemRef, nbytes: int) -> int:
        """The value under agreement: crc32 over the whole delivered
        payload.  Free of an extra pass in a real implementation -- it
        folds the per-chunk CRCs the member already computed while
        verifying each fetch."""
        return zlib.crc32(buf.sub(0, nbytes).read())

    def _vote_digest(self, spec, member: int, v: int, true_digest: int) -> int:
        """The digest this rank actually writes into ``member``'s tally:
        the truth for honest ranks, a consistent lie for LIE_IN_QUORUM,
        per-member garbage (vote equivocation) for FORGE_FLAG_VALUE."""
        if spec is None or spec.kind is FaultKind.EQUIVOCATE:
            return true_digest
        if spec.kind is FaultKind.LIE_IN_QUORUM:
            return (true_digest ^ _LIE_MASK) & 0xFFFFFFFF
        rng = random.Random(spec.core * 1_000_003 + spec.nth * 8191 + v * 31 + member)
        return rng.getrandbits(32)

    def cast_echoes(self, cc: "CoreComm") -> Generator:
        """The engine's pre-commit hook: push this rank's ECHO vote for
        the in-flight attempt's message digest into every member's echo
        array.  Runs while the commit notification is still propagating,
        so most of its cost hides under the commit wait."""
        entry = self._pending.get(cc.rank)
        if entry is None:
            return
        buf, nbytes, nchunks, v = entry
        spec = cc.quorum_vote()
        self._spec[cc.rank] = spec
        d = self._message_digest(buf, nbytes)
        cc.trace(
            "rbc.echo", v=v,
            digest=self._vote_digest(spec, cc.rank, v, d) if spec else d,
        )
        yield from self._cast(cc, self.echo, v, d, spec)
        cc.metric_inc("rbc.rounds")

    def _cast(
        self, cc: "CoreComm", array: DigestSlotArray, v: int, digest: int,
        spec, acked: bool = False,
    ) -> Generator:
        """Push this rank's vote into every member's copy of ``array``.

        The first cast is *optimistic* (plain writes): on this substrate
        a store is lost only when a fault fires, so the fault-free path
        skips the per-write readback that would put two full acked
        all-to-all rounds on the critical path.  When a quorum stalls,
        the waiter re-casts with ``acked=True`` -- readback-verified,
        bounded re-send -- before giving up, so dropped-write faults
        still cannot wedge a round silently.
        """
        for member in range(cc.size):
            vote = self._vote_digest(spec, member, v, digest)
            if acked:
                yield from cc.vote_write_acked(
                    array, member, cc.rank, v, vote,
                    max_retries=self.config.ft_max_retries,
                    policy=self.config.vote_retry,
                )
            else:
                yield from cc.vote_write(array, member, cc.rank, v, vote)

    # -- the post-delivery rounds -------------------------------------------

    def finish(
        self, cc: "CoreComm", msg: int, buf: MemRef, nbytes: int, source: int
    ) -> Generator[object, object, str]:
        """Run the echo-quorum / ready / delivery-gate round for the
        attempt; returns ``"ok"`` (payload agreed, local copy verified
        -- possibly after a re-fetch) or ``"detected"`` (no quorum:
        refuse delivery).  Emits the ``rbc.outcome`` record invariant I7
        audits either way."""
        buf_, nbytes_, nchunks, v = self._pending.pop(cc.rank)
        spec = self._spec.pop(cc.rank, None)
        ok = yield from self._round(cc, buf, nbytes, v, spec, nchunks)
        status = "ok" if ok else "detected"
        detail: dict = dict(msg=msg, status=status, src=int(cc.rank == source))
        if cc.tracer_enabled:
            if status == "ok":
                detail["crc"] = zlib.crc32(buf.sub(0, nbytes).read())
            if cc.rank == source:
                detail["input_crc"] = zlib.crc32(buf.sub(0, nbytes).read())
        cc.trace("rbc.outcome", **detail)
        if status != "ok":
            self._observe_detection(cc)
            cc.metric_inc("rbc.refusals")
        return status

    def _round(
        self,
        cc: "CoreComm",
        buf: MemRef,
        nbytes: int,
        v: int,
        spec,
        nchunks: int,
    ) -> Generator[object, object, bool]:
        """The message's quorum rounds; returns True when a digest is
        agreed and the local copy matches it."""
        cfg = self.config
        # Echo quorum (the echoes themselves went out pre-commit).
        try:
            agreed = yield from cc.vote_wait_quorum(
                self.echo, v, self.n_echo,
                timeout=cfg.byz_echo_timeout, site="rbc.echo.quorum",
            )
        except SimTimeoutError:
            # Split echo round: amplify from f+1 READY votes instead.
            try:
                agreed = yield from cc.vote_wait_quorum(
                    self.ready, v, self.n_amplify,
                    timeout=cfg.byz_ready_timeout, site="rbc.ready.amplify",
                )
                cc.trace("rbc.amplify", v=v, digest=agreed)
            except SimTimeoutError:
                cc.trace("rbc.no_quorum", v=v, phase="echo")
                return False
        # READY round: vote the agreed digest everywhere (adversaries
        # keep misvoting per their spec).
        yield from self._cast(cc, self.ready, v, agreed, spec)
        # Delivery gate: 2f+1 READY votes on one digest.  The first
        # budget also covers members still amplifying their way here; a
        # stall after it gets one acked re-cast (recovering this rank's
        # possibly-dropped optimistic votes) and a final budget.
        final = None
        for attempt in range(2):
            try:
                final = yield from cc.vote_wait_quorum(
                    self.ready, v, self.n_ready,
                    timeout=cfg.byz_echo_timeout + cfg.byz_ready_timeout,
                    site="rbc.ready.gate",
                )
                break
            except SimTimeoutError:
                if attempt:
                    cc.trace("rbc.no_quorum", v=v, phase="ready")
                    return False
                yield from self._cast(cc, self.ready, v, agreed, spec, acked=True)
        assert final is not None
        if final != self._message_digest(buf, nbytes):
            return (
                yield from self._refetch(cc, buf, nbytes, v, final, nchunks)
            )
        return True

    # -- divergent-payload repair -------------------------------------------

    def _refetch(
        self,
        cc: "CoreComm",
        buf: MemRef,
        nbytes: int,
        v: int,
        agreed: int,
        nchunks: int,
    ) -> Generator[object, object, bool]:
        """The local payload mismatches the agreed digest (this member
        sat on the losing side of an equivocation): re-fetch the chunks
        still MPB-resident at an ECHO voter of the agreed digest -- an
        echo asserts "my own payload digests to D", so that voter's
        buffers hold the winning bytes -- and re-verify the whole
        message.

        Only the last ``num_buffers`` chunks are still staged; if the
        divergence sits in an earlier chunk the re-verify fails for
        every holder and the member refuses delivery instead (detected,
        not divergent).
        """
        cfg = self.config
        self._observe_detection(cc)
        candidates = [
            m for m in range(cc.size)
            if m != cc.rank
            and cc.vote_peek(self.echo, m) == (v, agreed)
        ]
        first_staged = max(0, nchunks - cfg.num_buffers)
        for holder in candidates[: cfg.byz_refetch_retries + 1]:
            for idx in range(first_staged, nchunks):
                b = idx % cfg.num_buffers
                off = idx * cfg.chunk_bytes
                span = min(cfg.chunk_bytes, nbytes - off)
                yield from cc.get(
                    holder, self.oc._payload_off(b), buf.sub(off, span), span
                )
                yield from cc.compute(
                    cfg.integrity_crc_us_per_line * -(-span // CACHE_LINE)
                )
            if self._message_digest(buf, nbytes) == agreed:
                cc.trace("rbc.refetch", v=v, holder=holder)
                cc.metric_inc("rbc.refetches")
                cc.note_recovery(
                    f"rbc.msg{v}@core{cc.core_id}",
                    note=f"re-fetched from rank {holder}",
                )
                return True
        cc.trace("rbc.refetch_failed", v=v)
        return False

    # -- telemetry ----------------------------------------------------------

    def _observe_detection(self, cc: "CoreComm") -> None:
        """Time-to-detect: first injected adversary action -> this member
        notices its payload (or the whole round) cannot be trusted."""
        t0 = cc.first_fault_time()
        if t0 is not None and cc.now >= t0:
            cc.observe_histogram("rbc.ttd_us", TTD_BOUNDS, cc.now - t0)
