"""Heartbeat-based membership with epoch-stamped views.

The SCC gives us no failure detector: a crashed core simply stops
writing its MPB flags, and the paper's protocol spins forever on it.
This module builds the minimal group-membership machinery the
crash-surviving broadcast service needs, out of the same MPB primitives
the broadcast itself uses:

- **Heartbeats** -- every member owns one slot in a
  :class:`repro.rcce.flags.FlagSlotArray` replicated in the *root's*
  MPB.  A heartbeat is an acked slot write (readback-verified, bounded
  re-send), so a silently dropped heartbeat cannot masquerade as a
  crash.  Slot values are ``2 * round + ok_bit``: monotonic in the
  recovery round, with one payload bit reporting whether the member
  delivered the broadcast that triggered the round.
- **Suspicion** -- the root collects heartbeats under one shared poll
  budget (``hb_timeout``); members whose slot never reaches the round's
  floor are *suspected* and dropped from the next view.  A poll budget,
  not a clock: the simulated SCC has no synchronised time source, and a
  budget is exactly what :func:`wait_at_least` already implements.
- **Epoch-stamped views** -- a view is ``(epoch, members)``.  The root
  installs a new view by staging its membership bitmap in its own MPB,
  then performing an *acked* flag write (``tag=epoch, seq=round``) to
  every informed member -- including the suspects, so a falsely accused
  live core learns of its eviction instead of hanging.  Members adopt
  the view by pulling the bitmap with a one-sided read when the epoch
  advances.  Acked writes make view installation reliable against
  dropped flags; a member that stays unreachable is simply suspected
  again next round.

The MPB cost is small: ``ceil(P/16)`` lines of heartbeat slots, one
view-flag line and ``ceil(ceil(P/8)/32)`` bitmap lines -- 5 lines for
the full 48-core chip, on top of OC-Bcast's 202-line service footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable

from ..rcce.flags import FlagSlotArray, FlagValue
from ..scc.config import CACHE_LINE
from ..sim.errors import TimeoutError as SimTimeoutError

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: Histogram buckets (microseconds) for time-to-detect / time-to-repair.
TTD_BOUNDS = (100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0)


@dataclass(frozen=True)
class MembershipConfig:
    """Tuning knobs of the membership service."""

    #: Root's shared poll budget (us) for collecting one round of
    #: heartbeats; a member silent past it is suspected.
    hb_timeout: float = 6000.0
    #: Member's poll budget (us) for the view flag after reporting.
    #: Must exceed ``hb_timeout`` -- the root only installs the view
    #: after its collect finishes.
    view_timeout: float = 9000.0
    #: Re-send bound for acked heartbeat / view-flag writes.
    hb_max_retries: int = 3
    #: Service-level bound on re-broadcast attempts per message.
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.hb_timeout <= 0 or self.view_timeout <= 0:
            raise ValueError("membership timeouts must be > 0")
        if self.view_timeout <= self.hb_timeout:
            raise ValueError(
                "view_timeout must exceed hb_timeout (the view is only "
                "installed after the root's collect finishes)"
            )
        if self.hb_max_retries < 0:
            raise ValueError("hb_max_retries must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class MembershipView:
    """One epoch of group membership: who is believed alive."""

    epoch: int
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        members = tuple(sorted(self.members))
        if not members:
            raise ValueError("a view needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate ranks in view")
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0")
        object.__setattr__(self, "members", members)

    @classmethod
    def full(cls, size: int) -> "MembershipView":
        """Epoch 0: everybody."""
        return cls(0, tuple(range(size)))

    def __contains__(self, rank: int) -> bool:
        return rank in self.members

    def without(self, suspects: Iterable[int]) -> "MembershipView":
        """The successor view with ``suspects`` evicted (epoch + 1)."""
        gone = set(suspects)
        kept = tuple(m for m in self.members if m not in gone)
        return MembershipView(self.epoch + 1, kept)

    # -- wire format -------------------------------------------------------

    def bitmap(self, size: int) -> bytes:
        """Little-endian membership bitmap (bit ``r`` set = rank r in)."""
        n = 0
        for m in self.members:
            if not 0 <= m < size:
                raise ValueError(f"member {m} outside 0..{size - 1}")
            n |= 1 << m
        return n.to_bytes(-(-size // 8), "little")

    @classmethod
    def from_bitmap(cls, epoch: int, raw: bytes, size: int) -> "MembershipView":
        n = int.from_bytes(raw, "little")
        return cls(epoch, tuple(r for r in range(size) if n >> r & 1))


class MembershipService:
    """Heartbeats, suspicion and view agreement for one communicator.

    Construction allocates the MPB state symmetrically (every core's
    layout advances identically, as with every other region).  Views are
    tracked per rank (``views[rank]``), because each SPMD program learns
    of an epoch change at its own simulated time.
    """

    def __init__(
        self,
        comm: "Comm",
        root: int = 0,
        config: MembershipConfig | None = None,
    ) -> None:
        self.comm = comm
        self.config = config or MembershipConfig()
        if not 0 <= root < comm.size:
            raise ValueError(f"root {root} outside 0..{comm.size - 1}")
        self.root = root
        size = comm.size
        self.hb = FlagSlotArray(
            comm.layout.alloc_lines(FlagSlotArray.lines_needed(size)),
            size,
            name="member.hb",
        )
        self.view_flag = comm.flag("member.view")
        bitmap_bytes = -(-size // 8)
        self.bitmap_region = comm.layout.alloc_lines(
            -(-bitmap_bytes // CACHE_LINE)
        )
        self.views: list[MembershipView] = [
            MembershipView.full(size) for _ in range(size)
        ]

    # -- member side -------------------------------------------------------

    def report(
        self, cc: "CoreComm", round_no: int, ok: bool
    ) -> Generator:
        """Send this round's heartbeat to the root (acked slot write).

        ``ok`` reports whether the member delivered the payload of the
        broadcast attempt that triggered the round.
        """
        value = 2 * round_no + (1 if ok else 0)
        cc.chip.trace(
            f"rank{cc.rank}", "member.hb", round=round_no, ok=ok
        )
        yield from self.hb.write_acked(
            cc.core,
            self.comm.core_of(self.root),
            cc.rank,
            value,
            max_retries=self.config.hb_max_retries,
        )

    def await_view(self, cc: "CoreComm", round_no: int) -> Generator[
        object, object, MembershipView
    ]:
        """Wait for the root to install round ``round_no``'s view; adopt
        it (pulling the bitmap on an epoch change) and return it.

        Raises :class:`repro.sim.TimeoutError` when the view never
        arrives within ``view_timeout`` -- the root itself is gone, which
        membership does not mask.
        """
        vals = yield from cc.wait_flags(
            [self.view_flag],
            lambda v, r=round_no: v[0].seq >= r,
            timeout=self.config.view_timeout,
            site="member.view",
        )
        epoch = vals[0].tag
        current = self.views[cc.rank]
        if epoch != current.epoch:
            raw = yield from cc.get_bytes(
                self.root, self.bitmap_region.offset, -(-cc.size // 8)
            )
            view = MembershipView.from_bitmap(epoch, raw, cc.size)
            self.views[cc.rank] = view
            cc.chip.trace(
                f"rank{cc.rank}", "member.view_adopt",
                epoch=epoch, members=len(view.members),
                evicted=cc.rank not in view,
            )
        return self.views[cc.rank]

    def evict_self(self, rank: int) -> None:
        """Local bookkeeping for a member that lost contact with the root
        after delivering: it leaves the group on its own account (the
        root's next collect will suspect it anyway)."""
        self.views[rank] = self.views[rank].without((rank,))

    # -- root side ---------------------------------------------------------

    def collect(self, cc: "CoreComm", round_no: int) -> Generator[
        object, object, tuple[dict[int, bool], list[int]]
    ]:
        """Collect round ``round_no``'s heartbeats under one shared
        ``hb_timeout`` budget; returns ``(statuses, suspects)`` where
        statuses maps each responsive member to its delivered bit.
        """
        cfg = self.config
        view = self.views[cc.rank]
        floor = 2 * round_no
        deadline = cc.core.sim.now + cfg.hb_timeout
        statuses: dict[int, bool] = {}
        suspects: list[int] = []
        for m in view.members:
            if m == self.root:
                continue
            remaining = max(0.0, deadline - cc.core.sim.now)
            try:
                got = yield from self.hb.wait_at_least(
                    cc.core, m, floor, timeout=remaining
                )
                statuses[m] = bool(got & 1)
            except SimTimeoutError:
                suspects.append(m)
                cc.chip.trace(
                    f"rank{cc.rank}", "member.suspect",
                    member=m, round=round_no,
                )
                if cc.chip.metrics is not None:
                    cc.chip.metrics.inc("member.suspected")
        return statuses, suspects

    def install(
        self, cc: "CoreComm", view: MembershipView, round_no: int
    ) -> Generator[object, object, list[int]]:
        """Install ``view`` as round ``round_no``'s outcome: stage the
        bitmap (locally verified), then acked view-flag writes to every
        member of the *previous* view -- suspects included, so a falsely
        accused live core learns of its eviction.  Returns the members
        whose view flag could not be acked (unreachable: they will be
        suspected again next round).
        """
        cfg = self.config
        inform = [m for m in self.views[cc.rank].members if m != self.root]
        self.views[cc.rank] = view
        if view.epoch and cc.chip.metrics is not None:
            cc.chip.metrics.set("member.epoch", float(view.epoch))
        cc.chip.trace(
            f"rank{cc.rank}", "member.view_install",
            epoch=view.epoch, round=round_no, members=len(view.members),
        )
        payload = view.bitmap(cc.size).ljust(self.bitmap_region.nbytes, b"\0")
        yield from self._stage_bitmap(cc, payload)
        unreachable: list[int] = []
        for m in inform:
            try:
                yield from cc.flag_set_acked(
                    m,
                    self.view_flag,
                    FlagValue(tag=view.epoch, seq=round_no),
                    max_retries=cfg.hb_max_retries,
                )
            except SimTimeoutError:
                unreachable.append(m)
                cc.chip.trace(
                    f"rank{cc.rank}", "member.install_unreachable", member=m
                )
        return unreachable

    def _stage_bitmap(self, cc: "CoreComm", payload: bytes) -> Generator:
        """Write the bitmap into the root's own MPB and verify the local
        deposit (even local protocol writes can be faulted)."""
        off = self.bitmap_region.offset
        for attempt in range(self.config.hb_max_retries + 1):
            yield from cc.put_bytes(cc.rank, off, payload)
            raw = cc.chip.mpbs[cc.core.id].read_bytes(off, len(payload))
            if raw == payload:
                if attempt and cc.chip.faults is not None:
                    cc.chip.faults.note_recovery(
                        f"member.bitmap@core{cc.core.id}",
                        note=f"re-staged x{attempt}",
                    )
                return
        raise SimTimeoutError(
            f"core {cc.core.id}: membership bitmap failed to stage after "
            f"{self.config.hb_max_retries + 1} attempts at "
            f"t={cc.core.sim.now:.4f}",
            process=f"core{cc.core.id}",
            sim_time=cc.core.sim.now,
            site="member.bitmap",
        )
