"""Heartbeat-based membership with epoch-stamped views.

The SCC gives us no failure detector: a crashed core simply stops
writing its MPB flags, and the paper's protocol spins forever on it.
This module builds the minimal group-membership machinery the
crash-surviving broadcast service needs, out of the same MPB primitives
the broadcast itself uses:

- **Heartbeats** -- every member owns one slot in a
  :class:`repro.rcce.flags.FlagSlotArray` replicated in the *root's*
  MPB.  A heartbeat is an acked slot write (readback-verified, bounded
  re-send), so a silently dropped heartbeat cannot masquerade as a
  crash.  Slot values are ``2 * round + ok_bit``: monotonic in the
  recovery round, with one payload bit reporting whether the member
  delivered the broadcast that triggered the round.
- **Suspicion** -- the root collects heartbeats under one shared poll
  budget (``hb_timeout``); members whose slot never reaches the round's
  floor are *suspected* and dropped from the next view.  A poll budget,
  not a clock: the simulated SCC has no synchronised time source, and a
  budget is exactly what :func:`wait_at_least` already implements.
- **Epoch-stamped views** -- a view is ``(epoch, members)``.  The
  *coordinator* (the static root until a failover; thereafter whoever
  won the election, see :mod:`repro.member.election`) installs a new
  view by staging its membership bitmap -- plus a 4-byte *completion
  directive* for the in-flight message -- in its own MPB, then
  performing an *acked* flag write to every informed member, suspects
  included, so a falsely accused live core learns of its eviction
  instead of hanging.  The flag's tag packs ``epoch * 256 +
  coordinator``, which is both the epoch handoff (members learn the new
  coordinator and re-home their heartbeats to its MPB) and the fence
  against the old epoch: a stale write from a deposed coordinator
  decodes to a non-advancing epoch and is never adopted.  Members adopt
  the view by pulling the bitmap from the *installer* with a one-sided
  read when the epoch advances.

The MPB cost is small: ``ceil(P/16)`` lines of heartbeat slots, one
view-flag line and ``ceil((ceil(P/8)+4)/32)`` bitmap+directive lines --
5 lines for the full 48-core chip, on top of OC-Bcast's 202-line
service footprint.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable

from ..rcce.flags import FlagSlotArray, FlagValue
from ..resilience.detector import DetectorConfig, PhiAccrualDetector
from ..resilience.policy import RetryPolicy, plan_delays
from ..scc.config import CACHE_LINE
from ..sim.errors import TimeoutError as SimTimeoutError

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: Histogram buckets (microseconds) for time-to-detect / time-to-repair
#: (and time-to-elect, which shares the scale).
TTD_BOUNDS = (100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0)

#: The view-flag tag packs ``epoch * _TAG_BASE + coordinator_rank`` --
#: one acked flag write carries both the epoch bump and the handoff.
_TAG_BASE = 256

#: Completion-directive codes (what the coordinator decided about the
#: message that was in flight when the view changed).
DIRECTIVE_NONE = 0
DIRECTIVE_REBROADCAST = 1
DIRECTIVE_ABORT = 2

_DIRECTIVE = struct.Struct("<BBH")  # code, source, round

#: Staged beside the directive: the installer's OC sequence-window base
#: after the failed attempt.  Only *lagging* adopters (view-flag seq
#: beyond the round they are recovering) pull it -- it is how a member
#: that missed whole broadcast windows rejoins with its sequence
#: numbering in lockstep (see ``OcBcastService._fast_forward``).
_WINDOW = struct.Struct("<I")


@dataclass(frozen=True)
class CompletionDirective:
    """The coordinator's verdict on the in-flight message, piggybacked
    on the view install: re-broadcast from a fully-delivered survivor
    (``DIRECTIVE_REBROADCAST``, ``source`` holds the payload) or
    uniformly abort (``DIRECTIVE_ABORT``).  ``round_no`` stamps the
    recovery round the verdict belongs to -- a member only applies a
    directive for the round it is currently recovering."""

    code: int
    source: int
    round_no: int

    def __post_init__(self) -> None:
        if self.code not in (DIRECTIVE_NONE, DIRECTIVE_REBROADCAST, DIRECTIVE_ABORT):
            raise ValueError(f"unknown directive code {self.code}")
        if not 0 <= self.source < _TAG_BASE:
            raise ValueError(f"directive source {self.source} out of range")
        if self.round_no < 0:
            raise ValueError("directive round must be >= 0")

    def encode(self) -> bytes:
        return _DIRECTIVE.pack(self.code, self.source, self.round_no)

    @classmethod
    def decode(cls, raw: bytes) -> "CompletionDirective":
        code, source, round_no = _DIRECTIVE.unpack_from(raw)
        return cls(code, source, round_no)


NO_DIRECTIVE = CompletionDirective(DIRECTIVE_NONE, 0, 0)


@dataclass(frozen=True)
class MembershipConfig:
    """Tuning knobs of the membership service."""

    #: Root's shared poll budget (us) for collecting one round of
    #: heartbeats; a member silent past it is suspected.
    hb_timeout: float = 6000.0
    #: Member's poll budget (us) for the view flag after reporting.
    #: Must exceed ``hb_timeout`` -- the root only installs the view
    #: after its collect finishes.
    view_timeout: float = 9000.0
    #: Re-send bound for acked heartbeat / view-flag writes.
    hb_max_retries: int = 3
    #: Service-level bound on re-broadcast attempts per message.
    max_attempts: int = 5
    #: Expected spacing (us) between successive heartbeat solicitations
    #: (recovery rounds).  Only used by the timing-coherence check:
    #: the suspicion window must exceed one period plus the worst-case
    #: heartbeat ack retry time, or a member pacing its re-sends can be
    #: suspected while still inside its own legal retry schedule.
    #: ``0.0`` (the default) models purely event-driven rounds.
    hb_period: float = 0.0
    #: Adaptive phi-accrual suspicion (``None`` keeps the fixed shared
    #: ``hb_timeout`` deadline -- the bit-identical legacy behaviour).
    detector: DetectorConfig | None = None
    #: Pacing for acked heartbeat slot writes (``None`` = immediate).
    hb_retry: RetryPolicy | None = None
    #: Pacing for view-install flag writes and bitmap staging.
    view_retry: RetryPolicy | None = None
    #: Per-message recovery budget for the broadcast service: after
    #: this many failed attempts the service REFUSES deterministically
    #: (raises :class:`repro.resilience.OverloadError`) instead of
    #: burning the remaining ``max_attempts``.  ``0`` disables.
    retry_budget: int = 0

    def __post_init__(self) -> None:
        if self.hb_timeout <= 0 or self.view_timeout <= 0:
            raise ValueError("membership timeouts must be > 0")
        if self.view_timeout <= self.hb_timeout:
            raise ValueError(
                "view_timeout must exceed hb_timeout (the view is only "
                "installed after the root's collect finishes)"
            )
        if self.hb_max_retries < 0:
            raise ValueError("hb_max_retries must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.hb_period < 0:
            raise ValueError("hb_period must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        # Timing coherence: a member re-sending its heartbeat under the
        # declared retry policy is *not* silent -- the suspicion window
        # must be long enough to see the last legal re-send, or every
        # paced retry schedule turns into a false eviction.
        ack_worst = self.hb_retry.max_total_pause() if self.hb_retry else 0.0
        if self.hb_timeout <= self.hb_period + ack_worst:
            raise ValueError(
                f"incoherent membership timing: the suspicion window "
                f"(hb_timeout={self.hb_timeout:g} us) must exceed one "
                f"heartbeat period ({self.hb_period:g} us) plus the "
                f"worst-case heartbeat ack retry time ({ack_worst:g} us "
                f"from hb_retry); raise hb_timeout or trim hb_retry's "
                f"backoff schedule"
            )


@dataclass(frozen=True)
class MembershipView:
    """One epoch of group membership: who is believed alive."""

    epoch: int
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        members = tuple(sorted(self.members))
        if not members:
            raise ValueError("a view needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate ranks in view")
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0")
        object.__setattr__(self, "members", members)

    @classmethod
    def full(cls, size: int) -> "MembershipView":
        """Epoch 0: everybody."""
        return cls(0, tuple(range(size)))

    def __contains__(self, rank: int) -> bool:
        return rank in self.members

    def without(self, suspects: Iterable[int]) -> "MembershipView":
        """The successor view with ``suspects`` evicted (epoch + 1)."""
        gone = set(suspects)
        kept = tuple(m for m in self.members if m not in gone)
        return MembershipView(self.epoch + 1, kept)

    # -- wire format -------------------------------------------------------

    def bitmap(self, size: int) -> bytes:
        """Little-endian membership bitmap (bit ``r`` set = rank r in)."""
        n = 0
        for m in self.members:
            if not 0 <= m < size:
                raise ValueError(f"member {m} outside 0..{size - 1}")
            n |= 1 << m
        return n.to_bytes(-(-size // 8), "little")

    @classmethod
    def from_bitmap(cls, epoch: int, raw: bytes, size: int) -> "MembershipView":
        n = int.from_bytes(raw, "little")
        return cls(epoch, tuple(r for r in range(size) if n >> r & 1))


class MembershipService:
    """Heartbeats, suspicion and view agreement for one communicator.

    Construction allocates the MPB state symmetrically (every core's
    layout advances identically, as with every other region).  Views are
    tracked per rank (``views[rank]``), because each SPMD program learns
    of an epoch change at its own simulated time.
    """

    def __init__(
        self,
        comm: "Comm",
        root: int = 0,
        config: MembershipConfig | None = None,
    ) -> None:
        self.comm = comm
        self.config = config or MembershipConfig()
        if not 0 <= root < comm.size:
            raise ValueError(f"root {root} outside 0..{comm.size - 1}")
        self.root = root
        size = comm.size
        self.hb = FlagSlotArray(
            comm.layout.alloc_lines(FlagSlotArray.lines_needed(size)),
            size,
            name="member.hb",
        )
        self.view_flag = comm.flag("member.view")
        bitmap_bytes = -(-size // 8)
        self.bitmap_region = comm.layout.alloc_lines(
            -(-(bitmap_bytes + _DIRECTIVE.size + _WINDOW.size) // CACHE_LINE)
        )
        self.views: list[MembershipView] = [
            MembershipView.full(size) for _ in range(size)
        ]
        #: Per-rank belief about who coordinates membership rounds.
        #: Starts at the static root; re-pointed by every view adopt /
        #: install (the epoch handoff).
        self.coord: list[int] = [root] * size
        #: Per-rank copy of the last adopted completion directive.
        self.directives: list[CompletionDirective] = [NO_DIRECTIVE] * size
        #: Per-rank round number of the last view install this rank
        #: observed (the view-flag seq when adopting; the installer's
        #: own round when installing).  The service layer compares it
        #: against the round a member is recovering to detect that the
        #: group has moved past it (see ``OcBcastService._recover``).
        self.view_rounds: list[int] = [0] * size
        #: Per-rank copy of the installer's sequence-window base, pulled
        #: only by lagging adopters (see ``_WINDOW``).
        self.window_hints: list[int] = [0] * size
        #: Per-collecting-rank phi-accrual detector state (lazy: only
        #: ranks that actually coordinate rounds grow one).  The service
        #: object is shared across the SPMD ranks, so detector state --
        #: like views/coord/directives -- must be per rank.
        self._detectors: dict[int, PhiAccrualDetector] = {}

    def detector_for(self, rank: int) -> PhiAccrualDetector | None:
        """The collecting rank's detector (``None`` when disabled)."""
        if self.config.detector is None:
            return None
        det = self._detectors.get(rank)
        if det is None:
            det = self._detectors[rank] = PhiAccrualDetector(self.config.detector)
        return det

    # -- member side -------------------------------------------------------

    def report(
        self, cc: "CoreComm", round_no: int, ok: bool, to: int | None = None
    ) -> Generator:
        """Send this round's heartbeat to the coordinator (acked slot
        write).  ``to`` overrides the target -- a member that just
        followed an election re-reports to the winner, whose own MPB
        copy of the slot array is where the new coordinator collects
        (the heartbeat array is symmetric, so re-homing it is just a
        change of write target).

        ``ok`` reports whether the member delivered the payload of the
        broadcast attempt that triggered the round.
        """
        target = to if to is not None else self.coord[cc.rank]
        value = 2 * round_no + (1 if ok else 0)
        cc.trace("member.hb", round=round_no, ok=ok, to=target)
        yield from cc.slot_write_acked(
            self.hb,
            target,
            cc.rank,
            value,
            max_retries=self.config.hb_max_retries,
            policy=self.config.hb_retry,
        )

    def await_view(self, cc: "CoreComm", round_no: int) -> Generator[
        object, object, MembershipView
    ]:
        """Wait for the coordinator to install round ``round_no``'s
        view; adopt it (pulling the bitmap and completion directive from
        the *installer* on an epoch change) and return it.

        Raises :class:`repro.sim.TimeoutError` when the view never
        arrives within ``view_timeout`` -- the coordinator itself is
        gone, which the service layer answers with an election.
        """
        vals = yield from cc.wait_flags(
            [self.view_flag],
            lambda v, r=round_no: v[0].seq >= r,
            timeout=self.config.view_timeout,
            site="member.view",
        )
        epoch, installer = divmod(vals[0].tag, _TAG_BASE)
        self.view_rounds[cc.rank] = vals[0].seq
        # A flag seq past the round we are recovering means the group
        # ran (at least) one whole recovery round without us: pull the
        # installer's window hint too, so the service can re-align our
        # sequence numbering (the extra bytes are read only on this lag
        # path -- the in-step adopt is byte-for-byte the legacy one).
        lagging = vals[0].seq > round_no
        current = self.views[cc.rank]
        if epoch != current.epoch or lagging:
            bitmap_bytes = -(-cc.size // 8)
            span = bitmap_bytes + _DIRECTIVE.size
            if lagging:
                span += _WINDOW.size
            raw = yield from cc.get_bytes(
                installer, self.bitmap_region.offset, span
            )
            if epoch != current.epoch:
                view = MembershipView.from_bitmap(
                    epoch, raw[:bitmap_bytes], cc.size
                )
                self.views[cc.rank] = view
                self.coord[cc.rank] = installer
                self.directives[cc.rank] = CompletionDirective.decode(
                    raw[bitmap_bytes:]
                )
                cc.trace(
                    "member.view_adopt",
                    epoch=epoch, coord=installer, members=len(view.members),
                    evicted=cc.rank not in view,
                )
            if lagging:
                self.window_hints[cc.rank] = _WINDOW.unpack_from(
                    raw, bitmap_bytes + _DIRECTIVE.size
                )[0]
        return self.views[cc.rank]

    def evict_self(self, rank: int) -> None:
        """Local bookkeeping for a member that lost contact with the
        coordinator after delivering: it leaves the group on its own
        account (the coordinator's next collect will suspect it
        anyway)."""
        self.views[rank] = self.views[rank].without((rank,))

    # -- coordinator side --------------------------------------------------

    def collect(self, cc: "CoreComm", round_no: int) -> Generator[
        object, object, tuple[dict[int, bool], list[int]]
    ]:
        """Collect round ``round_no``'s heartbeats under one shared
        ``hb_timeout`` budget; returns ``(statuses, suspects)`` where
        statuses maps each responsive member to its delivered bit.

        Reads the *collector's own* MPB copy of the slot array, so any
        member can collect -- the freshly elected coordinator included.

        With ``config.detector`` set, the shared fixed deadline is
        replaced by a per-member *adaptive* one: the phi-accrual
        detector's history of this member's past response delays
        (relative to collect start) yields the silence duration at
        which phi crosses the threshold.  Observed congestion widens
        the window; a quiet mesh tightens it toward the floor.  The
        decision trace (``member.suspect``) is unchanged either way.
        """
        cfg = self.config
        view = self.views[cc.rank]
        floor = 2 * round_no
        start = cc.now
        det = self.detector_for(cc.rank)
        deadline = start + cfg.hb_timeout
        statuses: dict[int, bool] = {}
        suspects: list[int] = []
        for m in view.members:
            if m == cc.rank:
                continue
            if det is not None:
                bound = det.timeout(m, fallback=cfg.hb_timeout)
                cc.observe_histogram(
                    "resilience.phi_timeout_us", TTD_BOUNDS, bound
                )
                remaining = max(0.0, start + bound - cc.now)
            else:
                remaining = max(0.0, deadline - cc.now)
            try:
                got = yield from cc.slot_wait_at_least(
                    self.hb, m, floor, timeout=remaining
                )
                statuses[m] = bool(got & 1)
                if det is not None:
                    delay = cc.now - start
                    det.observe(m, delay)
                    cc.observe_histogram(
                        "resilience.hb_delay_us", TTD_BOUNDS, delay
                    )
            except SimTimeoutError:
                if det is not None and round_no >= 2:
                    # Adaptive lag grace: a slot sitting exactly one
                    # round behind is not silence -- the member reported
                    # the *previous* round and is blocked in its own
                    # recovery (e.g. an orphan whose commit notification
                    # died with its parent), waiting for a view install
                    # that this very round will deliver.  Leave it in
                    # the view; the install fast-forwards it back into
                    # step (see OcBcastService._recover).  A genuinely
                    # dead member's slot never advances, so it is still
                    # suspected one round later.
                    try:
                        lag = yield from cc.slot_wait_at_least(
                            self.hb, m, floor - 2, timeout=0.0
                        )
                    except SimTimeoutError:
                        lag = None
                    if lag is not None:
                        cc.trace(
                            "resilience.lagging",
                            member=m, round=round_no, slot=lag,
                        )
                        cc.metric_inc("resilience.lagging")
                        continue
                suspects.append(m)
                if det is not None:
                    # Not a decision record (kind outside DECISION_KINDS):
                    # phi history differs across backends, decisions must
                    # not.
                    cc.trace(
                        "resilience.suspect",
                        member=m, round=round_no, timeout=bound,
                        samples=len(det.samples(m)),
                    )
                    cc.metric_inc("resilience.suspects")
                    det.forget(m)
                cc.trace("member.suspect", member=m, round=round_no)
                cc.metric_inc("member.suspected")
        return statuses, suspects

    def install(
        self,
        cc: "CoreComm",
        view: MembershipView,
        round_no: int,
        decision: CompletionDirective | None = None,
        window: int = 0,
    ) -> Generator[object, object, list[int]]:
        """Install ``view`` as round ``round_no``'s outcome: stage the
        bitmap plus the completion ``decision`` (locally verified), then
        acked view-flag writes to every member of the *previous* view --
        suspects included, so a falsely accused live core learns of its
        eviction.  The flag tag packs ``epoch * 256 + installer``, which
        is the epoch handoff: adopters re-home their heartbeats to the
        installer.  Returns the members whose view flag could not be
        acked (unreachable: they will be suspected again next round).
        """
        cfg = self.config
        directive = decision or NO_DIRECTIVE
        inform = [m for m in self.views[cc.rank].members if m != cc.rank]
        self.views[cc.rank] = view
        self.coord[cc.rank] = cc.rank
        self.directives[cc.rank] = directive
        self.view_rounds[cc.rank] = round_no
        self.window_hints[cc.rank] = window
        if view.epoch:
            cc.metric_set("member.epoch", float(view.epoch))
        cc.trace(
            "member.view_install",
            epoch=view.epoch, round=round_no, members=len(view.members),
            directive=directive.code,
        )
        evicted = len([m for m in inform if m not in view]) + (
            0 if cc.rank in view else 1
        )
        if evicted:
            cc.metric_inc("resilience.evictions", evicted)
        payload = (
            view.bitmap(cc.size) + directive.encode() + _WINDOW.pack(window)
        ).ljust(self.bitmap_region.nbytes, b"\0")
        yield from self._stage_bitmap(cc, payload)
        unreachable: list[int] = []
        for m in inform:
            try:
                yield from cc.flag_set_acked(
                    m,
                    self.view_flag,
                    FlagValue(tag=view.epoch * _TAG_BASE + cc.rank, seq=round_no),
                    max_retries=cfg.hb_max_retries,
                    policy=cfg.view_retry,
                )
            except SimTimeoutError:
                unreachable.append(m)
                cc.trace("member.install_unreachable", member=m)
        return unreachable

    def _stage_bitmap(self, cc: "CoreComm", payload: bytes) -> Generator:
        """Write the bitmap into the root's own MPB and verify the local
        deposit (even local protocol writes can be faulted)."""
        off = self.bitmap_region.offset
        delays = plan_delays(
            self.config.view_retry, cc.rank, "member.bitmap",
            self.config.hb_max_retries,
        )
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                yield from cc.compute(delays[attempt - 1])
            yield from cc.put_bytes(cc.rank, off, payload)
            raw = cc.read_local(off, len(payload))
            if raw == payload:
                if attempt:
                    cc.note_recovery(
                        f"member.bitmap@core{cc.core_id}",
                        note=f"re-staged x{attempt}",
                    )
                return
        raise SimTimeoutError(
            f"core {cc.core_id}: membership bitmap failed to stage after "
            f"{len(delays) + 1} attempts at "
            f"t={cc.now:.4f}",
            process=f"core{cc.core_id}",
            sim_time=cc.now,
            site="member.bitmap",
        )
