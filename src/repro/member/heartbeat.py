"""Heartbeat-based membership with epoch-stamped views.

The SCC gives us no failure detector: a crashed core simply stops
writing its MPB flags, and the paper's protocol spins forever on it.
This module builds the minimal group-membership machinery the
crash-surviving broadcast service needs, out of the same MPB primitives
the broadcast itself uses:

- **Heartbeats** -- every member owns one slot in a
  :class:`repro.rcce.flags.FlagSlotArray` replicated in the *root's*
  MPB.  A heartbeat is an acked slot write (readback-verified, bounded
  re-send), so a silently dropped heartbeat cannot masquerade as a
  crash.  Slot values are ``2 * round + ok_bit``: monotonic in the
  recovery round, with one payload bit reporting whether the member
  delivered the broadcast that triggered the round.
- **Suspicion** -- the root collects heartbeats under one shared poll
  budget (``hb_timeout``); members whose slot never reaches the round's
  floor are *suspected* and dropped from the next view.  A poll budget,
  not a clock: the simulated SCC has no synchronised time source, and a
  budget is exactly what :func:`wait_at_least` already implements.
- **Epoch-stamped views** -- a view is ``(epoch, members)``.  The
  *coordinator* (the static root until a failover; thereafter whoever
  won the election, see :mod:`repro.member.election`) installs a new
  view by staging its membership bitmap -- plus a 4-byte *completion
  directive* for the in-flight message -- in its own MPB, then
  performing an *acked* flag write to every informed member, suspects
  included, so a falsely accused live core learns of its eviction
  instead of hanging.  The flag's tag packs ``epoch * 256 +
  coordinator``, which is both the epoch handoff (members learn the new
  coordinator and re-home their heartbeats to its MPB) and the fence
  against the old epoch: a stale write from a deposed coordinator
  decodes to a non-advancing epoch and is never adopted.  Members adopt
  the view by pulling the bitmap from the *installer* with a one-sided
  read when the epoch advances.

The MPB cost is small: ``ceil(P/16)`` lines of heartbeat slots, one
view-flag line and ``ceil((ceil(P/8)+4)/32)`` bitmap+directive lines --
5 lines for the full 48-core chip, on top of OC-Bcast's 202-line
service footprint.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable

from ..rcce.flags import FlagSlotArray, FlagValue
from ..scc.config import CACHE_LINE
from ..sim.errors import TimeoutError as SimTimeoutError

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: Histogram buckets (microseconds) for time-to-detect / time-to-repair
#: (and time-to-elect, which shares the scale).
TTD_BOUNDS = (100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0)

#: The view-flag tag packs ``epoch * _TAG_BASE + coordinator_rank`` --
#: one acked flag write carries both the epoch bump and the handoff.
_TAG_BASE = 256

#: Completion-directive codes (what the coordinator decided about the
#: message that was in flight when the view changed).
DIRECTIVE_NONE = 0
DIRECTIVE_REBROADCAST = 1
DIRECTIVE_ABORT = 2

_DIRECTIVE = struct.Struct("<BBH")  # code, source, round


@dataclass(frozen=True)
class CompletionDirective:
    """The coordinator's verdict on the in-flight message, piggybacked
    on the view install: re-broadcast from a fully-delivered survivor
    (``DIRECTIVE_REBROADCAST``, ``source`` holds the payload) or
    uniformly abort (``DIRECTIVE_ABORT``).  ``round_no`` stamps the
    recovery round the verdict belongs to -- a member only applies a
    directive for the round it is currently recovering."""

    code: int
    source: int
    round_no: int

    def __post_init__(self) -> None:
        if self.code not in (DIRECTIVE_NONE, DIRECTIVE_REBROADCAST, DIRECTIVE_ABORT):
            raise ValueError(f"unknown directive code {self.code}")
        if not 0 <= self.source < _TAG_BASE:
            raise ValueError(f"directive source {self.source} out of range")
        if self.round_no < 0:
            raise ValueError("directive round must be >= 0")

    def encode(self) -> bytes:
        return _DIRECTIVE.pack(self.code, self.source, self.round_no)

    @classmethod
    def decode(cls, raw: bytes) -> "CompletionDirective":
        code, source, round_no = _DIRECTIVE.unpack_from(raw)
        return cls(code, source, round_no)


NO_DIRECTIVE = CompletionDirective(DIRECTIVE_NONE, 0, 0)


@dataclass(frozen=True)
class MembershipConfig:
    """Tuning knobs of the membership service."""

    #: Root's shared poll budget (us) for collecting one round of
    #: heartbeats; a member silent past it is suspected.
    hb_timeout: float = 6000.0
    #: Member's poll budget (us) for the view flag after reporting.
    #: Must exceed ``hb_timeout`` -- the root only installs the view
    #: after its collect finishes.
    view_timeout: float = 9000.0
    #: Re-send bound for acked heartbeat / view-flag writes.
    hb_max_retries: int = 3
    #: Service-level bound on re-broadcast attempts per message.
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.hb_timeout <= 0 or self.view_timeout <= 0:
            raise ValueError("membership timeouts must be > 0")
        if self.view_timeout <= self.hb_timeout:
            raise ValueError(
                "view_timeout must exceed hb_timeout (the view is only "
                "installed after the root's collect finishes)"
            )
        if self.hb_max_retries < 0:
            raise ValueError("hb_max_retries must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class MembershipView:
    """One epoch of group membership: who is believed alive."""

    epoch: int
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        members = tuple(sorted(self.members))
        if not members:
            raise ValueError("a view needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate ranks in view")
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0")
        object.__setattr__(self, "members", members)

    @classmethod
    def full(cls, size: int) -> "MembershipView":
        """Epoch 0: everybody."""
        return cls(0, tuple(range(size)))

    def __contains__(self, rank: int) -> bool:
        return rank in self.members

    def without(self, suspects: Iterable[int]) -> "MembershipView":
        """The successor view with ``suspects`` evicted (epoch + 1)."""
        gone = set(suspects)
        kept = tuple(m for m in self.members if m not in gone)
        return MembershipView(self.epoch + 1, kept)

    # -- wire format -------------------------------------------------------

    def bitmap(self, size: int) -> bytes:
        """Little-endian membership bitmap (bit ``r`` set = rank r in)."""
        n = 0
        for m in self.members:
            if not 0 <= m < size:
                raise ValueError(f"member {m} outside 0..{size - 1}")
            n |= 1 << m
        return n.to_bytes(-(-size // 8), "little")

    @classmethod
    def from_bitmap(cls, epoch: int, raw: bytes, size: int) -> "MembershipView":
        n = int.from_bytes(raw, "little")
        return cls(epoch, tuple(r for r in range(size) if n >> r & 1))


class MembershipService:
    """Heartbeats, suspicion and view agreement for one communicator.

    Construction allocates the MPB state symmetrically (every core's
    layout advances identically, as with every other region).  Views are
    tracked per rank (``views[rank]``), because each SPMD program learns
    of an epoch change at its own simulated time.
    """

    def __init__(
        self,
        comm: "Comm",
        root: int = 0,
        config: MembershipConfig | None = None,
    ) -> None:
        self.comm = comm
        self.config = config or MembershipConfig()
        if not 0 <= root < comm.size:
            raise ValueError(f"root {root} outside 0..{comm.size - 1}")
        self.root = root
        size = comm.size
        self.hb = FlagSlotArray(
            comm.layout.alloc_lines(FlagSlotArray.lines_needed(size)),
            size,
            name="member.hb",
        )
        self.view_flag = comm.flag("member.view")
        bitmap_bytes = -(-size // 8)
        self.bitmap_region = comm.layout.alloc_lines(
            -(-(bitmap_bytes + _DIRECTIVE.size) // CACHE_LINE)
        )
        self.views: list[MembershipView] = [
            MembershipView.full(size) for _ in range(size)
        ]
        #: Per-rank belief about who coordinates membership rounds.
        #: Starts at the static root; re-pointed by every view adopt /
        #: install (the epoch handoff).
        self.coord: list[int] = [root] * size
        #: Per-rank copy of the last adopted completion directive.
        self.directives: list[CompletionDirective] = [NO_DIRECTIVE] * size

    # -- member side -------------------------------------------------------

    def report(
        self, cc: "CoreComm", round_no: int, ok: bool, to: int | None = None
    ) -> Generator:
        """Send this round's heartbeat to the coordinator (acked slot
        write).  ``to`` overrides the target -- a member that just
        followed an election re-reports to the winner, whose own MPB
        copy of the slot array is where the new coordinator collects
        (the heartbeat array is symmetric, so re-homing it is just a
        change of write target).

        ``ok`` reports whether the member delivered the payload of the
        broadcast attempt that triggered the round.
        """
        target = to if to is not None else self.coord[cc.rank]
        value = 2 * round_no + (1 if ok else 0)
        cc.trace("member.hb", round=round_no, ok=ok, to=target)
        yield from cc.slot_write_acked(
            self.hb,
            target,
            cc.rank,
            value,
            max_retries=self.config.hb_max_retries,
        )

    def await_view(self, cc: "CoreComm", round_no: int) -> Generator[
        object, object, MembershipView
    ]:
        """Wait for the coordinator to install round ``round_no``'s
        view; adopt it (pulling the bitmap and completion directive from
        the *installer* on an epoch change) and return it.

        Raises :class:`repro.sim.TimeoutError` when the view never
        arrives within ``view_timeout`` -- the coordinator itself is
        gone, which the service layer answers with an election.
        """
        vals = yield from cc.wait_flags(
            [self.view_flag],
            lambda v, r=round_no: v[0].seq >= r,
            timeout=self.config.view_timeout,
            site="member.view",
        )
        epoch, installer = divmod(vals[0].tag, _TAG_BASE)
        current = self.views[cc.rank]
        if epoch != current.epoch:
            bitmap_bytes = -(-cc.size // 8)
            raw = yield from cc.get_bytes(
                installer,
                self.bitmap_region.offset,
                bitmap_bytes + _DIRECTIVE.size,
            )
            view = MembershipView.from_bitmap(epoch, raw[:bitmap_bytes], cc.size)
            self.views[cc.rank] = view
            self.coord[cc.rank] = installer
            self.directives[cc.rank] = CompletionDirective.decode(
                raw[bitmap_bytes:]
            )
            cc.trace(
                "member.view_adopt",
                epoch=epoch, coord=installer, members=len(view.members),
                evicted=cc.rank not in view,
            )
        return self.views[cc.rank]

    def evict_self(self, rank: int) -> None:
        """Local bookkeeping for a member that lost contact with the
        coordinator after delivering: it leaves the group on its own
        account (the coordinator's next collect will suspect it
        anyway)."""
        self.views[rank] = self.views[rank].without((rank,))

    # -- coordinator side --------------------------------------------------

    def collect(self, cc: "CoreComm", round_no: int) -> Generator[
        object, object, tuple[dict[int, bool], list[int]]
    ]:
        """Collect round ``round_no``'s heartbeats under one shared
        ``hb_timeout`` budget; returns ``(statuses, suspects)`` where
        statuses maps each responsive member to its delivered bit.

        Reads the *collector's own* MPB copy of the slot array, so any
        member can collect -- the freshly elected coordinator included.
        """
        cfg = self.config
        view = self.views[cc.rank]
        floor = 2 * round_no
        deadline = cc.now + cfg.hb_timeout
        statuses: dict[int, bool] = {}
        suspects: list[int] = []
        for m in view.members:
            if m == cc.rank:
                continue
            remaining = max(0.0, deadline - cc.now)
            try:
                got = yield from cc.slot_wait_at_least(
                    self.hb, m, floor, timeout=remaining
                )
                statuses[m] = bool(got & 1)
            except SimTimeoutError:
                suspects.append(m)
                cc.trace("member.suspect", member=m, round=round_no)
                cc.metric_inc("member.suspected")
        return statuses, suspects

    def install(
        self,
        cc: "CoreComm",
        view: MembershipView,
        round_no: int,
        decision: CompletionDirective | None = None,
    ) -> Generator[object, object, list[int]]:
        """Install ``view`` as round ``round_no``'s outcome: stage the
        bitmap plus the completion ``decision`` (locally verified), then
        acked view-flag writes to every member of the *previous* view --
        suspects included, so a falsely accused live core learns of its
        eviction.  The flag tag packs ``epoch * 256 + installer``, which
        is the epoch handoff: adopters re-home their heartbeats to the
        installer.  Returns the members whose view flag could not be
        acked (unreachable: they will be suspected again next round).
        """
        cfg = self.config
        directive = decision or NO_DIRECTIVE
        inform = [m for m in self.views[cc.rank].members if m != cc.rank]
        self.views[cc.rank] = view
        self.coord[cc.rank] = cc.rank
        self.directives[cc.rank] = directive
        if view.epoch:
            cc.metric_set("member.epoch", float(view.epoch))
        cc.trace(
            "member.view_install",
            epoch=view.epoch, round=round_no, members=len(view.members),
            directive=directive.code,
        )
        payload = (view.bitmap(cc.size) + directive.encode()).ljust(
            self.bitmap_region.nbytes, b"\0"
        )
        yield from self._stage_bitmap(cc, payload)
        unreachable: list[int] = []
        for m in inform:
            try:
                yield from cc.flag_set_acked(
                    m,
                    self.view_flag,
                    FlagValue(tag=view.epoch * _TAG_BASE + cc.rank, seq=round_no),
                    max_retries=cfg.hb_max_retries,
                )
            except SimTimeoutError:
                unreachable.append(m)
                cc.trace("member.install_unreachable", member=m)
        return unreachable

    def _stage_bitmap(self, cc: "CoreComm", payload: bytes) -> Generator:
        """Write the bitmap into the root's own MPB and verify the local
        deposit (even local protocol writes can be faulted)."""
        off = self.bitmap_region.offset
        for attempt in range(self.config.hb_max_retries + 1):
            yield from cc.put_bytes(cc.rank, off, payload)
            raw = cc.read_local(off, len(payload))
            if raw == payload:
                if attempt:
                    cc.note_recovery(
                        f"member.bitmap@core{cc.core_id}",
                        note=f"re-staged x{attempt}",
                    )
                return
        raise SimTimeoutError(
            f"core {cc.core_id}: membership bitmap failed to stage after "
            f"{self.config.hb_max_retries + 1} attempts at "
            f"t={cc.now:.4f}",
            process=f"core{cc.core_id}",
            sim_time=cc.now,
            site="member.bitmap",
        )
