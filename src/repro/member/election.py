"""Deterministic ranked-succession leader election over MPB flag slots.

When the coordinator of the broadcast service crashes, the survivors
must agree on a successor using nothing but the SCC's one-sided RMA
into on-chip MPBs -- the same substrate the broadcast itself runs on.
The protocol here is *ranked succession*: the lowest live rank of the
last installed view wins.  Liveness comes from staggered claim budgets;
safety (no two coordinators installing the same epoch) from claim
fencing on the slot array every member can read locally.

Mechanics:

- Every member owns one slot of a symmetric
  :class:`repro.rcce.flags.FlagSlotArray` (``member.claim``).  A
  *claim* is an acked write of the current recovery round number into
  the claimant's own slot **in every view member's MPB** -- so each
  core can follow the election by polling its own MPB copy, and a
  deposed-but-alive coordinator can *see* that an election happened
  (step-down fencing, :meth:`ElectionService.check_claims`).  Round
  numbers are monotonic per service instance and each round maps to
  exactly one target epoch, so a claim doubles as an epoch-stamped
  fence: stale claims from earlier rounds are simply ``< round`` and
  ignored.
- Candidates (view members minus the caller's suspects) are ordered by
  rank.  Candidate ``i`` grants the ``i`` lower-ranked candidates a
  head start of ``claim_step * i`` microseconds (plus a small seeded,
  deterministic jitter) before claiming itself; a claim from a lower
  candidate observed within the budget makes it a *follower*.
- Because members enter the election at slightly different simulated
  times (their broadcast attempts fail at different tree depths), a
  raw "first claim wins" would livelock or split.  Two counter-skew
  measures: a claimant re-checks the lower slots once after a
  ``settle`` window and yields to any lower claim that raced it; a
  follower also waits out ``settle`` after the first claim it sees and
  then follows the *lowest* claimant, not the first.

The winner returns from :meth:`elect` believing itself coordinator; it
must then run the membership round (collect, decide, install) -- that
is the service layer's job, as is re-checking the claim slots right
before installing (a lower-ranked late entrant may still be ahead).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable

from ..rcce.flags import FlagSlotArray
from ..resilience.policy import RetryPolicy
from ..sim.errors import TimeoutError as SimTimeoutError

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm
    from .heartbeat import MembershipService


@dataclass(frozen=True)
class ElectionConfig:
    """Tuning knobs of the ranked-succession election."""

    #: Head start (us) each lower-ranked candidate is granted before
    #: this one claims.  Must exceed the worst-case skew between two
    #: members' entries into the same election (bounded by the spread
    #: of their broadcast-attempt failure times).
    claim_step: float = 2500.0
    #: Settle window (us) after seeing or stamping a claim, absorbing
    #: in-flight claims from racing candidates before committing to a
    #: leader.
    settle: float = 1000.0
    #: Upper bound (us) of the seeded per-candidate jitter added to the
    #: claim budget, de-synchronising same-index retries.
    jitter_max: float = 200.0
    #: Re-send bound for acked claim writes.
    max_retries: int = 3
    #: Pacing for acked claim re-casts (``None`` = immediate re-send).
    claim_retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.claim_step <= 0 or self.settle <= 0:
            raise ValueError("election budgets must be > 0")
        if self.jitter_max < 0:
            raise ValueError("jitter_max must be >= 0")
        if self.jitter_max >= self.claim_step:
            raise ValueError(
                "jitter_max must stay below claim_step (the rank order "
                "of the budgets is the protocol's tie-breaker)"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


class ElectionService:
    """Ranked-succession election for one communicator.

    Construction allocates the claim slot array symmetrically (one
    16-bit slot per rank -- 3 extra MPB lines on the 48-core chip).
    One instance per :class:`~repro.member.heartbeat.MembershipService`;
    the candidate set is always derived from the *last installed view*,
    so all members run the election over the same roster.
    """

    def __init__(
        self,
        comm: "Comm",
        member: "MembershipService",
        config: ElectionConfig | None = None,
    ) -> None:
        self.comm = comm
        self.member = member
        self.config = config or ElectionConfig()
        self.claims = FlagSlotArray(
            comm.layout.alloc_lines(FlagSlotArray.lines_needed(comm.size)),
            comm.size,
            name="member.claim",
        )

    # ------------------------------------------------------------------

    def _jitter(self, cc: "CoreComm", round_no: int) -> float:
        """Deterministic per-(round, rank) jitter -- seeded, no wall
        clock, so traces stay replayable."""
        rng = random.Random(round_no * 1009 + cc.rank)
        return rng.uniform(0.0, self.config.jitter_max)

    def _read_claim(self, cc: "CoreComm", rank: int) -> int:
        """Untimed read of this core's own copy of ``rank``'s claim
        (the timed poll cost is charged by the callers)."""
        return cc.slot_peek(self.claims, rank)

    def _lowest_claimant(
        self, cc: "CoreComm", candidates: Iterable[int], floor: int
    ) -> int | None:
        """Lowest-ranked candidate whose claim (in this core's own MPB
        copy) has reached ``floor``."""
        for r in sorted(candidates):
            if self._read_claim(cc, r) >= floor:
                return r
        return None

    def _stamp(self, cc: "CoreComm", round_no: int, members: Iterable[int]) -> Generator:
        """Write this rank's claim into every view member's MPB (acked;
        unreachable members are skipped -- they cannot follow anyway)."""
        cc.trace("member.claim", round=round_no)
        cc.metric_inc("member.claims")
        for m in sorted(members):
            try:
                yield from cc.slot_write_acked(
                    self.claims,
                    m,
                    cc.rank,
                    round_no,
                    max_retries=self.config.max_retries,
                    policy=self.config.claim_retry,
                )
            except SimTimeoutError:
                cc.trace("member.claim_unreachable", member=m)

    def check_claims(
        self, cc: "CoreComm", round_no: int, *, below: int | None = None
    ) -> Generator[object, object, int | None]:
        """Step-down fence: sweep this core's own claim copies and
        return the lowest rank other than the caller's with a claim at
        or past ``round_no`` (restricted to ranks ``< below`` when
        given), or ``None``.

        A standing coordinator calls this before collecting (any rival
        claim means the members gave up on it); a freshly elected
        winner calls it before installing, looking only *below* itself
        (a lower-ranked late entrant outranks it by succession order).
        """
        view = self.member.views[cc.rank]
        nscan = len(view.members)
        yield from cc.compute(nscan * cc.t_poll)
        for r in sorted(view.members):
            if r == cc.rank or (below is not None and r >= below):
                continue
            if self._read_claim(cc, r) >= round_no:
                return r
        return None

    # ------------------------------------------------------------------

    def elect(
        self, cc: "CoreComm", round_no: int, suspects: Iterable[int]
    ) -> Generator[object, object, int]:
        """Run one election for recovery round ``round_no``; returns
        the rank this member believes won (possibly its own).

        ``suspects`` are ranks the caller has given up on (at least the
        unresponsive coordinator); their claims are ignored, which is
        what keeps a *dead winner's* stale claim from being followed
        forever on re-election within the same round.
        """
        cfg = self.config
        view = self.member.views[cc.rank]
        gone = set(suspects)
        candidates = [m for m in view.members if m not in gone]
        if cc.rank not in candidates:
            raise ValueError(
                f"rank {cc.rank} cannot run an election it is not a "
                f"candidate of (view epoch {view.epoch})"
            )
        index = candidates.index(cc.rank)
        cc.trace(
            "member.elect.begin",
            round=round_no, epoch=view.epoch, index=index,
            candidates=len(candidates),
        )
        lower = candidates[:index]
        if lower:
            budget = cfg.claim_step * index + self._jitter(cc, round_no)
            try:
                yield from cc.slot_wait_any_at_least(
                    self.claims, lower, round_no,
                    timeout=budget, site="member.claim",
                )
                # A lower candidate claimed: absorb racing claims, then
                # follow the lowest claimant standing.
                yield from cc.compute(cfg.settle)
                winner = self._lowest_claimant(cc, lower, round_no)
                assert winner is not None  # claims are monotonic
                cc.trace(
                    "member.elect.follow",
                    round=round_no, winner=winner,
                )
                return winner
            except SimTimeoutError:
                pass  # budget spent: the lower candidates are gone too
        yield from self._stamp(cc, round_no, view.members)
        yield from cc.compute(cfg.settle)
        rival = self._lowest_claimant(cc, lower, round_no)
        if rival is not None:
            # A lower-ranked candidate raced us inside the settle
            # window: succession order wins, we yield.
            cc.trace(
                "member.elect.yield",
                round=round_no, winner=rival,
            )
            return rival
        cc.trace(
            "member.elect.won",
            round=round_no, epoch=view.epoch,
        )
        cc.metric_inc("member.elections")
        return cc.rank
