"""OcBcastService: the crash-surviving broadcast service.

Wraps an FT OC-Bcast engine (service mode: NACK done-chain + commit
notification, payload integrity on) in a retry loop driven by the
membership service:

1.  Broadcast over the current view's survivor tree
    (:meth:`repro.core.trees.MemberTree.survivors`).  A rank outside the
    view returns ``"evicted"`` without touching the MPB.
2.  On commit ``"ok"`` every live member has verified the payload --
    done (no heartbeat round on the fault-free path).
3.  On failure (commit ``"retry"``, an ``"undecided"`` commit, or a
    local timeout from an orphaned subtree) a *recovery round* runs:
    members report heartbeats carrying their delivered bit, the
    coordinator suspects the silent ones, installs the next epoch's
    view, and the loop re-broadcasts the message over the shrunken
    tree.  Suspected-but-alive cores learn of their eviction from the
    view flag and return ``"evicted"``.

Coordinator vs. source
----------------------
The *coordinator* (who collects heartbeats and installs views) and the
*broadcast source* (whose buffer is staged) are separate roles.  Both
start at the static root, but when the coordinator crashes the members
elect a successor by ranked succession (:mod:`repro.member.election`)
and the epoch is handed off: the winner re-installs a bumped-epoch view
whose flag tag names it, members re-home their heartbeats to its MPB,
and stale writes from the old epoch are fenced by the epoch-stamped
view flag and round-stamped claims.

Source-crash message completion
-------------------------------
When the *source* dies mid-message the group must not split into
deliverers and discarders.  Members that hold the complete verified
payload (commit ``"ok"``/``"retry"``/``"undecided"`` -- the integrity
layer guarantees a holder's bytes match the source's) report their
delivered bit; the coordinator counts those votes and piggybacks a
:class:`~repro.member.heartbeat.CompletionDirective` on the view
install: *re-broadcast* from the lowest-ranked fully-delivered survivor
(who becomes the new source, peer-to-peer over the survivor tree), or
-- when nobody holds the payload -- a *uniform abort*, every live
member returning ``"aborted"``.  Either way all live members decide
alike: that is uniform agreement, checked as invariant I6 over the
``svc.outcome`` trace records (:mod:`repro.obs.invariants`).

Fail-stop caveat: like every timeout-based protocol, suspicion here is
eventually-accurate only for *crashed* cores.  A live core that stalls
past ``view_timeout`` (a long pause, a partition that heals late) is
treated as dead: it is evicted, and if it had already delivered and
exits before the verdict its outcome is recorded as non-decisive
(``self_evicted``) rather than breaking agreement among the members
that stayed.

Time-to-detect (first injected fault -> coordinator suspects it),
time-to-repair (first injected fault -> successful commit) and
time-to-elect (first injected fault -> election won) are recorded into
``member.ttd_us`` / ``member.ttr_us`` / ``member.tte_us`` histograms on
the chip's metrics registry when both an injector and a registry are
attached.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import TYPE_CHECKING, Generator

from ..core.ocbcast import OcBcast, OcBcastConfig
from ..core.trees import MemberTree
from ..resilience.policy import OverloadError
from ..scc.memory import MemRef
from ..sim.errors import TimeoutError as SimTimeoutError
from .election import ElectionConfig, ElectionService
from .rbc import RbcService
from .heartbeat import (
    DIRECTIVE_ABORT,
    DIRECTIVE_REBROADCAST,
    TTD_BOUNDS,
    CompletionDirective,
    MembershipConfig,
    MembershipService,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: Service-mode OC-Bcast defaults: tighter FT budgets than the
#: standalone FT engine, because the membership layer (not the
#: broadcast) owns end-to-end recovery -- a failed attempt should fail
#: fast and hand over.
DEFAULT_SERVICE_OC = OcBcastConfig(
    ft=True,
    service=True,
    integrity=True,
    ft_flag_timeout=300.0,
    ft_notify_timeout=2500.0,
)

#: Sentinel for the self-eviction exit of a recovery round.
_SELF_EVICT = object()


class OcBcastService:
    """An epoch-aware, crash-surviving broadcast service.

    One instance per communicator, reusable across messages.  All live
    members must call :meth:`bcast` SPMD-style (matching calls); evicted
    members may keep calling and get ``"evicted"`` back immediately.
    """

    def __init__(
        self,
        comm: "Comm",
        root: int = 0,
        oc_config: OcBcastConfig | None = None,
        member_config: MembershipConfig | None = None,
        election_config: ElectionConfig | None = None,
    ) -> None:
        base = oc_config or DEFAULT_SERVICE_OC
        # The service's correctness needs all three modes regardless of
        # what the caller tuned; everything else is honoured.
        self.config = replace(base, ft=True, service=True, integrity=True)
        self.comm = comm
        self.root = root
        self.oc = OcBcast(comm, self.config)
        self.member = MembershipService(comm, root=root, config=member_config)
        self.election = ElectionService(comm, self.member, config=election_config)
        #: Byzantine mode: the Bracha echo/ready layer (None otherwise).
        self.rbc: RbcService | None = None
        if self.config.byz:
            self.rbc = RbcService(comm, self.oc, self.config)
            self.oc.byz_echo_hook = self.rbc.cast_echoes
        #: Per-rank attempt counter == membership round number.  Global
        #: across messages so heartbeat slot values, claims and the view
        #: flag stay monotonic for the life of the instance.
        self._attempt = [0] * comm.size
        #: Per-rank message counter, keying ``svc.outcome`` records.
        self._msg = [0] * comm.size
        #: Survivor trees are pure functions of (view, source); cache.
        self._trees: dict[tuple[int, int], MemberTree] = {}

    # ------------------------------------------------------------------

    def survivor_tree(self, view, source: int | None = None) -> MemberTree:
        """The propagation tree over ``view``'s members, rooted at
        ``source`` (default: the service's static root -- re-rooted at
        the first surviving rank if it is dead), cached."""
        src = self.root if source is None else source
        key = (view.epoch, src)
        tree = self._trees.get(key)
        if tree is None:
            dead = [r for r in range(self.comm.size) if r not in view]
            root = src if src in view else self.root
            tree = MemberTree.survivors(
                self.comm.size, self.config.k, root, dead=dead
            )
            self._trees[key] = tree
        return tree

    def bcast(
        self,
        cc: "CoreComm",
        buf: MemRef,
        nbytes: int,
        source: int | None = None,
    ) -> Generator[object, object, str]:
        """Broadcast ``nbytes`` from the source's ``buf`` to every live
        member; returns ``"ok"`` (delivered and committed),
        ``"aborted"`` (the source died mid-message with no surviving
        holder: a uniform group abort) or ``"evicted"`` (this rank is
        out of the current view).

        ``source`` picks the broadcasting rank (default: the static
        root while it lives, else the current coordinator).  Raises
        :class:`repro.sim.TimeoutError` when ``max_attempts`` recovery
        rounds cannot produce a committed broadcast.

        Graceful degradation: with ``member_config.retry_budget`` set,
        the service accounts each *failed* attempt (one recovery round)
        against the message's budget and, once spent, REFUSES
        deterministically -- a traced ``svc.refused`` decision and a
        structured :class:`repro.resilience.OverloadError` -- instead
        of burning the remaining ``max_attempts`` against a mesh that
        is demonstrably not recovering.  The refusing rank has still
        participated in the budgeted recovery rounds, so survivors see
        its heartbeats up to the refusal point and evict it cleanly.
        """
        mcfg = self.member.config
        self._msg[cc.rank] += 1
        msg = self._msg[cc.rank]
        tries = 0
        spent = 0  # failed attempts charged against retry_budget
        override: int | None = None  # directive-designated re-broadcast source
        for _ in range(mcfg.max_attempts):
            tries += 1
            view = self.member.views[cc.rank]
            if cc.rank not in view:
                return self._outcome(cc, msg, "evicted")
            if override is not None:
                src = override
            elif source is not None:
                src = source
            else:
                src = self.root
            if src not in view:
                src = self.member.coord[cc.rank]
            self._attempt[cc.rank] += 1
            rnd = self._attempt[cc.rank]
            tree = self.survivor_tree(view, src)
            cc.trace(
                "svc.attempt",
                round=rnd, epoch=view.epoch, src=src, members=tree.size,
            )
            delivered = False
            if self.rbc is not None:
                self.rbc.register(cc.rank, buf, nbytes)
            try:
                status = yield from self.oc.bcast(
                    cc, src, buf, nbytes, tree=tree
                )
                # "retry", "undecided" and "moved_on" still mean *this*
                # rank holds a verified copy: the commit wait happens
                # after its last chunk landed and checked out.
                delivered = status in ("ok", "retry", "undecided", "moved_on")
                if status == "moved_on":
                    status = yield from self._resync(cc, rnd)
            except SimTimeoutError as err:
                status = "retry"
                cc.trace(
                    "svc.attempt_failed",
                    round=rnd, site=getattr(err, "site", ""),
                )
            if status == "evicted":
                return self._outcome(cc, msg, "evicted")
            if status == "ok":
                if self.rbc is not None:
                    # Byzantine mode: the commit only proves every member
                    # *holds a* payload; the quorum rounds prove they all
                    # hold the *same* one (repairing this rank's copy if
                    # it sat on the losing side of an equivocation).
                    verdict = yield from self.rbc.finish(
                        cc, msg, buf, nbytes, src
                    )
                    if verdict != "ok":
                        return self._outcome(cc, msg, "detected")
                if cc.rank == self.member.coord[cc.rank] and tries > 1:
                    self._observe_repair(cc)
                return self._outcome(cc, msg, "ok", buf=buf, nbytes=nbytes)
            # -- recovery round -----------------------------------------
            cc.metric_inc("svc.retries")
            spent += 1
            verdict = yield from self._recover(cc, rnd, src, delivered)
            if verdict is _SELF_EVICT:
                return self._outcome(cc, msg, "self_evicted", returns="ok")
            if self._attempt[cc.rank] > rnd and delivered:
                # Fast-forwarded: the view that answered this member's
                # recovery was installed for a *later* round, and no
                # install for this round ever appeared -- the group
                # resolved this attempt without a recovery round (the
                # commit was OK; only its notification was lost) while
                # this holder was out of touch.  Deliver the verified
                # payload and resume in lockstep at the installed round.
                return self._outcome(cc, msg, "ok", buf=buf, nbytes=nbytes)
            if (
                isinstance(verdict, CompletionDirective)
                and verdict.round_no == rnd
            ):
                if verdict.code == DIRECTIVE_ABORT:
                    return self._outcome(cc, msg, "aborted")
                if verdict.code == DIRECTIVE_REBROADCAST:
                    override = verdict.source
            if mcfg.retry_budget and spent >= mcfg.retry_budget:
                epoch = self.member.views[cc.rank].epoch
                cc.trace(
                    "svc.refused",
                    msg=msg, round=rnd, spent=spent,
                    budget=mcfg.retry_budget, epoch=epoch,
                )
                cc.metric_inc("resilience.refusals")
                raise OverloadError(
                    msg_id=msg, rank=cc.rank, epoch=epoch,
                    spent=spent, budget=mcfg.retry_budget,
                )
        raise SimTimeoutError(
            f"core {cc.core_id}: service broadcast not committed after "
            f"{mcfg.max_attempts} attempts at t={cc.now:.4f}",
            process=f"core{cc.core_id}",
            sim_time=cc.now,
            site="svc.attempts",
        )

    def _resync(
        self, cc: "CoreComm", rnd: int
    ) -> Generator[object, object, str]:
        """Disambiguate a ``"moved_on"`` commit: this rank holds the
        verified payload, its commit notification was lost, and a
        *later* sequence window is demonstrably streaming.  The
        coordinator only opens a new window after its commit round
        resolves, and a RETRY decision installs the next view -- an
        acked write to every member, suspects included -- *before*
        re-streaming.  So by the time later-window data can reach this
        rank, a RETRY's view flag has already landed here: a flag still
        below this round means the group committed OK and is on the
        next message (resume in step without a recovery round, which
        nobody would collect); a flag at or past this round means a
        recovery is in flight, so fail the attempt and join it."""
        flag = yield from cc.flag_poll(self.member.view_flag)
        pending = flag.seq >= rnd
        cc.trace("svc.resync", round=rnd, view_pending=pending)
        cc.metric_inc("svc.resync")
        return "retry" if pending else "ok"

    # -- recovery ----------------------------------------------------------

    def _recover(self, cc: "CoreComm", rnd: int, src: int, delivered: bool):
        """One recovery round; returns the adopted/installed
        :class:`CompletionDirective` (or ``None``), or the
        ``_SELF_EVICT`` sentinel for a delivered-but-partitioned member
        leaving on its own account."""
        coord = self.member.coord[cc.rank]
        if cc.rank == coord:
            kind, val = yield from self._coordinate(
                cc, rnd, src, delivered, won=False
            )
            if kind == "installed":
                return val
            # Deposed: the members elected `val` while we were away.
            try:
                return (yield from self._follow(cc, rnd, val, delivered))
            except SimTimeoutError:
                return (
                    yield from self._elect_and_follow(
                        cc, rnd, src, delivered, {val}
                    )
                )
        reported = True
        try:
            yield from self.member.report(cc, rnd, ok=delivered)
        except SimTimeoutError:
            # Our writes do not land (a partition on our side): the
            # round will suspect us.  Still await the view -- if the
            # partition clears, the flag tells us our fate.
            reported = False
            self._report_failed(cc, rnd)
        try:
            yield from self.member.await_view(cc, rnd)
            self._fast_forward(cc, rnd)
            return self.member.directives[cc.rank]
        except SimTimeoutError:
            if not reported:
                if delivered:
                    # Unreachable in both directions but the payload is
                    # verified and complete: deliver, and leave the
                    # group rather than deadlock.  Non-decisive for
                    # uniform agreement (I6): the member exits the
                    # agreement set with the payload in hand.
                    self.member.evict_self(cc.rank)
                    cc.trace("svc.self_evict", round=rnd)
                    cc.metric_inc("svc.self_evict")
                    return _SELF_EVICT
                raise
            # Our report landed (the slot array in the coordinator's MPB
            # acks even when its core is dead -- on-chip SRAM) yet no
            # view came: the coordinator is gone.  Elect a successor.
            return (
                yield from self._elect_and_follow(
                    cc, rnd, src, delivered, {coord}
                )
            )

    def _coordinate(
        self, cc: "CoreComm", rnd: int, src: int, delivered: bool, *, won: bool
    ):
        """The coordinator's half of a recovery round: claim fences,
        heartbeat collect, completion decision, view install.  Returns
        ``("installed", directive_or_None)`` or ``("stepped_down",
        rival_rank)``."""
        # Fence 1: a standing coordinator checks for *any* rival claim
        # (members only elect when they have given up on it); a freshly
        # elected winner checks only below itself -- higher-ranked
        # claims are from candidates that will yield to it.
        below = cc.rank if won else None
        rival = yield from self.election.check_claims(cc, rnd, below=below)
        if rival is not None:
            cc.trace("svc.step_down", round=rnd, to=rival)
            return "stepped_down", rival
        statuses, suspects = yield from self.member.collect(cc, rnd)
        self._observe_detection(cc, suspects)
        view = self.member.views[cc.rank]
        new_view = view.without(suspects) if suspects else view
        decision: CompletionDirective | None = None
        if src not in new_view:
            # The source died mid-message: count the holders' votes.
            holders = {m for m, ok in statuses.items() if ok and m in new_view}
            if delivered:
                holders.add(cc.rank)
            ordered = sorted(holders)
            if ordered:
                decision = CompletionDirective(
                    DIRECTIVE_REBROADCAST, ordered[0], rnd
                )
            else:
                decision = CompletionDirective(DIRECTIVE_ABORT, 0, rnd)
            cc.trace(
                "svc.completion",
                round=rnd, src=src,
                decision="rebroadcast" if ordered else "abort",
                holders=len(ordered),
                new_source=ordered[0] if ordered else -1,
            )
        # Fence 2: succession order beats arrival order -- a lower-ranked
        # candidate that entered the election late (and claimed while we
        # were collecting) takes over before we install.
        rival = yield from self.election.check_claims(cc, rnd, below=cc.rank)
        if rival is not None:
            cc.trace("svc.step_down", round=rnd, to=rival)
            return "stepped_down", rival
        yield from self.member.install(
            cc, new_view, rnd, decision=decision,
            window=self.oc.window_base(cc.rank),
        )
        return "installed", decision

    def _follow(
        self, cc: "CoreComm", rnd: int, leader: int, delivered: bool
    ) -> Generator[object, object, CompletionDirective]:
        """Re-report this round's heartbeat to ``leader`` (re-homing the
        heartbeat array to its MPB) and adopt its view install; returns
        the adopted completion directive.  Raises
        :class:`repro.sim.TimeoutError` if the leader never installs."""
        try:
            yield from self.member.report(cc, rnd, ok=delivered, to=leader)
        except SimTimeoutError:
            self._report_failed(cc, rnd)
        yield from self.member.await_view(cc, rnd)
        self._fast_forward(cc, rnd)
        return self.member.directives[cc.rank]

    def _elect_and_follow(
        self,
        cc: "CoreComm",
        rnd: int,
        src: int,
        delivered: bool,
        suspects: set[int],
    ):
        """Run elections until a coordinator installs this round's view
        (possibly this rank itself); each failed winner is added to the
        suspect set and the election re-runs, so a winner that dies
        before installing cannot wedge the round."""
        suspects = set(suspects)
        view = self.member.views[cc.rank]
        for _ in range(len(view.members)):
            winner = yield from self.election.elect(cc, rnd, suspects)
            if winner == cc.rank:
                kind, val = yield from self._coordinate(
                    cc, rnd, src, delivered, won=True
                )
                if kind == "installed":
                    self._observe_elect(cc)
                    return val
                winner = val  # a lower-ranked claimant outranks us
            try:
                return (yield from self._follow(cc, rnd, winner, delivered))
            except SimTimeoutError:
                suspects.add(winner)
        raise SimTimeoutError(
            f"core {cc.core_id}: no coordinator emerged for round {rnd} "
            f"after exhausting the candidate set at t={cc.now:.4f}",
            process=f"core{cc.core_id}",
            sim_time=cc.now,
            site="member.elect",
        )

    def _fast_forward(self, cc: "CoreComm", rnd: int) -> None:
        """A view installed for a *later* round than the one this member
        is recovering means the member lagged while the group moved on
        (its commit notification died with its parent, say).  Jump the
        attempt counter to the installed round so the next attempt's
        round number -- and with it heartbeat slot values, sequence
        windows and claims -- is back in lockstep with the
        coordinator."""
        sync = self.member.view_rounds[cc.rank]
        if sync > rnd:
            cc.trace("svc.fast_forward", round=rnd, to=sync)
            cc.metric_inc("svc.fast_forward")
            self._attempt[cc.rank] = sync
            self.oc.resync_window(cc.rank, self.member.window_hints[cc.rank])

    def _report_failed(self, cc: "CoreComm", rnd: int) -> None:
        cc.trace("svc.report_failed", round=rnd)
        cc.metric_inc("svc.report_failed")

    def _outcome(
        self,
        cc: "CoreComm",
        msg: int,
        status: str,
        *,
        buf: MemRef | None = None,
        nbytes: int = 0,
        returns: str | None = None,
    ) -> str:
        """Emit the ``svc.outcome`` record invariant I6 audits; returns
        the caller-visible status (``returns`` overrides it -- a
        self-evicted member still hands ``"ok"`` to its caller, but its
        recorded outcome is non-decisive)."""
        detail: dict = dict(
            msg=msg, status=status, epoch=self.member.views[cc.rank].epoch
        )
        if status == "ok" and buf is not None and cc.tracer_enabled:
            # The payload fingerprint uniform agreement is checked
            # against; computed only when someone is listening.
            detail["crc"] = zlib.crc32(buf.sub(0, nbytes).read())
        cc.trace("svc.outcome", **detail)
        return returns if returns is not None else status

    # -- repair telemetry --------------------------------------------------

    def _observe(self, cc: "CoreComm", name: str) -> None:
        t0 = cc.first_fault_time()
        if t0 is None or cc.now < t0:
            return
        cc.observe_histogram(name, TTD_BOUNDS, cc.now - t0)

    def _observe_detection(self, cc: "CoreComm", suspects: list[int]) -> None:
        """Time-to-detect: first injected fault -> suspicion, at the
        coordinator."""
        if suspects:
            self._observe(cc, "member.ttd_us")

    def _observe_repair(self, cc: "CoreComm") -> None:
        """Time-to-repair: first injected fault -> committed broadcast
        (called only when this message needed at least one retry)."""
        self._observe(cc, "member.ttr_us")

    def _observe_elect(self, cc: "CoreComm") -> None:
        """Time-to-elect: first injected fault -> this rank won the
        election *and* installed the handoff view."""
        self._observe(cc, "member.tte_us")
