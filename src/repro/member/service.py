"""OcBcastService: the crash-surviving broadcast service.

Wraps an FT OC-Bcast engine (service mode: NACK done-chain + commit
notification, payload integrity on) in a retry loop driven by the
membership service:

1.  Broadcast over the current view's survivor tree
    (:meth:`repro.core.trees.MemberTree.survivors`).  A rank outside the
    view returns ``"evicted"`` without touching the MPB.
2.  On commit ``"ok"`` every live member has verified the payload --
    done (no heartbeat round on the fault-free path).
3.  On failure (commit ``"retry"``, or a local timeout from an orphaned
    subtree) a *recovery round* runs: members report heartbeats carrying
    their delivered bit, the root suspects the silent ones, installs the
    next epoch's view, and the loop re-broadcasts the whole message over
    the shrunken tree.  Suspected-but-alive cores learn of their
    eviction from the view flag and return ``"evicted"``.

An interior crash mid-stream therefore degrades to a smaller tree within
one recovery round, and subsequent broadcasts never touch dead cores: the
survivor tree is rebuilt from the epoch's view, not rediscovered.

Time-to-detect (first injected fault -> root suspects it) and
time-to-repair (first injected fault -> successful commit) are recorded
into ``member.ttd_us`` / ``member.ttr_us`` histograms on the chip's
metrics registry when both an injector and a registry are attached.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Generator

from ..core.ocbcast import OcBcast, OcBcastConfig
from ..core.trees import MemberTree
from ..scc.memory import MemRef
from ..sim.errors import TimeoutError as SimTimeoutError
from .heartbeat import TTD_BOUNDS, MembershipConfig, MembershipService

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm

#: Service-mode OC-Bcast defaults: tighter FT budgets than the
#: standalone FT engine, because the membership layer (not the
#: broadcast) owns end-to-end recovery -- a failed attempt should fail
#: fast and hand over.
DEFAULT_SERVICE_OC = OcBcastConfig(
    ft=True,
    service=True,
    integrity=True,
    ft_flag_timeout=300.0,
    ft_notify_timeout=2500.0,
)


class OcBcastService:
    """An epoch-aware, crash-surviving broadcast service.

    One instance per communicator, reusable across messages.  All live
    members must call :meth:`bcast` SPMD-style (matching calls); evicted
    members may keep calling and get ``"evicted"`` back immediately.
    """

    def __init__(
        self,
        comm: "Comm",
        root: int = 0,
        oc_config: OcBcastConfig | None = None,
        member_config: MembershipConfig | None = None,
    ) -> None:
        base = oc_config or DEFAULT_SERVICE_OC
        # The service's correctness needs all three modes regardless of
        # what the caller tuned; everything else is honoured.
        self.config = replace(base, ft=True, service=True, integrity=True)
        self.comm = comm
        self.root = root
        self.oc = OcBcast(comm, self.config)
        self.member = MembershipService(comm, root=root, config=member_config)
        #: Per-rank attempt counter == membership round number.  Global
        #: across messages so heartbeat slot values and the view flag
        #: stay monotonic for the life of the instance.
        self._attempt = [0] * comm.size
        #: Survivor trees are pure functions of the view; cache by epoch.
        self._trees: dict[int, MemberTree] = {}

    # ------------------------------------------------------------------

    def survivor_tree(self, view) -> MemberTree:
        """The propagation tree over ``view``'s members (cached)."""
        tree = self._trees.get(view.epoch)
        if tree is None:
            dead = [r for r in range(self.comm.size) if r not in view]
            tree = MemberTree.survivors(
                self.comm.size, self.config.k, self.root, dead=dead
            )
            self._trees[view.epoch] = tree
        return tree

    def bcast(
        self, cc: "CoreComm", buf: MemRef, nbytes: int
    ) -> Generator[object, object, str]:
        """Broadcast ``nbytes`` from the root's ``buf`` to every live
        member; returns ``"ok"`` (delivered and committed) or
        ``"evicted"`` (this rank is out of the current view).

        Raises :class:`repro.sim.TimeoutError` when ``max_attempts``
        recovery rounds cannot produce a committed broadcast (e.g. the
        root itself keeps failing, or faults outpace eviction).
        """
        mcfg = self.member.config
        tries = 0
        for _ in range(mcfg.max_attempts):
            tries += 1
            view = self.member.views[cc.rank]
            if cc.rank not in view:
                return "evicted"
            self._attempt[cc.rank] += 1
            rnd = self._attempt[cc.rank]
            tree = self.survivor_tree(view)
            cc.chip.trace(
                f"rank{cc.rank}", "svc.attempt",
                round=rnd, epoch=view.epoch, members=tree.size,
            )
            delivered = False
            try:
                status = yield from self.oc.bcast(
                    cc, self.root, buf, nbytes, tree=tree
                )
                # "retry" still means *this* rank holds a verified copy:
                # the commit wait happens after its last chunk landed.
                delivered = status in ("ok", "retry")
            except SimTimeoutError as err:
                status = "retry"
                cc.chip.trace(
                    f"rank{cc.rank}", "svc.attempt_failed",
                    round=rnd, site=getattr(err, "site", ""),
                )
            if status == "evicted":
                return "evicted"
            if status == "ok":
                if cc.rank == self.root and tries > 1:
                    self._observe_repair(cc)
                return "ok"
            # -- recovery round -----------------------------------------
            if cc.chip.metrics is not None:
                cc.chip.metrics.inc("svc.retries")
            if cc.rank == self.root:
                statuses, suspects = yield from self.member.collect(cc, rnd)
                self._observe_detection(cc, suspects)
                new_view = view.without(suspects) if suspects else view
                yield from self.member.install(cc, new_view, rnd)
            else:
                try:
                    yield from self.member.report(cc, rnd, ok=delivered)
                except SimTimeoutError:
                    # Partitioned from the root (e.g. a link-down
                    # burst): we cannot be heard, so this round will
                    # suspect us.  Still await the view -- if the burst
                    # clears, the flag tells us our fate; otherwise the
                    # delivered-payload self-eviction below applies.
                    cc.chip.trace(
                        f"rank{cc.rank}", "svc.report_failed", round=rnd
                    )
                try:
                    yield from self.member.await_view(cc, rnd)
                except SimTimeoutError:
                    if delivered:
                        # The root (or the whole view channel) is
                        # unreachable but the payload is verified and
                        # complete: deliver, and leave the group on our
                        # own account rather than deadlock.
                        self.member.evict_self(cc.rank)
                        cc.chip.trace(
                            f"rank{cc.rank}", "svc.self_evict", round=rnd
                        )
                        return "ok"
                    raise
        raise SimTimeoutError(
            f"core {cc.core.id}: service broadcast not committed after "
            f"{mcfg.max_attempts} attempts at t={cc.core.sim.now:.4f}",
            process=f"core{cc.core.id}",
            sim_time=cc.core.sim.now,
            site="svc.attempts",
        )

    # -- repair telemetry --------------------------------------------------

    def _first_fault_time(self, cc: "CoreComm") -> float | None:
        faults = cc.chip.faults
        if faults is not None and faults.injected:
            return faults.injected[0].time
        return None

    def _observe_detection(self, cc: "CoreComm", suspects: list[int]) -> None:
        """Time-to-detect: first injected fault -> suspicion, at the root."""
        if not suspects or cc.chip.metrics is None:
            return
        t0 = self._first_fault_time(cc)
        if t0 is None or cc.core.sim.now < t0:
            return
        cc.chip.metrics.histogram("member.ttd_us", TTD_BOUNDS).observe(
            cc.core.sim.now - t0
        )

    def _observe_repair(self, cc: "CoreComm") -> None:
        """Time-to-repair: first injected fault -> committed broadcast
        (called only when this message needed at least one retry)."""
        if cc.chip.metrics is None:
            return
        t0 = self._first_fault_time(cc)
        if t0 is None or cc.core.sim.now < t0:
            return
        cc.chip.metrics.histogram("member.ttr_us", TTD_BOUNDS).observe(
            cc.core.sim.now - t0
        )
