"""Membership, failure detection, and the crash-surviving broadcast service.

- :mod:`repro.member.heartbeat` -- MPB-flag heartbeats with poll-budget
  suspicion, and epoch-stamped membership views agreed through the acked
  flag primitives (:class:`MembershipService`).
- :mod:`repro.member.service` -- :class:`OcBcastService`, the epoch-aware
  FT OC-Bcast service: between rounds the propagation and notification
  trees are rebuilt over the current view's survivors, so an interior
  crash degrades to a smaller tree instead of orphaning a subtree, and
  later broadcasts never touch dead cores.
"""

from .heartbeat import MembershipConfig, MembershipService, MembershipView
from .service import OcBcastService

__all__ = [
    "MembershipConfig",
    "MembershipService",
    "MembershipView",
    "OcBcastService",
]
