"""Membership, failure detection, and the crash-surviving broadcast service.

- :mod:`repro.member.heartbeat` -- MPB-flag heartbeats with poll-budget
  suspicion, and epoch-stamped membership views agreed through the acked
  flag primitives (:class:`MembershipService`); views carry a
  :class:`CompletionDirective` verdict for the in-flight message.
- :mod:`repro.member.election` -- ranked-succession leader election over
  MPB claim slots (:class:`ElectionService`): when the coordinator
  crashes, the lowest live rank of the last installed view takes over
  and re-installs a bumped-epoch view (the epoch handoff).
- :mod:`repro.member.service` -- :class:`OcBcastService`, the epoch-aware
  FT OC-Bcast service: between rounds the propagation and notification
  trees are rebuilt over the current view's survivors, so an interior
  crash degrades to a smaller tree instead of orphaning a subtree; a
  *source* crash mid-message resolves by uniform agreement -- re-broadcast
  from a fully-delivered survivor, or a group-wide abort.
"""

from .election import ElectionConfig, ElectionService
from .heartbeat import (
    CompletionDirective,
    MembershipConfig,
    MembershipService,
    MembershipView,
)
from .rbc import RbcService, echo_quorum, max_faulty, ready_amplify, ready_quorum
from .service import OcBcastService

__all__ = [
    "RbcService",
    "echo_quorum",
    "max_faulty",
    "ready_amplify",
    "ready_quorum",
    "CompletionDirective",
    "ElectionConfig",
    "ElectionService",
    "MembershipConfig",
    "MembershipService",
    "MembershipView",
    "OcBcastService",
]
