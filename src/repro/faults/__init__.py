"""Deterministic fault injection for the simulated SCC.

``repro.faults`` turns the simulator into a fault-injection rig: a seeded
:class:`FaultPlan` describes dropped/corrupted MPB flag writes, transient
mesh-link stalls, core pauses and core crashes, and a
:class:`FaultInjector` attached to a chip fires them at exactly the
planned occurrence -- reproducibly, run after run.

Typical use::

    from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
    from repro.scc import SccChip

    plan = FaultPlan((FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=3),))
    chip = SccChip(faults=FaultInjector(plan))

Campaigns over many seeded plans live in
:mod:`repro.bench.faultcampaign`; the fault-tolerant protocol modes that
survive these faults live in :mod:`repro.rcce.flags` (timeout waits),
:mod:`repro.rcce.onesided` (acked puts) and :mod:`repro.core.ocbcast`
(FT OC-Bcast).
"""

from .injector import (
    CORRUPT,
    DELIVER,
    DROP,
    FaultInjector,
    InjectionRecord,
    RecoveryRecord,
)
from .plan import (
    ADVERSARY_KINDS,
    CRASH_SITES,
    NO_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ADVERSARY_KINDS",
    "CORRUPT",
    "CRASH_SITES",
    "DELIVER",
    "DROP",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectionRecord",
    "NO_FAULTS",
    "RecoveryRecord",
]
