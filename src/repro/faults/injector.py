"""The fault injector: deterministic hooks into the chip models.

A :class:`FaultInjector` is attached to a chip at construction time
(``SccChip(config, faults=FaultInjector(plan))``) and consulted from the
narrow waist of each hardware model:

- :meth:`filter_mpb_write` -- from :meth:`repro.scc.mpb.Mpb.write_bytes`,
  for every *protocol* write (flag or data; raw initialisation writes are
  never faulted).  May drop or corrupt the write.
- :meth:`link_stall` -- from :meth:`repro.scc.mesh.Mesh.fault_stall`, on
  every MPB transaction; returns extra mesh delay.
- :meth:`core_op` -- from the timed primitives of
  :class:`repro.scc.core.Core`; returns extra pause delay or raises
  :class:`repro.sim.FaultInjected` once the core has been crashed.

The injector holds no RNG: plans are decided before the run, occurrence
counters advance deterministically, so two runs with the same plan are
byte-identical.  Counters are maintained even with an empty plan, which
is how campaigns *profile* a run to learn how many candidate fault sites
of each class exist.

Every injected fault and every recovery reported by a fault-tolerant
protocol layer is (a) recorded on the injector and (b) emitted through
the chip tracer (kinds ``fault.injected`` / ``fault.recovered``), so
fault timelines can be rendered next to latency results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..sim.errors import FaultInjected
from .plan import FaultKind, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.chip import SccChip

#: Actions :meth:`filter_mpb_write` can take.
DELIVER, DROP, CORRUPT = "deliver", "drop", "corrupt"


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired."""

    time: float
    spec: FaultSpec
    site: str  # concrete location, e.g. "mpb12@4064" or "core7"

    def __str__(self) -> str:
        return f"[{self.time:12.4f}] {self.spec.kind.value} at {self.site}"


@dataclass(frozen=True)
class RecoveryRecord:
    """One recovery action reported by an FT protocol layer."""

    time: float
    site: str
    note: str = ""

    def __str__(self) -> str:
        return f"[{self.time:12.4f}] recovered {self.site} {self.note}".rstrip()


@dataclass
class _Armed:
    """A plan spec plus its fired flag (specs fire at most once)."""

    spec: FaultSpec
    fired: bool = field(default=False)


@dataclass
class _Churn:
    """Armed REPEATED_CRASH state: after the first victim, the next
    non-dead core to execute a timed primitive at or past ``next_at``
    is crashed too, until ``left`` reaches zero."""

    spec: FaultSpec
    next_at: float
    left: int


class FaultInjector:
    """Deterministic fault injection for one chip."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.chip: "SccChip | None" = None
        #: Occurrence counts: global per category, and per (category, core).
        self.counts: dict[str, int] = {}
        self.injected: list[InjectionRecord] = []
        self.recoveries: list[RecoveryRecord] = []
        self._dead: set[int] = set()
        #: Per-core link-down windows: core id -> end of the down window.
        self._link_down_until: dict[int, float] = {}
        #: Per-core flap windows: core id -> (t0, until, period, duty).
        #: The link is down during the first ``duty`` fraction of each
        #: ``period``-long cycle inside [t0, until).
        self._flapping: dict[int, tuple[float, float, float, float]] = {}
        #: Congestion-storm windows: (t0, until, per-access stall).
        #: Overlapping storms stack additively.
        self._storms: list[tuple[float, float, float]] = []
        #: Armed REPEATED_CRASH churn regimes.
        self._churn: list[_Churn] = []
        #: Protocol writes swallowed by an active link-down window.
        self.burst_dropped: int = 0
        self._armed: dict[str, list[_Armed]] = {}
        for spec in self.plan:
            self._armed.setdefault(spec.category, []).append(_Armed(spec))

    # -- wiring ------------------------------------------------------------

    def attach(self, chip: "SccChip") -> None:
        """Hook this injector into every model of ``chip``."""
        self.chip = chip
        chip.faults = self
        for mpb in chip.mpbs:
            mpb.injector = self
        chip.mesh.injector = self
        # Detector errors (deadlock/watchdog) raised by the kernel carry
        # the fault timeline, so a wedged campaign trial is diagnosable
        # from the exception alone.
        chip.sim.diagnostic_context = self.timeline_text

    # -- bookkeeping --------------------------------------------------------

    def _bump(self, category: str, core: int | None) -> tuple[int, int]:
        """Advance the global and per-core counters; returns both counts."""
        g = self.counts.get(category, 0) + 1
        self.counts[category] = g
        if core is None:
            return g, 0
        key = f"{category}@core{core}"
        c = self.counts.get(key, 0) + 1
        self.counts[key] = c
        return g, c

    def _match(
        self, category: str, core: int | None, n_global: int, n_core: int
    ) -> FaultSpec | None:
        """The first unfired plan spec matching this occurrence, if any."""
        for armed in self._armed.get(category, ()):
            if armed.fired:
                continue
            spec = armed.spec
            if spec.core is None:
                if spec.nth == n_global:
                    armed.fired = True
                    return spec
            elif spec.core == core and spec.nth == n_core:
                armed.fired = True
                return spec
        return None

    def _record(self, spec: FaultSpec, site: str) -> None:
        now = self.chip.sim.now if self.chip is not None else 0.0
        self.injected.append(InjectionRecord(now, spec, site))
        if self.chip is not None:
            self.chip.trace(
                "faults", "fault.injected",
                fault=spec.kind.value, site=site, nth=spec.nth,
            )

    def note_recovery(self, site: str, note: str = "") -> None:
        """Called by FT protocol layers when a fault was masked (a retried
        flag write landed, a lagging child was re-notified, ...)."""
        now = self.chip.sim.now if self.chip is not None else 0.0
        self.recoveries.append(RecoveryRecord(now, site, note))
        if self.chip is not None:
            self.chip.trace("faults", "fault.recovered", site=site, note=note)

    # -- hooks (called by the chip models) -----------------------------------

    def filter_mpb_write(
        self, *, owner: int, offset: int, nbytes: int, source: int, op: str
    ) -> str:
        """Decide the fate of one protocol MPB write.  ``op`` is ``"flag"``
        or ``"data"``; returns one of DELIVER / DROP / CORRUPT."""
        category = "flag_write" if op == "flag" else "data_write"
        n_global, n_core = self._bump(category, owner)
        spec = self._match(category, owner, n_global, n_core)
        if spec is None:
            if self._link_is_down(owner) or self._link_is_down(source):
                self.burst_dropped += 1
                return DROP
            return DELIVER
        self._record(spec, f"mpb{owner}@{offset} (from core{source})")
        corrupting = (FaultKind.CORRUPT_FLAG_WRITE, FaultKind.CORRUPT_DATA_WRITE)
        return CORRUPT if spec.kind in corrupting else DROP

    def link_stall(self, src_core: int, dst_core: int) -> float:
        """Extra mesh delay for one MPB transaction of ``src_core``."""
        n_global, n_core = self._bump("mpb_access", src_core)
        spec = self._match("mpb_access", src_core, n_global, n_core)
        storm = self._storm_stall()
        if spec is None:
            return storm
        self._record(spec, f"core{src_core}->core{dst_core}")
        now = self.chip.sim.now if self.chip is not None else 0.0
        if spec.kind is FaultKind.LINK_DOWN:
            until = now + spec.duration
            prev = self._link_down_until.get(spec.core, 0.0)
            self._link_down_until[spec.core] = max(prev, until)
            return storm  # writes vanish silently; the access itself is not slowed
        if spec.kind is FaultKind.FLAPPING_LINK:
            # Arm the duty cycle; like LINK_DOWN, down phases swallow
            # writes silently rather than slowing the access.
            self._flapping[spec.core] = (
                now, now + spec.duration, spec.period, spec.duty,
            )
            return storm
        if spec.kind is FaultKind.CONGESTION_STORM:
            # The per-access stall applies from the triggering access on.
            self._storms.append((now, now + spec.duration, spec.period))
            return storm + spec.period
        return storm + spec.duration

    def _storm_stall(self) -> float:
        """Total extra per-access stall from storms active right now."""
        if not self._storms:
            return 0.0
        now = self.chip.sim.now if self.chip is not None else 0.0
        return sum(
            stall for t0, until, stall in self._storms if t0 <= now < until
        )

    def core_op(self, core_id: int) -> float:
        """Called at every timed core primitive.  Returns extra pause
        delay; raises :class:`FaultInjected` if the core is (now) dead."""
        if core_id in self._dead:
            self._raise_dead(core_id)
        n_global, n_core = self._bump("core_op", core_id)
        spec = self._match("core_op", core_id, n_global, n_core)
        if spec is None:
            self._churn_check(core_id)
            return 0.0
        self._record(spec, f"core{core_id}")
        if spec.kind is FaultKind.CORE_CRASH:
            self._dead.add(core_id)
            self._raise_dead(core_id)
        if spec.kind is FaultKind.REPEATED_CRASH:
            now = self.chip.sim.now if self.chip is not None else 0.0
            if spec.cycles > 1:
                self._churn.append(
                    _Churn(spec=spec, next_at=now + spec.period,
                           left=spec.cycles - 1)
                )
            self._dead.add(core_id)
            self._raise_dead(core_id)
        return spec.duration

    def _churn_check(self, core_id: int) -> None:
        """Claim the next churn crash: once a REPEATED_CRASH regime's
        gap has elapsed, the first (non-dead) core to execute a timed
        primitive becomes the next victim."""
        if not self._churn:
            return
        now = self.chip.sim.now if self.chip is not None else 0.0
        for churn in self._churn:
            if churn.left > 0 and now >= churn.next_at:
                churn.left -= 1
                churn.next_at = now + churn.spec.period
                self._dead.add(core_id)
                self._record(churn.spec, f"core{core_id} (churn)")
                self._raise_dead(core_id)

    def adversary_stage(self, core_id: int) -> FaultSpec | None:
        """Byzantine staging hook: called by the Byzantine-tolerant engine
        (``byz=True``) each time ``core_id`` stages a chunk as source or
        coordinator.  Returns the EQUIVOCATE spec whose staging window
        ``[nth, nth+window)`` covers this occurrence, else ``None``.

        Crash-tolerant runs never call this, so ``adv_stage`` counters
        stay at zero there and existing traces are bit-identical.
        """
        _, n_core = self._bump("adv_stage", core_id)
        for armed in self._armed.get("adv_stage", ()):
            spec = armed.spec
            if spec.core != core_id:
                continue
            if spec.nth <= n_core < spec.nth + spec.window:
                if not armed.fired:
                    armed.fired = True
                    self._record(spec, f"core{core_id} staging #{n_core}")
                return spec
        return None

    def quorum_vote(self, core_id: int) -> FaultSpec | None:
        """Byzantine vote hook: called by the RBC layer once per
        (core, chunk round) before the core casts its ECHO/READY votes.
        Returns the FORGE_FLAG_VALUE / LIE_IN_QUORUM spec firing at this
        occurrence, else ``None``.  Only ``byz=True`` runs call this.
        """
        n_global, n_core = self._bump("quorum_vote", core_id)
        spec = self._match("quorum_vote", core_id, n_global, n_core)
        if spec is not None:
            self._record(spec, f"core{core_id} vote round #{n_core}")
        return spec

    def is_dead(self, core_id: int) -> bool:
        return core_id in self._dead

    def _link_is_down(self, core_id: int) -> bool:
        now = self.chip.sim.now if self.chip is not None else 0.0
        until = self._link_down_until.get(core_id)
        if until is not None and now < until:
            return True
        flap = self._flapping.get(core_id)
        if flap is not None:
            t0, f_until, period, duty = flap
            if t0 <= now < f_until and (now - t0) % period < duty * period:
                return True
        return False

    def _raise_dead(self, core_id: int) -> None:
        now = self.chip.sim.now if self.chip is not None else 0.0
        raise FaultInjected(
            f"core {core_id} crashed by fault plan at t={now:.4f}",
            kind=FaultKind.CORE_CRASH.value,
            site=f"core{core_id}",
            sim_time=now,
        )

    # -- reporting -----------------------------------------------------------

    @property
    def n_injected(self) -> int:
        return len(self.injected)

    @property
    def n_recovered(self) -> int:
        return len(self.recoveries)

    def profile(self) -> dict[str, int]:
        """A copy of the occurrence counters (for campaign site sampling)."""
        return dict(self.counts)

    def timeline_text(self, limit: int = 12) -> str:
        """The fault timeline as indented text, for appending to detector
        error messages (empty string when nothing was injected)."""
        events: list[tuple[float, str]] = []
        events.extend((r.time, str(r)) for r in self.injected)
        events.extend((r.time, str(r)) for r in self.recoveries)
        if not events:
            return ""
        events.sort(key=lambda e: e[0])
        shown = events[:limit]
        lines = [f"  {text}" for _, text in shown]
        if len(events) > len(shown):
            lines.append(f"  ... and {len(events) - len(shown)} more")
        if self.burst_dropped:
            lines.append(f"  ({self.burst_dropped} writes lost to link-down bursts)")
        return "fault timeline:\n" + "\n".join(lines)
