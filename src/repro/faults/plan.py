"""Fault plans: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is a static, fully deterministic description of the
faults one simulation run will experience.  There is no randomness at
injection time -- campaigns (:mod:`repro.bench.faultcampaign`) draw plans
from a seeded RNG *before* the run, so the simulator's determinism
contract (same inputs, same event order) extends verbatim to faulted
runs: same seed + same plan => byte-identical trace.

Faults are addressed by *occurrence counting*: "the 3rd protocol flag
write whose destination is core 12", "the 40th timed operation of
core 7".  Occurrence counts are stable across runs (determinism again),
which makes them a precise, replayable coordinate system for fault
sites -- the same scheme hardware fault-injection rigs use with
instruction counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """The fault classes the injector understands.

    The write faults model the SCC's unacknowledged MPB stores (a remote
    write is fire-and-forget; nothing tells the sender it was lost); the
    stall/pause/crash faults model mesh congestion transients, cores held
    in an SMM handler, and cores dying outright.
    """

    #: Silently discard one protocol flag write (the receiving MPB line is
    #: never updated and no poll watcher wakes -- a lost notification).
    DROP_FLAG_WRITE = "drop_flag_write"
    #: Deliver one protocol flag write with its bytes inverted.
    CORRUPT_FLAG_WRITE = "corrupt_flag_write"
    #: Silently discard one payload (data) MPB write.
    DROP_DATA_WRITE = "drop_data_write"
    #: Deliver one payload (data) MPB write with its bytes inverted -- a
    #: single-event upset on the mesh that flag acks alone cannot see.
    CORRUPT_DATA_WRITE = "corrupt_data_write"
    #: Delay one MPB transaction by ``duration`` (a transient mesh-link
    #: stall on the access path).
    LINK_STALL = "link_stall"
    #: Take core ``core``'s mesh interface down for ``duration`` starting
    #: at its nth MPB transaction: every protocol MPB write *to or from*
    #: that core inside the window is silently dropped (a correlated
    #: burst, unlike the single-write DROP_* kinds).
    LINK_DOWN = "link_down"
    #: Freeze a core for ``duration`` at its nth timed operation.
    CORE_PAUSE = "core_pause"
    #: Kill a core at its nth timed operation; every later operation of
    #: that core raises :class:`repro.sim.FaultInjected`.
    CORE_CRASH = "core_crash"
    #: Byzantine source/coordinator: starting at the victim's nth chunk
    #: staging, write payload A to one part of the tree and a
    #: self-consistent variant B (valid integrity header) to the rest,
    #: for a window of ``duration`` consecutive stagings.  Only the
    #: Byzantine-tolerant mode (``OcBcastConfig(byz=True)``) consults
    #: this; crash-tolerant runs never reach the staging hook.
    EQUIVOCATE = "equivocate"
    #: Byzantine core: at its nth quorum-vote round, write
    #: attacker-chosen values into its own ECHO/READY vote slots within
    #: its MPB reach -- a *different* forged value per member (vote
    #: equivocation), the strongest behaviour the single-writer slot
    #: discipline leaves open.
    FORGE_FLAG_VALUE = "forge_flag_value"
    #: Byzantine core: at its nth quorum-vote round, vote a well-formed
    #: but false digest, consistently to every member.
    LIE_IN_QUORUM = "lie_in_quorum"
    #: Sustained regime: core ``core``'s mesh interface *flaps* with a
    #: duty cycle.  From the victim's nth MPB transaction, time is cut
    #: into ``period``-us cycles for ``duration`` us total; in the first
    #: ``duty`` fraction of each cycle the link is down (protocol MPB
    #: writes to or from the core silently drop, as with LINK_DOWN),
    #: then up for the rest.  An un-paced retry schedule that fits
    #: inside one down-phase loses every re-send; a backoff schedule
    #: spanning a full cycle is guaranteed an up-phase attempt.
    FLAPPING_LINK = "flapping_link"
    #: Sustained regime: crash churn across epochs.  Crashes core
    #: ``core`` at its nth timed operation, then keeps crashing: after
    #: each crash, the next surviving core to execute a timed operation
    #: at least ``period`` us later is crashed too, ``cycles`` crashes
    #: in total.  Exercises repeated suspicion/election/eviction rounds
    #: rather than the single-failover path.
    REPEATED_CRASH = "repeated_crash"
    #: Sustained regime: a congestion storm.  From the nth MPB
    #: transaction (of ``core``, or of anyone when ``core`` is None),
    #: *every* MPB transaction chip-wide for the next ``duration`` us is
    #: stalled an extra ``period`` us -- correlated slowdown, not loss.
    #: Fixed suspicion deadlines tuned for a quiet mesh false-evict
    #: under it; the phi-accrual detector widens with the observed
    #: delays instead.
    CONGESTION_STORM = "congestion_storm"


#: Valid ``crash_site`` choices for campaigns and the CLI: where a
#: CORE_CRASH strikes in the propagation tree.  ``"root"`` kills the
#: broadcast source/coordinator itself -- the scenario only the
#: election-capable service survives.
CRASH_SITES = ("leaf", "interior", "any", "root")

#: Counter category each kind matches against (see :class:`FaultInjector`).
CATEGORY_OF = {
    FaultKind.DROP_FLAG_WRITE: "flag_write",
    FaultKind.CORRUPT_FLAG_WRITE: "flag_write",
    FaultKind.DROP_DATA_WRITE: "data_write",
    FaultKind.CORRUPT_DATA_WRITE: "data_write",
    FaultKind.LINK_STALL: "mpb_access",
    FaultKind.LINK_DOWN: "mpb_access",
    FaultKind.CORE_PAUSE: "core_op",
    FaultKind.CORE_CRASH: "core_op",
    FaultKind.EQUIVOCATE: "adv_stage",
    FaultKind.FORGE_FLAG_VALUE: "quorum_vote",
    FaultKind.LIE_IN_QUORUM: "quorum_vote",
    FaultKind.FLAPPING_LINK: "mpb_access",
    FaultKind.REPEATED_CRASH: "core_op",
    FaultKind.CONGESTION_STORM: "mpb_access",
}

#: The sustained-regime kinds: a trigger occurrence arms a long-running
#: fault *process* (flap cycles, crash churn, a storm window) instead of
#: one discrete event.
SUSTAINED_KINDS = frozenset(
    (FaultKind.FLAPPING_LINK, FaultKind.REPEATED_CRASH, FaultKind.CONGESTION_STORM)
)

#: The Byzantine adversary kinds (category ``adv_stage`` or
#: ``quorum_vote``).  Their counters are only bumped by the
#: Byzantine-tolerant mode's hooks, so crash-tolerant runs are
#: bit-identical whether or not a plan carries them.
ADVERSARY_KINDS = frozenset(
    (FaultKind.EQUIVOCATE, FaultKind.FORGE_FLAG_VALUE, FaultKind.LIE_IN_QUORUM)
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``nth`` is the 1-based occurrence of the matching operation at which
    the fault fires (each spec fires at most once).  ``core`` narrows the
    match: for write faults it is the *destination* (MPB owner) core, for
    stalls the *accessing* core, for pause/crash the victim core; ``None``
    matches any core and counts occurrences globally.
    """

    kind: FaultKind
    nth: int = 1
    core: int | None = None
    #: Stall/pause length in microseconds (stall and pause kinds only);
    #: for the sustained kinds, the *total span* of the regime (flap /
    #: storm window length in us; unused for REPEATED_CRASH).
    duration: float = 0.0
    #: Sustained-regime cycle length (us): one down+up flap cycle for
    #: FLAPPING_LINK, the minimum gap between crashes for
    #: REPEATED_CRASH, the per-access extra stall for CONGESTION_STORM.
    period: float = 0.0
    #: FLAPPING_LINK only: the fraction of each cycle the link is down.
    duty: float = 0.0
    #: REPEATED_CRASH only: total number of crashes in the churn.
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.period < 0:
            raise ValueError(f"period must be >= 0, got {self.period}")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError(f"duty must be in [0, 1], got {self.duty}")
        if self.cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {self.cycles}")
        if self.kind not in SUSTAINED_KINDS and (
            self.period or self.duty or self.cycles
        ):
            raise ValueError(
                f"{self.kind.value} takes no period/duty/cycles (sustained-"
                "regime fields)"
            )
        needs_duration = self.kind in (
            FaultKind.LINK_STALL,
            FaultKind.CORE_PAUSE,
            FaultKind.LINK_DOWN,
            FaultKind.FLAPPING_LINK,
            FaultKind.CONGESTION_STORM,
        )
        if needs_duration and self.duration == 0.0:
            raise ValueError(f"{self.kind.value} needs a positive duration")
        needs_core = (
            FaultKind.CORE_PAUSE,
            FaultKind.CORE_CRASH,
            FaultKind.LINK_DOWN,
            FaultKind.FLAPPING_LINK,
            FaultKind.REPEATED_CRASH,
        )
        if self.kind in needs_core and self.core is None:
            raise ValueError(f"{self.kind.value} needs an explicit victim core")
        if self.kind is FaultKind.FLAPPING_LINK:
            if self.period <= 0.0:
                raise ValueError("flapping_link needs a positive cycle period")
            if not 0.0 < self.duty < 1.0:
                raise ValueError(
                    "flapping_link needs a duty cycle strictly between 0 "
                    "and 1 (duty=1 is LINK_DOWN, duty=0 is no fault)"
                )
            if self.period > self.duration:
                raise ValueError(
                    "flapping_link period exceeds its total duration: the "
                    "link would never complete one down/up cycle -- use "
                    "LINK_DOWN for a single outage"
                )
        if self.kind is FaultKind.REPEATED_CRASH:
            if self.period <= 0.0:
                raise ValueError(
                    "repeated_crash needs a positive inter-crash period"
                )
            if self.cycles < 1:
                raise ValueError("repeated_crash needs cycles >= 1")
        if self.kind is FaultKind.CONGESTION_STORM and self.period <= 0.0:
            raise ValueError(
                "congestion_storm needs a positive per-access stall (period)"
            )
        if self.kind in ADVERSARY_KINDS and self.core is None:
            raise ValueError(
                f"{self.kind.value} needs an explicit adversary core: a "
                "Byzantine identity is a property of a member, not of an "
                "anonymous operation stream"
            )
        if self.kind is FaultKind.EQUIVOCATE and self.window < 1:
            raise ValueError(
                "equivocate needs a window of >= 1 staging occurrences "
                "(duration counts stagings, not microseconds)"
            )

    @property
    def category(self) -> str:
        return CATEGORY_OF[self.kind]

    @property
    def window(self) -> int:
        """Equivocation window in staging occurrences: ``[nth, nth+window)``.

        For EQUIVOCATE, ``duration`` is reinterpreted as a *count* of
        consecutive stagings (the adversary keeps serving two payload
        variants for that many chunks).  Zero for every other kind.
        """
        if self.kind is not FaultKind.EQUIVOCATE:
            return 0
        return int(self.duration)

    @property
    def site(self) -> str:
        where = "*" if self.core is None else f"core{self.core}"
        return f"{self.kind.value}@{where}#{self.nth}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults for one run.

    Multi-fault plans are allowed, but two specs may not claim the same
    occurrence site (same counter category, same core scope, same
    ``nth``): at most one fault can fire per operation, so overlapping
    specs would make the second spec silently dead -- the plan would lie
    about what the run experienced.  Such plans are rejected here rather
    than debugged from a campaign that "lost" a fault.

    The same reasoning rejects two EQUIVOCATE specs on the same core
    with overlapping staging windows ``[nth, nth+window)``, and -- when
    the communicator size is known (``num_cores``) -- adversary specs
    naming cores outside the communicator, which could never fire.
    """

    specs: tuple[FaultSpec, ...] = ()
    label: str = ""
    #: Communicator size, when known at plan-build time.  Adversary
    #: specs (EQUIVOCATE / FORGE_FLAG_VALUE / LIE_IN_QUORUM) naming a
    #: core outside ``range(num_cores)`` are rejected: a "Byzantine
    #: member" that is not a member cannot vote or stage anything.
    num_cores: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen: dict[tuple[str, int | None, int], FaultSpec] = {}
        windows: dict[int, list[FaultSpec]] = {}
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"plan specs must be FaultSpec, got {spec!r}")
            key = (spec.category, spec.core, spec.nth)
            if key in seen:
                raise ValueError(
                    f"overlapping fault specs on the same site: {seen[key].site} "
                    f"and {spec.site} both claim occurrence #{spec.nth} of "
                    f"category {spec.category!r}"
                )
            seen[key] = spec
            if spec.kind in ADVERSARY_KINDS and self.num_cores is not None:
                if not 0 <= spec.core < self.num_cores:
                    raise ValueError(
                        f"adversary spec {spec.site} targets core {spec.core} "
                        f"outside the {self.num_cores}-core communicator"
                    )
            if spec.kind is FaultKind.EQUIVOCATE:
                for other in windows.get(spec.core, ()):
                    lo, hi = spec.nth, spec.nth + spec.window
                    olo, ohi = other.nth, other.nth + other.window
                    if lo < ohi and olo < hi:
                        raise ValueError(
                            f"overlapping equivocation windows on core "
                            f"{spec.core}: {other.site} covers stagings "
                            f"[{olo}, {ohi}) and {spec.site} covers "
                            f"[{lo}, {hi})"
                        )
                windows.setdefault(spec.core, []).append(spec)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def describe(self) -> str:
        if not self.specs:
            return self.label or "no faults"
        body = ", ".join(s.site for s in self.specs)
        return f"{self.label}: {body}" if self.label else body


#: Convenience: the empty plan (used for profiling / fault-free runs).
NO_FAULTS = FaultPlan()
