"""Fault plans: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is a static, fully deterministic description of the
faults one simulation run will experience.  There is no randomness at
injection time -- campaigns (:mod:`repro.bench.faultcampaign`) draw plans
from a seeded RNG *before* the run, so the simulator's determinism
contract (same inputs, same event order) extends verbatim to faulted
runs: same seed + same plan => byte-identical trace.

Faults are addressed by *occurrence counting*: "the 3rd protocol flag
write whose destination is core 12", "the 40th timed operation of
core 7".  Occurrence counts are stable across runs (determinism again),
which makes them a precise, replayable coordinate system for fault
sites -- the same scheme hardware fault-injection rigs use with
instruction counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """The fault classes the injector understands.

    The write faults model the SCC's unacknowledged MPB stores (a remote
    write is fire-and-forget; nothing tells the sender it was lost); the
    stall/pause/crash faults model mesh congestion transients, cores held
    in an SMM handler, and cores dying outright.
    """

    #: Silently discard one protocol flag write (the receiving MPB line is
    #: never updated and no poll watcher wakes -- a lost notification).
    DROP_FLAG_WRITE = "drop_flag_write"
    #: Deliver one protocol flag write with its bytes inverted.
    CORRUPT_FLAG_WRITE = "corrupt_flag_write"
    #: Silently discard one payload (data) MPB write.
    DROP_DATA_WRITE = "drop_data_write"
    #: Delay one MPB transaction by ``duration`` (a transient mesh-link
    #: stall on the access path).
    LINK_STALL = "link_stall"
    #: Freeze a core for ``duration`` at its nth timed operation.
    CORE_PAUSE = "core_pause"
    #: Kill a core at its nth timed operation; every later operation of
    #: that core raises :class:`repro.sim.FaultInjected`.
    CORE_CRASH = "core_crash"


#: Counter category each kind matches against (see :class:`FaultInjector`).
CATEGORY_OF = {
    FaultKind.DROP_FLAG_WRITE: "flag_write",
    FaultKind.CORRUPT_FLAG_WRITE: "flag_write",
    FaultKind.DROP_DATA_WRITE: "data_write",
    FaultKind.LINK_STALL: "mpb_access",
    FaultKind.CORE_PAUSE: "core_op",
    FaultKind.CORE_CRASH: "core_op",
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``nth`` is the 1-based occurrence of the matching operation at which
    the fault fires (each spec fires at most once).  ``core`` narrows the
    match: for write faults it is the *destination* (MPB owner) core, for
    stalls the *accessing* core, for pause/crash the victim core; ``None``
    matches any core and counts occurrences globally.
    """

    kind: FaultKind
    nth: int = 1
    core: int | None = None
    #: Stall/pause length in microseconds (stall and pause kinds only).
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        needs_duration = self.kind in (FaultKind.LINK_STALL, FaultKind.CORE_PAUSE)
        if needs_duration and self.duration == 0.0:
            raise ValueError(f"{self.kind.value} needs a positive duration")
        if self.kind in (FaultKind.CORE_PAUSE, FaultKind.CORE_CRASH) and self.core is None:
            raise ValueError(f"{self.kind.value} needs an explicit victim core")

    @property
    def category(self) -> str:
        return CATEGORY_OF[self.kind]

    @property
    def site(self) -> str:
        where = "*" if self.core is None else f"core{self.core}"
        return f"{self.kind.value}@{where}#{self.nth}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults for one run."""

    specs: tuple[FaultSpec, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def describe(self) -> str:
        if not self.specs:
            return self.label or "no faults"
        body = ", ".join(s.site for s in self.specs)
        return f"{self.label}: {body}" if self.label else body


#: Convenience: the empty plan (used for profiling / fault-free runs).
NO_FAULTS = FaultPlan()
