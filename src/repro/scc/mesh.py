"""The 2D-mesh network-on-chip: coordinates, X-Y routing, distances, links.

Distance convention (matches the paper's Figure 3 x-axes): the hop count
``d`` between a core and a target MPB or memory controller is the number
of routers a packet traverses, i.e. ``manhattan(src_tile, dst_tile) + 1``.
Accessing the MPB of the *other core on the same tile* therefore has
``d = 1`` (through the local router), and the maximum on the 6x4 SCC mesh
is ``5 + 3 + 1 = 9``.

Memory controllers sit at the four mesh corners; each core uses the
controller of its quadrant, which bounds the memory distance to 4 on the
SCC -- again matching Figure 3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..sim import Resource, Simulator
from .config import SccConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

Coord = tuple[int, int]


class Mesh:
    """Geometry and (optionally) link-occupancy model of the NoC."""

    def __init__(self, sim: Simulator, config: SccConfig) -> None:
        self.sim = sim
        self.config = config
        self.cols = config.mesh_cols
        self.rows = config.mesh_rows
        #: Set by FaultInjector.attach; source of transient link stalls.
        self.injector: "FaultInjector | None" = None
        self._links: dict[tuple[Coord, Coord], Resource] = {}
        if config.model_links:
            for src in self.tiles():
                for dst in self._neighbours(src):
                    self._links[(src, dst)] = Resource(
                        sim, capacity=1, name=f"link{src}->{dst}"
                    )
        # Memory controllers at the four corners (two per vertical edge on
        # the real chip; corners give the same quadrant distances).
        self.mc_tiles: tuple[Coord, ...] = tuple(
            sorted({
                (0, 0),
                (self.cols - 1, 0),
                (0, self.rows - 1),
                (self.cols - 1, self.rows - 1),
            })
        )
        # The mesh is static after construction: precompute per-core
        # geometry so the hot paths (core_distance per MPB transaction,
        # mem_distance per memory op) are table lookups, not arithmetic
        # plus validation.
        cpt = config.cores_per_tile
        self._core_tiles: tuple[Coord, ...] = tuple(
            ((cid // cpt) % self.cols, (cid // cpt) // self.cols)
            for cid in range(config.num_cores)
        )
        self._mc_tile_of_core: tuple[Coord, ...] = tuple(
            min(
                self.mc_tiles,
                key=lambda mc, t=tile: (abs(t[0] - mc[0]) + abs(t[1] - mc[1]), mc),
            )
            for tile in self._core_tiles
        )
        self._mem_dist: tuple[int, ...] = tuple(
            abs(t[0] - mc[0]) + abs(t[1] - mc[1]) + 1
            for t, mc in zip(self._core_tiles, self._mc_tile_of_core)
        )
        # Lazy caches for X-Y routes (tile-pair keyed; filled on demand so
        # large scaled-up meshes never pay a quadratic precompute).
        self._route_cache: dict[tuple[Coord, Coord], list[Coord]] = {}
        self._path_links_cache: dict[tuple[Coord, Coord], list[tuple[Coord, Coord]]] = {}
        self._path_resources: dict[tuple[Coord, Coord], tuple[Resource, ...]] = {}

    # -- geometry -----------------------------------------------------------

    def tiles(self) -> Iterator[Coord]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield (x, y)

    def tile_of_core(self, core_id: int) -> Coord:
        """Tile coordinate of a core (cores are numbered tile-major)."""
        self._check_core(core_id)
        return self._core_tiles[core_id]

    def cores_of_tile(self, tile: Coord) -> tuple[int, ...]:
        x, y = tile
        base = (y * self.cols + x) * self.config.cores_per_tile
        return tuple(range(base, base + self.config.cores_per_tile))

    def manhattan(self, a: Coord, b: Coord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def core_distance(self, src_core: int, dst_core: int) -> int:
        """Routers traversed by a packet from ``src_core`` to the MPB of
        ``dst_core`` (>= 1 even on the same tile: the local router is used
        because direct local-MPB access is buggy on real silicon)."""
        tiles = self._core_tiles
        n = len(tiles)
        if not (0 <= src_core < n and 0 <= dst_core < n):
            self._check_core(src_core)
            self._check_core(dst_core)
        a = tiles[src_core]
        b = tiles[dst_core]
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) + 1

    def mc_tile_of_core(self, core_id: int) -> Coord:
        """The memory controller serving this core: nearest corner, ties
        broken toward the lower-left (deterministic quadrant split)."""
        self._check_core(core_id)
        return self._mc_tile_of_core[core_id]

    def mem_distance(self, core_id: int) -> int:
        """Routers traversed to reach the core's memory controller."""
        self._check_core(core_id)
        return self._mem_dist[core_id]

    # -- X-Y routing ---------------------------------------------------------

    def route(self, src: Coord, dst: Coord) -> list[Coord]:
        """Tiles visited from ``src`` to ``dst`` under X-Y routing,
        inclusive of both endpoints (cached: the mesh is static)."""
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return list(cached)
        self._check_tile(src)
        self._check_tile(dst)
        path = [src]
        x, y = src
        step = 1 if dst[0] > x else -1
        while x != dst[0]:
            x += step
            path.append((x, y))
        step = 1 if dst[1] > y else -1
        while y != dst[1]:
            y += step
            path.append((x, y))
        self._route_cache[(src, dst)] = path
        return list(path)

    def path_links(self, src: Coord, dst: Coord) -> list[tuple[Coord, Coord]]:
        """Directed links crossed on the X-Y route from src to dst."""
        cached = self._path_links_cache.get((src, dst))
        if cached is None:
            path = self.route(src, dst)
            cached = list(zip(path, path[1:]))
            self._path_links_cache[(src, dst)] = cached
        return list(cached)

    def links(self) -> tuple[Resource, ...]:
        """All directed-link resources (empty unless ``model_links``), in
        deterministic construction order."""
        return tuple(self._links.values())

    def link_items(self) -> tuple[tuple[tuple[Coord, Coord], Resource], ...]:
        """(directed link key, resource) pairs for metrics harvesting."""
        return tuple(self._links.items())

    def link(self, src: Coord, dst: Coord) -> Resource:
        """The :class:`Resource` modeling a directed link (requires
        ``config.model_links``)."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(
                f"no link {src}->{dst} (adjacent tiles only; "
                f"model_links={self.config.model_links})"
            ) from None

    def fault_stall(self, src_core: int, dst_core: int) -> float:
        """Extra delay injected on the mesh path of one MPB transaction
        (0.0 unless a fault injector has a matching LINK_STALL armed).
        Called by :meth:`repro.scc.core.Core.mpb_access` per transfer."""
        if self.injector is None:
            return 0.0
        return self.injector.link_stall(src_core, dst_core)

    def transfer_packet(self, src: Coord, dst: Coord):
        """Sub-generator: move one cache-line packet, occupying each link on
        the X-Y path for ``t_link``.  Only meaningful with link modeling on;
        hop *latency* is charged separately by the caller."""
        resources = self._path_resources.get((src, dst))
        if resources is None:
            links = self._links
            resources = tuple(links[ab] for ab in self.path_links(src, dst))
            self._path_resources[(src, dst)] = resources
        t_link = self.config.t_link
        for link in resources:
            yield from link.serve(t_link)

    # -- validation -----------------------------------------------------------

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.config.num_cores:
            raise ValueError(
                f"core id {core_id} out of range 0..{self.config.num_cores - 1}"
            )

    def _check_tile(self, tile: Coord) -> None:
        x, y = tile
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ValueError(f"tile {tile} outside {self.cols}x{self.rows} mesh")

    def _neighbours(self, tile: Coord) -> Iterator[Coord]:
        x, y = tile
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.cols and 0 <= ny < self.rows:
                yield (nx, ny)
