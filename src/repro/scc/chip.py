"""Chip assembly and SPMD execution.

:class:`SccChip` wires the simulator, mesh, MPBs and cores together.
:func:`run_spmd` launches one program per core -- the way every SCC
application (and every paper experiment) runs -- and returns per-core
results and finish times on the shared global clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence

from ..sim import Simulator, Tracer
from .config import SccConfig
from .core import Core
from .irq import IrqController
from .mesh import Mesh
from .mpb import Mpb


class SccChip:
    """A simulated SCC (or SCC-like many-core) chip.

    ``faults`` optionally attaches a :class:`repro.faults.FaultInjector`
    whose plan the chip models consult (dropped/corrupted MPB writes,
    link stalls, core pauses/crashes); ``None`` means no injection and
    zero overhead beyond one attribute check per protocol operation.

    ``metrics`` optionally attaches a :class:`repro.obs.MetricsRegistry`.
    Attaching one wires shared wait histograms onto the MPB ports (one
    ``is not None`` branch per grant) and lets protocol layers count
    events; everything else is harvested passively after the run via
    :func:`repro.obs.collect_chip_metrics`, so enabling metrics never
    schedules an event and virtual-time results stay bit-identical.
    """

    def __init__(
        self,
        config: SccConfig | None = None,
        *,
        tracer: Tracer | None = None,
        faults: "Any | None" = None,
        metrics: "Any | None" = None,
    ) -> None:
        self.config = config or SccConfig()
        self.sim = Simulator()
        # `is not None` matters: an empty Tracer is falsy (it has __len__).
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.faults = None  # set by FaultInjector.attach below
        self.metrics = metrics
        self.mesh = Mesh(self.sim, self.config)
        self.mpbs = [
            Mpb(self.sim, self.config, owner=i) for i in range(self.config.num_cores)
        ]
        self.cores = [Core(self, i) for i in range(self.config.num_cores)]
        self.irq = IrqController(self)
        if faults is not None:
            faults.attach(self)
        if metrics is not None:
            port_hist = metrics.histogram("mpb.port.wait_us")
            for mpb in self.mpbs:
                mpb.port.wait_hist = port_hist
            link_hist = metrics.histogram("mesh.link.wait_us")
            for link in self.mesh.links():
                link.wait_hist = link_hist

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    @property
    def now(self) -> float:
        return self.sim.now

    def trace(self, source: str, kind: str, **detail: Any) -> None:
        self.tracer.emit(self.sim.now, source, kind, **detail)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SccChip {self.config.mesh_cols}x{self.config.mesh_rows} mesh, "
            f"{self.num_cores} cores, t={self.sim.now:.3f}>"
        )


#: An SPMD program: takes the core it runs on, yields simulation events.
Program = Callable[[Core], Generator]


@dataclass(frozen=True)
class SpmdResult:
    """Outcome of one SPMD run.

    ``values[i]`` / ``finish_times[i]`` correspond to ``cores[i]`` of the
    participating subset (chip core ids in ``core_ids``).
    """

    core_ids: tuple[int, ...]
    values: tuple[Any, ...]
    finish_times: tuple[float, ...]
    start_time: float
    end_time: float

    @property
    def makespan(self) -> float:
        """Time from collective start to the last core finishing."""
        return self.end_time - self.start_time

    def value_of(self, core_id: int) -> Any:
        return self.values[self.core_ids.index(core_id)]

    def finish_of(self, core_id: int) -> float:
        return self.finish_times[self.core_ids.index(core_id)]


def run_spmd(
    chip: SccChip,
    program: Program,
    core_ids: Sequence[int] | None = None,
) -> SpmdResult:
    """Run ``program`` on every core in ``core_ids`` (default: all) until
    all instances return.  The chip's clock keeps advancing across calls,
    so repeated collectives on one chip model a long-running application.
    """
    ids = tuple(core_ids) if core_ids is not None else tuple(range(chip.num_cores))
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate core ids in SPMD launch")
    start = chip.sim.now
    finish: dict[int, float] = {}

    def wrap(core: Core) -> Generator:
        value = yield from program(core)
        finish[core.id] = chip.sim.now
        return value

    procs = [
        chip.sim.process(wrap(chip.cores[i]), name=f"spmd-core{i}") for i in ids
    ]
    chip.sim.run()
    return SpmdResult(
        core_ids=ids,
        values=tuple(p.value for p in procs),
        finish_times=tuple(finish[i] for i in ids),
        start_time=start,
        end_time=max(finish.values()) if finish else start,
    )
