"""Private off-chip memory, bump allocation, and a small L1 model.

Each core owns a private slice of the off-chip DRAM behind its quadrant's
memory controller.  The paper's configuration gives every core its own
memory rank, so DRAM itself is contention-free (Section 3.3 cites [30]);
what we model is the per-cache-line *cost* of reaching it (Formulas 4-6)
and the P54C L1, whose hits make re-reads nearly free -- the effect the
paper folds into Formula 14 ("we approximate reading from the L1 cache
with zero cost").
"""

from __future__ import annotations

from collections import OrderedDict

from .config import CACHE_LINE, SccConfig


class L1Cache:
    """Presence-only LRU cache model at cache-line granularity.

    We track only which line addresses are resident; data always lives in
    the backing :class:`PrivateMemory` (conceptually write-through, which
    matches the model's choice to keep ``o_mem_w`` on every write).
    """

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ValueError("L1 capacity must be >= 1 line")
        self.capacity = capacity_lines
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, line_addr: int) -> bool:
        """Touch one line; returns True on hit.  Misses allocate (LRU)."""
        if line_addr in self._lines:
            self._lines.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        self._lines[line_addr] = None
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
        return False

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def invalidate(self) -> None:
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)


class MemRef:
    """A handle to a contiguous buffer in one core's private memory.

    Programs pass ``MemRef``s to put/get; slicing (:meth:`sub`) lets
    algorithms address chunks without arithmetic on raw offsets.
    """

    __slots__ = ("memory", "offset", "nbytes", "_lines")

    def __init__(self, memory: "PrivateMemory", offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > memory.size:
            raise IndexError(
                f"MemRef [{offset}, {offset + nbytes}) outside memory of core "
                f"{memory.owner} (size {memory.size})"
            )
        self.memory = memory
        self.offset = offset
        self.nbytes = nbytes
        self._lines: range | None = None

    @property
    def owner(self) -> int:
        return self.memory.owner

    def sub(self, offset: int, nbytes: int) -> "MemRef":
        """A sub-buffer at ``offset`` within this buffer."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise IndexError(
                f"sub-ref [{offset}, {offset + nbytes}) outside buffer of "
                f"{self.nbytes} bytes"
            )
        return MemRef(self.memory, self.offset + offset, nbytes)

    def read(self) -> bytes:
        return self.memory.read_bytes(self.offset, self.nbytes)

    def write(self, payload: bytes | bytearray | memoryview) -> None:
        if len(payload) > self.nbytes:
            raise IndexError(
                f"payload of {len(payload)} bytes exceeds buffer of {self.nbytes}"
            )
        self.memory.write_bytes(self.offset, payload)

    def line_addrs(self) -> range:
        """Cache-line addresses covered by this buffer (cached: the span
        is immutable)."""
        lines = self._lines
        if lines is None:
            first = self.offset // CACHE_LINE
            last = (self.offset + self.nbytes - 1) // CACHE_LINE if self.nbytes else first - 1
            lines = self._lines = range(first, last + 1)
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemRef core{self.owner} [{self.offset}:{self.offset + self.nbytes}]>"


class PrivateMemory:
    """One core's private off-chip memory with a bump allocator."""

    def __init__(self, config: SccConfig, owner: int) -> None:
        self.config = config
        self.owner = owner
        self.data = bytearray()  # grows on demand up to the configured cap
        self._next = 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def capacity(self) -> int:
        return self.config.private_mem_bytes

    def alloc(self, nbytes: int, align: int = CACHE_LINE) -> MemRef:
        """Allocate a cache-line-aligned buffer; grows the backing store on
        demand up to ``config.private_mem_bytes``."""
        if nbytes < 0:
            raise ValueError("allocation size must be >= 0")
        start = -(-self._next // align) * align
        end = start + nbytes
        if end > self.capacity:
            raise MemoryError(
                f"core {self.owner}: allocation of {nbytes} bytes exceeds the "
                f"{self.capacity}-byte private memory"
            )
        if end > len(self.data):
            self.data.extend(bytearray(end - len(self.data)))
        self._next = end
        return MemRef(self, start, nbytes)

    def reset(self) -> None:
        """Release all allocations (buffers become dangling)."""
        self._next = 0

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        return bytes(self.data[offset : offset + nbytes])

    def write_bytes(self, offset: int, payload: bytes | bytearray | memoryview) -> None:
        self.data[offset : offset + nbytes_of(payload)] = payload


def nbytes_of(payload: bytes | bytearray | memoryview) -> int:
    return len(payload)
