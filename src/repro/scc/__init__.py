"""Discrete-event model of the Intel Single-Chip Cloud Computer.

The chip is assembled by :class:`SccChip` from a :class:`SccConfig`:

- 24 tiles on a 6x4 2D mesh, 2 cores per tile (48 cores by default; other
  mesh sizes are supported for scaling studies),
- one 8 KB message-passing buffer (MPB) per core, readable and writable by
  every core over the mesh (RMA),
- X-Y virtual cut-through routing with per-hop latency and optional
  per-link occupancy modeling,
- four memory controllers at the mesh corners serving each core's private
  off-chip memory, fronted by a small per-core L1 model.

Timing constants default to the values the paper measured on real silicon
(its Table 1); see :class:`SccConfig` for the full knob list.
"""

from .config import ContentionMode, SccConfig, resolve_contention_mode
from .chip import SccChip, SpmdResult, run_spmd
from .irq import IrqController
from .core import Core
from .memory import L1Cache, MemRef, PrivateMemory
from .mesh import Mesh
from .mpb import Mpb
from .analytic import AnalyticEngine, AnalyticResult, AnalyticUnsupported

__all__ = [
    "AnalyticEngine",
    "AnalyticResult",
    "AnalyticUnsupported",
    "ContentionMode",
    "Core",
    "IrqController",
    "L1Cache",
    "MemRef",
    "Mesh",
    "Mpb",
    "PrivateMemory",
    "SccChip",
    "SccConfig",
    "SpmdResult",
    "resolve_contention_mode",
    "run_spmd",
]
