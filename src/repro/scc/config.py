"""Chip configuration and timing constants.

All times are in microseconds, matching the paper's Table 1.  The default
values ARE Table 1; the extra microarchitectural constants (port service
time, link occupancy, poll cost, jitter) are the calibration knobs that
make the *emergent* behaviours (Figure 4 contention knees, notification
polling overheads) come out at the paper's scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

#: Bytes per cache line -- the unit of every SCC mesh transaction.
CACHE_LINE = 32

#: MPB size per core in bytes (16 KB per tile, split between the 2 cores).
MPB_BYTES = 8192

#: MPB size per core in cache lines.
MPB_LINES = MPB_BYTES // CACHE_LINE  # 256


class ContentionMode(enum.Enum):
    """Fidelity of MPB-port / mesh-link contention modeling.

    EXACT
        Every cache line of a transfer arbitrates for the target MPB port
        individually (and for mesh links when link modeling is on).  Most
        faithful; O(message lines) events per transfer.  Used for the
        Figure 4 contention study.
    BATCH
        A transfer acquires the target MPB port once and holds it for
        ``lines * t_mpb_port``.  Preserves saturation knees and ordering
        effects at a fraction of the event count.  The default.
    IDEAL
        No port or link queueing at all; timing is exactly the analytic
        Formulas 1-12.  Used to cross-validate the LogP model.
    ANALYTIC
        IDEAL timing evaluated *without the event kernel*: benchmark and
        campaign entry points that recognise this mode hand whole
        broadcasts (or whole batches of them) to
        :class:`repro.scc.analytic.AnalyticEngine`, which replays the
        protocol's closed-form recurrence in numpy -- bit-identical to
        an IDEAL simulation, orders of magnitude faster.  Code that
        *does* run the event kernel under this mode (e.g. a fault-plan
        replay inside an adaptive-fidelity campaign) gets IDEAL
        per-primitive timing.
    """

    EXACT = "exact"
    BATCH = "batch"
    IDEAL = "ideal"
    ANALYTIC = "analytic"


def resolve_contention_mode(name: "str | ContentionMode") -> ContentionMode:
    """The one place mode strings become :class:`ContentionMode`.

    Accepts an existing enum member or any case-insensitive value string
    (``"exact"``, ``"batch"``, ``"ideal"``, ``"analytic"``); every CLI
    subcommand and config loader resolves through here so the accepted
    spellings (and the error message) cannot drift apart.
    """
    if isinstance(name, ContentionMode):
        return name
    try:
        return ContentionMode(str(name).strip().lower())
    except ValueError:
        choices = "/".join(m.value for m in ContentionMode)
        raise ValueError(
            f"unknown contention mode {name!r}: expected one of {choices}"
        ) from None


@dataclass(frozen=True)
class SccConfig:
    """Full parameterisation of the simulated chip.

    The defaults describe the real SCC with the paper's measured constants;
    ``mesh_cols``/``mesh_rows`` may be raised for many-core scaling studies
    (cores = 2 * cols * rows).
    """

    # --- geometry ---------------------------------------------------------
    mesh_cols: int = 6
    mesh_rows: int = 4
    cores_per_tile: int = 2
    mpb_bytes: int = MPB_BYTES
    #: Private off-chip memory per core (bytes); grows on demand.
    private_mem_bytes: int = 16 * 1024 * 1024

    # --- Table 1 constants (microseconds) ----------------------------------
    #: Per-router traversal time of one cache-line packet.
    l_hop: float = 0.005
    #: Core overhead of one cache-line MPB read or write.
    o_mpb: float = 0.126
    #: Overhead of writing one cache line to off-chip memory.
    o_mem_w: float = 0.461
    #: Overhead of reading one cache line from off-chip memory.
    o_mem_r: float = 0.208
    #: Fixed call overhead of put() with an MPB source.
    o_put_mpb: float = 0.069
    #: Fixed call overhead of get() with an MPB destination.
    o_get_mpb: float = 0.33
    #: Fixed call overhead of put() with an off-chip source.
    o_put_mem: float = 0.19
    #: Fixed call overhead of get() with an off-chip destination.
    o_get_mem: float = 0.095

    # --- microarchitectural calibration knobs -------------------------------
    #: Time one cache-line *read* occupies the target MPB's port.  The
    #: default puts the saturation knee of 128-CL concurrent gets at ~24
    #: accessors, where the paper first measures contention (Section 3.3).
    t_mpb_port: float = 0.0126
    #: Time one cache-line *write* occupies the target MPB's port (commit
    #: plus acknowledgment generation).  Writes hold the port longer,
    #: which is why Figure 4b's concurrent 1-line puts show a stronger
    #: knee and >4x unfairness at 48 cores.
    t_mpb_port_write: float = 0.016
    #: Retry amplification per hop: a request that lost port arbitration
    #: is NACKed and retried over the mesh, so its effective extra delay
    #: is its queueing delay scaled by ``t_retry_per_hop * distance``
    #: (EXACT mode only).  Source of Figure 4's >4x put unfairness.
    t_retry_per_hop: float = 0.25
    #: Time one cache-line packet occupies a mesh link (32 B at ~16 GB/s).
    #: Small enough that the mesh never saturates at SCC scale (Section 3.3).
    t_link: float = 0.002
    #: Cost of polling one flag (an L1-invalidate plus local-MPB cache-line
    #: read, so roughly two o_mpb).  A core waiting on n flags notices a
    #: newly set flag only at its next sweep, i.e. up to ``n * t_poll``
    #: late -- the paper's "k=47 polling" effect.
    t_poll: float = 0.25
    #: L1 hit cost per cache line for private-memory reads (approximately
    #: zero in the paper's Formula 14 cache refinement).
    t_l1_hit: float = 0.005
    #: Cost of raising an inter-processor interrupt (remote config-register
    #: write issued by the sender).
    t_ipi_send: float = 0.3
    #: Interrupt-entry cost at the receiving core (P54C exception entry is
    #: expensive -- why the paper's SPMD design polls flags instead).
    t_ipi_handler: float = 1.0
    #: L1 capacity in cache lines (16 KB data cache on the P54C).
    l1_lines: int = 512
    #: Uniform jitter (+/- fraction) applied to per-transfer core overheads
    #: to desynchronise lock-step SPMD loops, as real cores desynchronise.
    #: 0 disables jitter; benches that average over iterations enable it.
    jitter: float = 0.0
    #: Seed for the jitter RNG (determinism).
    seed: int = 0x5CC

    # --- behaviour switches -------------------------------------------------
    contention_mode: ContentionMode = ContentionMode.BATCH
    #: Model per-link occupancy (needed only for the mesh stress test).
    model_links: bool = False
    #: Model the per-core L1 over private memory (Formula 14's cache term).
    model_l1: bool = True
    #: EXACT mode only: coalesce uncontended runs of cache-line port cycles
    #: into one scheduled wake-up instead of per-line generator churn.
    #: Bit-identical to the per-line loop (falls back the moment another
    #: requester appears); off exists for A/B determinism checks.  Has no
    #: effect in BATCH/IDEAL modes or with ``model_links`` on.
    exact_coalescing: bool = True

    def __post_init__(self) -> None:
        if self.mesh_cols < 1 or self.mesh_rows < 1:
            raise ValueError("mesh must be at least 1x1")
        if self.cores_per_tile < 1:
            raise ValueError("cores_per_tile must be >= 1")
        if self.mpb_bytes % CACHE_LINE:
            raise ValueError("MPB size must be a multiple of the cache line")
        for name in (
            "l_hop", "o_mpb", "o_mem_w", "o_mem_r", "o_put_mpb",
            "o_get_mpb", "o_put_mem", "o_get_mem", "t_mpb_port",
            "t_mpb_port_write", "t_retry_per_hop", "t_link", "t_poll", "t_l1_hit",
            "t_ipi_send", "t_ipi_handler",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # --- derived ------------------------------------------------------------

    @property
    def num_tiles(self) -> int:
        return self.mesh_cols * self.mesh_rows

    @property
    def num_cores(self) -> int:
        return self.num_tiles * self.cores_per_tile

    @property
    def mpb_lines(self) -> int:
        return self.mpb_bytes // CACHE_LINE

    def with_(self, **changes: Any) -> "SccConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The configuration used throughout the paper's experiments.
DEFAULT_CONFIG = SccConfig()
