"""Per-core message-passing buffer: byte-accurate storage + access port.

Every core owns one MPB (8 KB on the SCC).  All accesses -- by the owner
or by remote cores -- go through the buffer's single access port, which is
the contention point the paper measures in Figure 4: the port serves one
cache-line access at a time, each occupying it for ``t_mpb_port``.

The MPB also supports *write watchers*: a core polling a flag registers a
watcher on the flag's cache line and is woken when any write touches it.
The polling sweep cost itself is charged by the flag layer
(:mod:`repro.rcce.flags`); the watcher mechanism only keeps the event
count low (no busy-poll events while nothing changes).

Fault injection: *protocol* writes (those carrying ``source``/``op``
metadata -- flag and payload deposits from :mod:`repro.rcce`) pass
through the chip's :class:`repro.faults.FaultInjector` when one is
attached, and may be silently dropped (no byte change, no watcher
wake-up -- a lost notification) or corrupted.  Raw writes (test pokes,
initialisation) are never faulted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Event, Resource, Simulator
from .config import CACHE_LINE, SccConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector


class Mpb:
    """One core's message-passing buffer."""

    def __init__(self, sim: Simulator, config: SccConfig, owner: int) -> None:
        self.sim = sim
        self.config = config
        self.owner = owner
        self.data = bytearray(config.mpb_bytes)
        self.port = Resource(sim, capacity=1, name=f"mpb{owner}.port")
        # offset (line-aligned) -> list of pending wake events
        self._watchers: dict[int, list[Event]] = {}
        #: Set by FaultInjector.attach; consulted on protocol writes.
        self.injector: "FaultInjector | None" = None

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def lines(self) -> int:
        return len(self.data) // CACHE_LINE

    # -- storage --------------------------------------------------------------

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        self._check_range(offset, nbytes)
        return bytes(self.data[offset : offset + nbytes])

    def write_bytes(
        self,
        offset: int,
        payload: bytes | bytearray | memoryview,
        *,
        source: int | None = None,
        op: str = "raw",
    ) -> str:
        """Store ``payload`` at ``offset``.

        ``source`` (writing core id) and ``op`` (``"flag"`` / ``"data"``)
        classify protocol writes for fault injection; the default
        ``op="raw"`` marks untimed initialisation writes, which are never
        faulted.

        Returns the write's fate -- ``"ok"``, ``"dropped"`` or
        ``"corrupted"`` -- so callers can annotate trace records (the
        invariant checker keys off this to flag lost notifications).
        """
        nbytes = len(payload)
        self._check_range(offset, nbytes)
        if self.injector is not None and source is not None and op != "raw":
            action = self.injector.filter_mpb_write(
                owner=self.owner, offset=offset, nbytes=nbytes, source=source, op=op
            )
            if action == "drop":
                return "dropped"
            if action == "corrupt":
                payload = bytes(b ^ 0xFF for b in bytes(payload))
                self.data[offset : offset + nbytes] = payload
                self._wake_watchers(offset, nbytes)
                return "corrupted"
        self.data[offset : offset + nbytes] = payload
        self._wake_watchers(offset, nbytes)
        return "ok"

    # -- watchers ----------------------------------------------------------------

    def watch(self, offset: int) -> Event:
        """An event that fires at the next write touching the cache line
        containing ``offset``."""
        line = (offset // CACHE_LINE) * CACHE_LINE
        ev = Event(self.sim, f"mpb{self.owner}.watch@{line}")
        self._watchers.setdefault(line, []).append(ev)
        return ev

    def _wake_watchers(self, offset: int, nbytes: int) -> None:
        if not self._watchers:
            return
        first = (offset // CACHE_LINE) * CACHE_LINE
        last = ((offset + nbytes - 1) // CACHE_LINE) * CACHE_LINE
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            waiters = self._watchers.pop(line, None)
            if waiters:
                for ev in waiters:
                    if not ev.triggered:
                        ev.succeed(line)

    # -- validation -----------------------------------------------------------

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self.data):
            raise IndexError(
                f"MPB {self.owner}: access [{offset}, {offset + nbytes}) "
                f"outside 0..{len(self.data)}"
            )
