"""Inter-processor interrupts (IPIs).

The SCC can raise an interrupt on a remote core by writing that core's
configuration register through the mesh; the paper's Section 7 names
"parallel inter-core interrupts" as the mechanism for extending OC-Bcast
to MPMD programs, where receivers are not sitting in a matching
collective call.

Model: a sender pays ``t_ipi_send`` plus the mesh traversal to the
target; the interrupt lands in the target's vector queue and wakes its
handler (a waiting process) after ``t_ipi_handler`` -- interrupt entry on
the P54C costs on the order of a microsecond, which is exactly why the
paper's SPMD design polls flags instead.  Payloads model the small
message-identifying state a real implementation would place in a mailbox
register or MPB header line.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from .chip import SccChip
    from .core import Core


class IrqController:
    """Chip-wide IPI fabric: one vector queue per core."""

    def __init__(self, chip: "SccChip") -> None:
        self.chip = chip
        self._queues: list[deque[Any]] = [deque() for _ in range(chip.num_cores)]
        self._waiters: list[deque[Event]] = [deque() for _ in range(chip.num_cores)]
        self.sent = 0
        self.delivered = 0

    def send(self, sender: "Core", dst_core: int, payload: Any) -> Generator:
        """Raise an interrupt on ``dst_core`` carrying ``payload``."""
        chip = self.chip
        if not 0 <= dst_core < chip.num_cores:
            raise ValueError(f"core id {dst_core} outside chip")
        cfg = chip.config
        d = chip.mesh.core_distance(sender.id, dst_core)
        yield sender.compute(cfg.t_ipi_send + d * cfg.l_hop)
        self.sent += 1
        queue = self._queues[dst_core]
        queue.append(payload)
        waiters = self._waiters[dst_core]
        if waiters:
            waiters.popleft().succeed(None)
        chip.trace(f"core{sender.id}", "ipi", dst=dst_core, payload=payload)

    def wait(self, core: "Core") -> Generator[Event, object, Any]:
        """Block until an interrupt arrives; returns its payload after
        the handler-entry cost."""
        queue = self._queues[core.id]
        while not queue:
            ev = Event(core.sim, f"irq.wait(core{core.id})")
            self._waiters[core.id].append(ev)
            yield ev
        yield core.compute(core.config.t_ipi_handler)
        self.delivered += 1
        return queue.popleft()

    def pending(self, core_id: int) -> int:
        return len(self._queues[core_id])
