"""A P54C core: the timed cache-line primitives everything builds on.

The core executes one memory transaction at a time (the paper notes the
P54C cannot overlap them -- why LogP's ``g`` is unnecessary).  All timed
operations are generators driven with ``yield from``; their durations
implement Formulas 1-6 with the configured Table 1 constants, plus
queueing at the target MPB's port and (optionally) on mesh links.

Primitives:

- :meth:`mpb_access` -- read or write ``n`` cache lines of some core's MPB.
- :meth:`mem_read` / :meth:`mem_write` -- off-chip private memory, through
  the L1 model.
- :meth:`compute` -- plain local work.

Byte movement is done by the RCCE layer after/els alongside the timing;
the core layer deals in durations and arbitration only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from ..sim import Event
from .config import CACHE_LINE, ContentionMode, SccConfig
from .memory import L1Cache, MemRef, PrivateMemory

if TYPE_CHECKING:  # pragma: no cover
    from .chip import SccChip


def lines_of(nbytes: int) -> int:
    """Number of cache-line packets needed for ``nbytes`` of payload."""
    return -(-nbytes // CACHE_LINE)


class CoreStats:
    """Per-core virtual-time accounting, accrued by the timed primitives.

    Pure float/int accruals -- no events, no branching on configuration --
    so keeping them always-on cannot perturb the schedule.  Harvested by
    :func:`repro.obs.collect_chip_metrics` after a run.
    """

    __slots__ = (
        "compute_time", "mpb_lines", "mpb_time",
        "mem_lines", "mem_time", "polls", "poll_time",
    )

    def __init__(self) -> None:
        self.compute_time = 0.0  # local work (Core.compute)
        self.mpb_lines = 0       # cache lines moved through any MPB port
        self.mpb_time = 0.0      # elapsed virtual time inside mpb_access
        self.mem_lines = 0       # off-chip lines read or written
        self.mem_time = 0.0      # elapsed virtual time in mem_read/mem_write
        self.polls = 0           # flag-poll detections (rcce.flags)
        self.poll_time = 0.0     # charged polling-sweep time

    def as_dict(self) -> dict[str, float]:
        return {name: float(getattr(self, name)) for name in self.__slots__}


class Core:
    """One core of the simulated chip."""

    def __init__(self, chip: "SccChip", core_id: int) -> None:
        self.chip = chip
        self.sim = chip.sim
        self.config: SccConfig = chip.config
        self.id = core_id
        self.tile = chip.mesh.tile_of_core(core_id)
        self.mpb = chip.mpbs[core_id]
        self.mem = PrivateMemory(chip.config, core_id)
        self.l1: L1Cache | None = (
            L1Cache(chip.config.l1_lines) if chip.config.model_l1 else None
        )
        self.mem_dist = chip.mesh.mem_distance(core_id)
        # Independent, reproducible jitter stream per core.
        self.rng = np.random.default_rng(np.random.SeedSequence([chip.config.seed, core_id]))
        # Constant per-core costs, precomputed once (Formulas 5/6 depend
        # only on the core's memory-controller distance, fixed at build).
        cfg = chip.config
        self._mem_read_cost = cfg.o_mem_r + 2 * self.mem_dist * cfg.l_hop
        self._mem_write_cost = cfg.o_mem_w + 2 * self.mem_dist * cfg.l_hop
        #: Lazy per-target cache of (hop distance, uncontended MPB line
        #: cost) pairs (Formulas 2/3); fixed after construction.
        self._line_cost_to: dict[int, tuple[int, float]] = {}
        #: Virtual-time accounting (always on; see CoreStats).
        self.stats = CoreStats()

    # -- cost helpers --------------------------------------------------------

    def mpb_line_cost(self, d: int) -> float:
        """Round-trip cost of one cache-line MPB access at distance ``d``
        (Formulas 2/3: read and write-completion are both o_mpb + 2d*Lhop)."""
        return self.config.o_mpb + 2 * d * self.config.l_hop

    def mem_read_line_cost(self) -> float:
        """Off-chip read of one line, L1 miss (Formula 6)."""
        return self._mem_read_cost

    def mem_write_line_cost(self) -> float:
        """Off-chip write completion of one line (Formula 5)."""
        return self._mem_write_cost

    def jittered(self, t: float) -> float:
        """Apply the configured core-overhead jitter to a duration."""
        j = self.config.jitter
        if j <= 0.0 or t <= 0.0:
            return t
        return t * (1.0 + self.rng.uniform(-j, j))

    def _fault_overhead(self) -> float:
        """Consult the fault injector at the start of a timed primitive.

        Returns extra pause delay (CORE_PAUSE); raises
        :class:`repro.sim.FaultInjected` once this core has been crashed
        (CORE_CRASH) so the running program dies at its next operation.
        """
        inj = self.chip.faults
        if inj is None:
            return 0.0
        return inj.core_op(self.id)

    # -- timed primitives ------------------------------------------------------

    def compute(self, duration: float) -> Event:
        """Local work for ``duration`` microseconds (no arbitration)."""
        d = self.jittered(duration) + self._fault_overhead()
        self.stats.compute_time += d
        return self.sim.timeout(d)

    def mpb_access(
        self,
        target_core: int,
        n_lines: int,
        *,
        write: bool = False,
        extra_per_line: float = 0.0,
    ) -> Generator[Event, object, None]:
        """Access ``n_lines`` cache lines of ``target_core``'s MPB.

        Charges ``n * (o_mpb + 2d*Lhop + extra_per_line)`` and arbitrates
        the target MPB's port according to the contention mode.  Reads and
        writes have the same *completion cost* in the model (Formulas 2-3)
        but writes occupy the target port longer; callers move the bytes.
        """
        if n_lines <= 0:
            return
        cfg = self.config
        sim = self.sim
        stats = self.stats
        stats.mpb_lines += n_lines
        t0 = sim.now
        stall = self._fault_overhead() + self.chip.mesh.fault_stall(
            self.id, target_core
        )
        if stall > 0.0:
            yield sim.timeout(stall)
        cached = self._line_cost_to.get(target_core)
        if cached is None:
            d = self.chip.mesh.core_distance(self.id, target_core)
            cached = self._line_cost_to[target_core] = (d, self.mpb_line_cost(d))
        d, line_cost = cached
        per_line = self.jittered(line_cost + extra_per_line)
        service = cfg.t_mpb_port_write if write else cfg.t_mpb_port
        mode = cfg.contention_mode
        if mode is ContentionMode.IDEAL or mode is ContentionMode.ANALYTIC:
            # ANALYTIC runs that reach the kernel (fault replays inside an
            # adaptive-fidelity campaign) use IDEAL per-primitive timing;
            # the analytic engine replays exactly this arithmetic.
            yield sim.timeout(n_lines * per_line)
            stats.mpb_time += sim.now - t0
            return
        port = self.chip.mpbs[target_core].port
        if mode is ContentionMode.BATCH:
            # Inline of port.serve (one generator frame less per transfer).
            yield port.acquire()
            try:
                hold = n_lines * service
                if hold > 0:
                    yield sim.timeout(hold)
            finally:
                port.release()
            rest = n_lines * (per_line - service)
            if rest > 0:
                yield sim.timeout(rest)
            stats.mpb_time += sim.now - t0
            return
        # EXACT: per-line arbitration (and per-line link occupancy).  The
        # port arbiter structurally favours mesh-closer requesters -- the
        # source of the persistent per-core unfairness of Figure 4.
        walk_links = cfg.model_links
        rest = max(0.0, per_line - service)
        retry_factor = cfg.t_retry_per_hop * d
        priority = float(d)
        if walk_links:
            src_tile = self.tile
            dst_tile = self.chip.mesh.tile_of_core(target_core)
        # Contention-aware coalescing: while the target port is idle, an
        # uncontended run of lines is charged in a single wake-up; any
        # other requester aborts the run at a line boundary and the loop
        # falls back to per-line arbitration (bit-identical either way --
        # see Resource.try_begin_run and docs/PERFORMANCE.md).
        coalesce = cfg.exact_coalescing and not walk_links
        i = 0
        while i < n_lines:
            if coalesce:
                run_ev = port.try_begin_run(n_lines - i, service, rest)
                if run_ev is not None:
                    lines_done = yield run_ev
                    i += lines_done
                    continue
            if walk_links:
                # Occupy links on the data-carrying direction.
                yield from self.chip.mesh.transfer_packet(src_tile, dst_tile)
            # Inline of port.serve(service, priority) -- saves a generator
            # frame per cache line on the hottest path in the simulator.
            waited = yield port.acquire(priority)
            try:
                if service > 0:
                    yield sim.timeout(service)
            finally:
                port.release()
            if waited > 0.0 and retry_factor > 0.0:
                # A request that lost arbitration was NACKed and retried
                # over the full mesh path: the farther the core, the more
                # each lost race costs (Figure 4's distance unfairness).
                yield sim.timeout(waited * retry_factor)
            if rest > 0:
                yield sim.timeout(rest)
            i += 1
        stats.mpb_time += sim.now - t0

    def mem_read(self, ref: MemRef) -> Generator[Event, object, None]:
        """Read ``ref`` from private off-chip memory (through the L1)."""
        if ref.owner != self.id:
            raise ValueError(
                f"core {self.id} cannot access private memory of core {ref.owner}"
            )
        total = self._fault_overhead()
        lines = ref.line_addrs()  # computed once, reused below
        if self.l1 is not None:
            hit_cost = self.config.t_l1_hit
            miss_cost = self._mem_read_cost
            access = self.l1.access
            for line in lines:
                total += hit_cost if access(line) else miss_cost
        else:
            total += len(lines) * self._mem_read_cost
        total = self.jittered(total)
        self.stats.mem_lines += len(lines)
        self.stats.mem_time += total
        if total > 0:
            yield self.sim.timeout(total)

    def mem_write(self, ref: MemRef) -> Generator[Event, object, None]:
        """Write ``ref`` to private off-chip memory (write-allocate)."""
        if ref.owner != self.id:
            raise ValueError(
                f"core {self.id} cannot access private memory of core {ref.owner}"
            )
        lines = ref.line_addrs()  # computed once, reused below
        if self.l1 is not None:
            access = self.l1.access
            for line in lines:
                access(line)
        total = self.jittered(len(lines) * self._mem_write_cost + self._fault_overhead())
        self.stats.mem_lines += len(lines)
        self.stats.mem_time += total
        if total > 0:
            yield self.sim.timeout(total)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Core {self.id} tile={self.tile}>"
