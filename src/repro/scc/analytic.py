"""ANALYTIC mode: whole-broadcast evaluation without the event kernel.

The discrete-event simulator exists to model *contention*; with
contention off (``ContentionMode.IDEAL``) every primitive's duration is a
closed-form expression in the Table-1 constants (Formulas 1-12) and the
protocol's schedule is a deterministic dependency graph over them.  This
module evaluates that graph directly: an :class:`AnalyticEngine` caches
the chip geometry (hop-distance matrix, per-line MPB/memory costs) and
the OC-Bcast tree schedule once, then *replays* the protocol as a
per-rank clock recurrence -- chunk by chunk, tree level by tree level --
entirely in numpy, vectorised over a whole batch of message sizes at
once.  No simulator processes, no event queue, no byte movement.

The replay reproduces the IDEAL-mode simulator **bit-exactly** (the test
suite asserts float equality): every ``yield timeout(d)`` of the
simulated protocol corresponds to one addition to the rank's clock lane,
performed in the same order with the same operands, including the
polling cost model of :func:`repro.rcce.flags.wait_local_flags` --

- a waiter entering at ``T`` pays one ``t_poll`` entry charge and
  returns at ``T + t_poll`` when the awaited write already landed;
- otherwise it sleeps until the satisfying write lands at ``W`` and
  returns at ``W + (0.5 * nscan + 1) * t_poll`` (the sweep detection
  charge) --

and the L1 model (every staged line is a cold miss within a broadcast,
accumulated in the simulator's loop order).  Because EXACT-mode port
queueing perturbs OC-Bcast latency by under ~1.2% at SCC scale (the tree
fan-out is chosen *below* the contention knee -- Section 3.3 of the
paper), the analytic result also tracks EXACT mode within the 2% bound
that :mod:`tests.test_analytic` enforces on every sweep point.

Scope: the plain and FT (acked-flag) OC-Bcast protocols, FLAGS or
INTERRUPT notification, leaf-direct fetch, any tree order, any geometry,
``jitter == 0``.  Anything the engine cannot express exactly --
jitter, integrity headers, service/byz rounds, fault plans -- raises
:class:`AnalyticUnsupported` so callers fall back to the event kernel;
the adaptive-fidelity campaign scheduler
(:meth:`repro.bench.FaultCampaign.run_trials`) is built on exactly that
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.trees import NotificationTree, PropagationTree
from .config import CACHE_LINE, SccConfig
from .mesh import Mesh

__all__ = [
    "AnalyticEngine",
    "AnalyticResult",
    "AnalyticUnsupported",
    "analytic_supported",
]


class AnalyticUnsupported(RuntimeError):
    """The requested configuration needs the event kernel.

    Raised when a config or protocol option falls outside what the
    closed-form replay models exactly (jitter, integrity/service modes,
    FT poll budgets that a fault-free wait would overrun, non-OC
    algorithms).  Callers treat this as "run the simulator instead".
    """


def analytic_supported(config: SccConfig) -> str | None:
    """Why ``config`` cannot be evaluated analytically (None when it can)."""
    if config.jitter != 0.0:
        return "jitter desynchronises cores; only the event kernel models it"
    return None


@dataclass(frozen=True)
class AnalyticResult:
    """One analytically evaluated broadcast experiment.

    Mirrors :class:`repro.bench.harness.BcastResult`'s measurement
    surface (per-iteration latencies, steady-state span) and adds the
    per-rank completion times and the counter summary the simulator
    would have accumulated in its metrics registry.
    """

    nbytes: int
    latencies: tuple[float, ...]
    #: Per-rank broadcast-return times (last measured iteration), on the
    #: same global clock the simulator's trace records use.
    completion_times: tuple[float, ...]
    #: Root's entry time into the first measured iteration.
    enter_time: float
    #: Root enters first measured iteration -> last rank leaves last one.
    measured_span: float
    #: The counters an IDEAL simulation of the same run would report
    #: (``oc.bcasts``, ``oc.chunks``, ``oc.bytes``, ``flags.writes``,
    #: ``rcce.puts/gets/put_bytes/get_bytes``).
    metrics: dict[str, float]

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies))

    @property
    def min_latency(self) -> float:
        return float(np.min(self.latencies))

    @property
    def throughput_mb_s(self) -> float:
        return self.nbytes / self.mean_latency if self.mean_latency else 0.0

    @property
    def steady_throughput_mb_s(self) -> float:
        if self.measured_span <= 0.0:
            return 0.0
        return len(self.latencies) * self.nbytes / self.measured_span

    @property
    def cache_lines(self) -> int:
        return -(-self.nbytes // CACHE_LINE)


class AnalyticEngine:
    """Closed-form OC-Bcast evaluator over cached geometry.

    Construction precomputes everything that depends only on the chip
    and the tree -- the (P, P) per-line MPB cost matrix, per-core memory
    costs, the cold-miss read-accumulation table, and the per-position
    notification/relay schedule -- so each :meth:`evaluate` call is pure
    array arithmetic.  One engine is reusable across any number of
    evaluations, like one :class:`repro.core.OcBcast` instance is
    reusable across broadcasts.
    """

    def __init__(
        self,
        config: SccConfig | None = None,
        *,
        k: int = 7,
        chunk_lines: int = 96,
        num_buffers: int = 2,
        notify_degree: int = 2,
        root: int = 0,
        order: Sequence[int] | None = None,
        leaf_direct_to_memory: bool = False,
        interrupt_notify: bool = False,
        irq_handler: float = 0.1,
        ft: bool = False,
        ft_ack_data: bool = False,
        ft_flag_timeout: float = 300.0,
        ft_notify_timeout: float = 10_000.0,
    ) -> None:
        cfg = config or SccConfig()
        reason = analytic_supported(cfg)
        if reason is not None:
            raise AnalyticUnsupported(reason)
        if k < 1 or chunk_lines < 1 or num_buffers < 1 or notify_degree < 1:
            raise ValueError("k, chunk_lines, num_buffers, notify_degree must be >= 1")
        self.config = cfg
        self.k = k
        self.chunk_lines = chunk_lines
        self.chunk_bytes = chunk_lines * CACHE_LINE
        self.num_buffers = num_buffers
        self.notify_degree = notify_degree
        self.root = root
        self.leaf_direct = leaf_direct_to_memory
        self.interrupt_notify = interrupt_notify
        self.irq_handler = irq_handler
        self.ft = ft
        self.ft_ack_data = ft_ack_data
        self.ft_flag_timeout = ft_flag_timeout
        self.ft_notify_timeout = ft_notify_timeout

        P = cfg.num_cores
        self.size = P
        self.tree = PropagationTree(
            P, k, root, tuple(order) if order else ()
        )

        # -- cached geometry (Formulas 2/3/5/6 as arrays) -------------------
        # The Mesh is the single source of geometric truth (MC placement,
        # the +1 local-router hop); links off means no simulator needed.
        mesh = Mesh(None, cfg.with_(model_links=False))
        tiles = np.array(
            [mesh.tile_of_core(c) for c in range(P)], dtype=np.int64
        )
        hops = (
            np.abs(tiles[:, None, 0] - tiles[None, :, 0])
            + np.abs(tiles[:, None, 1] - tiles[None, :, 1])
            + 1
        )
        #: (P, P) uncontended cost of one cache-line MPB access i -> j.
        self.line_cost = cfg.o_mpb + 2.0 * hops * cfg.l_hop
        mem_dist = np.array([mesh.mem_distance(c) for c in range(P)])
        self.mem_read_line = cfg.o_mem_r + 2.0 * mem_dist * cfg.l_hop
        self.mem_write_line = cfg.o_mem_w + 2.0 * mem_dist * cfg.l_hop
        # Cold-miss read totals, accumulated line by line exactly as
        # Core.mem_read's loop does (repeated float addition is not the
        # same float as multiplication; bit-exactness needs the loop).
        if cfg.model_l1:
            loop = np.empty((P, chunk_lines + 1))
            for r in range(P):
                acc, per = 0.0, float(self.mem_read_line[r])
                loop[r, 0] = 0.0
                for m in range(1, chunk_lines + 1):
                    acc += per
                    loop[r, m] = acc
            self._mem_read_loop: np.ndarray | None = loop
        else:
            self._mem_read_loop = None

        # -- cached schedule ------------------------------------------------
        # Per tree position: who I notify, who relays to me, my waits.
        # Positions are processed in index order each chunk, which is a
        # topological order of every intra-chunk dependency (parents and
        # notifier slots always have lower positions).
        t_poll = cfg.t_poll
        self._sched: list[dict] = []
        for pos in range(self.tree.size):
            r = self.tree.rank_at(pos)
            parent = self.tree.parent_of(r)
            children = self.tree.children_of(r)
            fam = NotificationTree(len(children), notify_degree)
            own_targets = [children[t - 1] for t in fam.notify_targets(0)]
            relay_targets: list[int] = []
            if parent is not None:
                siblings = self.tree.children_of(parent)
                my_slot = self.tree.child_index(r) + 1
                pfam = NotificationTree(len(siblings), notify_degree)
                relay_targets = [
                    siblings[t - 1] for t in pfam.notify_targets(my_slot)
                ]
            self._sched.append({
                "rank": r,
                "parent": parent,
                "children": children,
                "own_targets": own_targets,
                "relay_targets": relay_targets,
                # Detection charge of wait_local_flags, precomputed with
                # the simulator's exact expression.
                "done_detect": 0.5 * len(children) * t_poll + t_poll,
                "notify_detect": (
                    t_poll if interrupt_notify else 0.5 * 1 * t_poll + t_poll
                ),
                "is_leaf": not children,
            })

    # -- building blocks ----------------------------------------------------

    def _mem_read_total(self, rank: int, m: np.ndarray) -> np.ndarray:
        """Cold read of ``m`` lines from private memory (Formula 6 with
        the L1 model's loop accumulation)."""
        if self._mem_read_loop is not None:
            return self._mem_read_loop[rank][m]
        return m * float(self.mem_read_line[rank])

    def _wait(
        self,
        clk: np.ndarray,
        landed: np.ndarray,
        detect: float,
        active: np.ndarray,
        budget: float | None,
    ) -> np.ndarray:
        """Return time of a flag wait entered at ``clk`` whose satisfying
        write lands at ``landed`` (see the module docstring for the
        polling cost model).  ``budget`` is the FT poll budget the
        fault-free wait must respect -- overrunning it would trigger
        re-notification in the simulator, which the replay refuses to
        model rather than mismodel."""
        t_poll = self.config.t_poll
        entry = clk + t_poll
        if budget is not None:
            late = active & (landed > entry) & (landed > clk + budget)
            if bool(np.any(late)):
                raise AnalyticUnsupported(
                    f"a fault-free wait exceeds its {budget}-us FT poll "
                    f"budget at this scale; use the event kernel"
                )
        return np.where(landed <= entry, entry, landed + detect)

    def _flag_write(
        self,
        clk: np.ndarray,
        cost: float,
        land_col: np.ndarray,
        active: np.ndarray,
    ) -> np.ndarray:
        """One notify/done flag write at per-line cost ``cost``: the value
        lands after ``o_put_mpb + cost``; FT mode pays the readback ack
        (one more remote line) before the writer continues."""
        cfg = self.config
        clk = clk + cfg.o_put_mpb
        clk = clk + cost
        land_col[...] = np.where(active, clk, land_col)
        if self.ft:
            clk = clk + cost
        return clk

    # -- the replay ---------------------------------------------------------

    def _replay(
        self, sizes: np.ndarray, total_iters: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Replay ``total_iters`` back-to-back broadcasts for every batch
        lane; returns ``(enters, exits)`` of shapes ``(iters, B)`` (the
        root's entry per iteration) and ``(iters, B, P)``."""
        cfg = self.config
        P = self.size
        B = len(sizes)
        root = self.root
        nb = self.num_buffers
        enters = np.zeros((total_iters, B))
        exits = np.zeros((total_iters, B, P))
        if P == 1:
            return enters, exits  # bcast() returns immediately

        nchunks = -(-sizes // self.chunk_bytes)
        max_chunks = int(nchunks.max())
        clk = np.zeros((B, P))
        notify_land = np.zeros((B, P))
        ring = [np.zeros((B, P)) for _ in range(nb + 1)]
        last_done = np.zeros((B, P))
        line = self.line_cost
        ft_budget = self.ft_flag_timeout if self.ft else None
        notify_budget = self.ft_notify_timeout if self.ft else None

        for it in range(total_iters):
            enters[it] = clk[:, root]
            for idx in range(max_chunks):
                active = idx < nchunks
                if not bool(np.any(active)):
                    break
                span = np.clip(sizes - idx * self.chunk_bytes, 0, self.chunk_bytes)
                m = -(-span // CACHE_LINE)
                slot = ring[idx % (nb + 1)]
                recycle = ring[(idx - nb) % (nb + 1)] if idx >= nb else None
                for ent in self._sched:
                    r = ent["rank"]
                    parent = ent["parent"]
                    children = ent["children"]
                    c = clk[:, r]
                    if parent is None:
                        # -- root: (recycle) -> stage -> notify ------------
                        if children and recycle is not None:
                            W = recycle[:, children].max(axis=1)
                            c = self._wait(
                                c, W, ent["done_detect"], active, ft_budget
                            )
                        c = c + cfg.o_put_mem
                        if self.ft and self.ft_ack_data:
                            # put_acked: put + readback of the staged lines.
                            c = c + self._mem_read_total(r, m)
                            c = c + m * line[r, r]
                            c = c + m * line[r, r]
                        else:
                            c = c + self._mem_read_total(r, m)
                            c = c + m * line[r, r]
                        for t in ent["own_targets"]:
                            c = self._flag_write(
                                c, line[r, t], notify_land[:, t], active
                            )
                    else:
                        # -- node: wait -> relay -> (recycle) -> fetch ->
                        #    done -> notify -> copy out ---------------------
                        c = self._wait(
                            c, notify_land[:, r], ent["notify_detect"],
                            active, notify_budget,
                        )
                        if self.interrupt_notify:
                            c = c + self.irq_handler
                        for t in ent["relay_targets"]:
                            c = self._flag_write(
                                c, line[r, t], notify_land[:, t], active
                            )
                        if children and recycle is not None:
                            W = recycle[:, children].max(axis=1)
                            c = self._wait(
                                c, W, ent["done_detect"], active, ft_budget
                            )
                        if self.leaf_direct and ent["is_leaf"]:
                            # Section 5.4: straight to off-chip memory.
                            c = c + cfg.o_get_mem
                            c = c + m * line[r, parent]
                            c = c + m * float(self.mem_write_line[r])
                            c = self._flag_write(
                                c, line[r, parent], slot[:, r], active
                            )
                            last_done[:, r] = np.where(
                                active, slot[:, r], last_done[:, r]
                            )
                        else:
                            c = c + cfg.o_get_mpb
                            c = c + m * line[r, parent]
                            c = c + m * line[r, r]
                            if self.ft and self.ft_ack_data:
                                c = c + m * line[r, r]  # get_acked readback
                            c = self._flag_write(
                                c, line[r, parent], slot[:, r], active
                            )
                            last_done[:, r] = np.where(
                                active, slot[:, r], last_done[:, r]
                            )
                            for t in ent["own_targets"]:
                                c = self._flag_write(
                                    c, line[r, t], notify_land[:, t], active
                                )
                            c = c + cfg.o_get_mem
                            c = c + m * line[r, r]
                            c = c + m * float(self.mem_write_line[r])
                    clk[:, r] = np.where(active, c, clk[:, r])
            # Final buffer-drain wait: every rank with children waits for
            # their final-chunk doneFlags (all lanes had >= 1 chunk).
            every = np.ones(B, dtype=bool)
            for ent in self._sched:
                if not ent["children"]:
                    continue
                r = ent["rank"]
                W = last_done[:, ent["children"]].max(axis=1)
                clk[:, r] = self._wait(
                    clk[:, r], W, ent["done_detect"], every, ft_budget
                )
            exits[it] = clk
        return enters, exits

    # -- public API ---------------------------------------------------------

    def evaluate(
        self, nbytes: int, *, iters: int = 1, warmup: int = 0
    ) -> AnalyticResult:
        """Evaluate one broadcast experiment (same measurement protocol as
        :func:`repro.bench.run_broadcast`: ``warmup + iters`` back-to-back
        broadcasts on one chip, warm-ups discarded)."""
        return self.evaluate_batch([nbytes], iters=iters, warmup=warmup)[0]

    def evaluate_batch(
        self,
        sizes: Sequence[int],
        *,
        iters: int = 1,
        warmup: int = 0,
    ) -> list[AnalyticResult]:
        """Evaluate a whole batch of message sizes in one vectorised pass.

        Every batch lane is an independent experiment (its own chip, as
        :func:`sweep_broadcast` builds); lanes share the chunk-major
        evaluation loop, so the per-call overhead is paid once for the
        batch -- the reason dense sweeps are where the speedup lives.
        """
        if iters < 1 or warmup < 0:
            raise ValueError("need iters >= 1 and warmup >= 0")
        sizes_arr = np.asarray(list(sizes), dtype=np.int64)
        if sizes_arr.ndim != 1 or len(sizes_arr) == 0:
            raise ValueError("sizes must be a non-empty 1-D sequence")
        if bool(np.any(sizes_arr <= 0)):
            raise ValueError("every message size must be > 0")
        total = warmup + iters
        enters, exits = self._replay(sizes_arr, total)
        out: list[AnalyticResult] = []
        for b, nbytes in enumerate(sizes_arr.tolist()):
            lat = tuple(
                float(exits[i, b].max() - enters[i, b])
                for i in range(warmup, total)
            )
            out.append(AnalyticResult(
                nbytes=nbytes,
                latencies=lat,
                completion_times=tuple(exits[total - 1, b].tolist()),
                enter_time=float(enters[warmup, b]),
                measured_span=float(exits[total - 1, b].max() - enters[warmup, b]),
                metrics=self._metrics(nbytes, total),
            ))
        return out

    def _metrics(self, nbytes: int, iters: int) -> dict[str, float]:
        """The counters an IDEAL simulation of ``iters`` broadcasts would
        accumulate -- warm-ups included, as the kernel counts every
        protocol operation (validated against the simulator's
        :class:`~repro.obs.MetricsRegistry` in the test suite)."""
        P = self.size
        if P == 1:
            return {}
        nchunks = -(-nbytes // self.chunk_bytes)
        n_leaves = sum(1 for ent in self._sched if ent["is_leaf"])
        non_root = P - 1
        if self.leaf_direct:
            # Leaves fetch straight to memory: one get per chunk, payload
            # bytes only once.
            gets = (2 * (non_root - n_leaves) + n_leaves) * nchunks
            get_bytes = (2 * (non_root - n_leaves) + n_leaves) * nbytes
        else:
            gets = 2 * non_root * nchunks
            get_bytes = 2 * non_root * nbytes
        return {
            "oc.bcasts": float(iters),
            "oc.chunks": float(iters * nchunks),
            "oc.bytes": float(iters * nbytes),
            "flags.writes": float(iters * 2 * non_root * nchunks),
            "rcce.puts": float(iters * nchunks),
            "rcce.put_bytes": float(iters * nbytes),
            "rcce.gets": float(iters * gets),
            "rcce.get_bytes": float(iters * get_bytes),
        }
