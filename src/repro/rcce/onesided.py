"""One-sided put and get (the paper's Formulas 7-12).

``put`` moves data *from the calling core's* local MPB or private memory
*to any core's MPB*; ``get`` moves data *from any core's MPB* to the
calling core's local MPB or private memory.  The calling core performs
every cache-line move itself (MPB access is RMA, not RDMA), one
transaction at a time, which is exactly how the formulas compose:

    C_put = o_put + m * C_read(src) + m * C_write(dst)
    C_get = o_get + m * C_read(src) + m * C_write(dst)

Sources/destinations are a byte offset into the core's own MPB, a byte
offset into a remote MPB (identified by core id), or a :class:`MemRef`
into the core's own private memory.

In ``EXACT`` contention mode the read and write of each cache line are
interleaved (as the hardware does), so a contended MPB port sees the true
inter-arrival gaps; in ``BATCH``/``IDEAL`` modes the read and write phases
are aggregated -- same total duration, far fewer events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.config import CACHE_LINE, ContentionMode
from ..scc.core import lines_of
from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.core import Core


def put(
    core: "Core",
    dst_core: int,
    dst_offset: int,
    src: "MemRef | int",
    nbytes: int,
) -> Generator:
    """Move ``nbytes`` from ``src`` (own MPB offset or own private memory)
    into ``dst_core``'s MPB at ``dst_offset``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return
    cfg = core.config
    m = lines_of(nbytes)
    exact = cfg.contention_mode is ContentionMode.EXACT

    if isinstance(src, MemRef):
        if src.owner != core.id:
            raise ValueError("put source MemRef must be in the calling core's memory")
        if src.nbytes < nbytes:
            raise ValueError(f"put of {nbytes} bytes from a {src.nbytes}-byte buffer")
        yield core.compute(cfg.o_put_mem)
        if exact:
            for i in range(m):
                span = min(CACHE_LINE, nbytes - i * CACHE_LINE)
                yield from core.mem_read(src.sub(i * CACHE_LINE, span))
                yield from core.mpb_access(dst_core, 1, write=True)
        else:
            yield from core.mem_read(src.sub(0, nbytes))
            yield from core.mpb_access(dst_core, m, write=True)
        payload = src.sub(0, nbytes).read()
    else:
        src_off = int(src)
        yield core.compute(cfg.o_put_mpb)
        if exact:
            for _ in range(m):
                yield from core.mpb_access(core.id, 1)
                yield from core.mpb_access(dst_core, 1, write=True)
        else:
            yield from core.mpb_access(core.id, m)
            yield from core.mpb_access(dst_core, m, write=True)
        payload = core.mpb.read_bytes(src_off, nbytes)

    core.chip.mpbs[dst_core].write_bytes(dst_offset, payload)
    core.chip.trace(f"core{core.id}", "put", dst=dst_core, off=dst_offset, n=nbytes)


def get(
    core: "Core",
    src_core: int,
    src_offset: int,
    dst: "MemRef | int",
    nbytes: int,
) -> Generator:
    """Move ``nbytes`` from ``src_core``'s MPB at ``src_offset`` into
    ``dst`` (own MPB offset or own private memory)."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return
    cfg = core.config
    m = lines_of(nbytes)
    exact = cfg.contention_mode is ContentionMode.EXACT

    if isinstance(dst, MemRef):
        if dst.owner != core.id:
            raise ValueError("get destination MemRef must be in the calling core's memory")
        if dst.nbytes < nbytes:
            raise ValueError(f"get of {nbytes} bytes into a {dst.nbytes}-byte buffer")
        yield core.compute(cfg.o_get_mem)
        if exact:
            for i in range(m):
                span = min(CACHE_LINE, nbytes - i * CACHE_LINE)
                yield from core.mpb_access(src_core, 1)
                yield from core.mem_write(dst.sub(i * CACHE_LINE, span))
        else:
            yield from core.mpb_access(src_core, m)
            yield from core.mem_write(dst.sub(0, nbytes))
        payload = core.chip.mpbs[src_core].read_bytes(src_offset, nbytes)
        dst.sub(0, nbytes).write(payload)
    else:
        dst_off = int(dst)
        yield core.compute(cfg.o_get_mpb)
        if exact:
            for _ in range(m):
                yield from core.mpb_access(src_core, 1)
                yield from core.mpb_access(core.id, 1, write=True)
        else:
            yield from core.mpb_access(src_core, m)
            yield from core.mpb_access(core.id, m, write=True)
        payload = core.chip.mpbs[src_core].read_bytes(src_offset, nbytes)
        core.mpb.write_bytes(dst_off, payload)

    core.chip.trace(f"core{core.id}", "get", src=src_core, off=src_offset, n=nbytes)
