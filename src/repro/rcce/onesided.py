"""One-sided put and get (the paper's Formulas 7-12).

``put`` moves data *from the calling core's* local MPB or private memory
*to any core's MPB*; ``get`` moves data *from any core's MPB* to the
calling core's local MPB or private memory.  The calling core performs
every cache-line move itself (MPB access is RMA, not RDMA), one
transaction at a time, which is exactly how the formulas compose:

    C_put = o_put + m * C_read(src) + m * C_write(dst)
    C_get = o_get + m * C_read(src) + m * C_write(dst)

Sources/destinations are a byte offset into the core's own MPB, a byte
offset into a remote MPB (identified by core id), or a :class:`MemRef`
into the core's own private memory.

In ``EXACT`` contention mode the read and write of each cache line are
interleaved (as the hardware does), so a contended MPB port sees the true
inter-arrival gaps; in ``BATCH``/``IDEAL`` modes the read and write phases
are aggregated -- same total duration, far fewer events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.config import CACHE_LINE, ContentionMode
from ..scc.core import lines_of
from ..scc.memory import MemRef
from ..sim.errors import TimeoutError as SimTimeoutError
from ..resilience.policy import RetryPolicy, plan_delays
from .flags import _ack_recovered, _backoff_pause, _timeline_suffix

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.core import Core


def put(
    core: "Core",
    dst_core: int,
    dst_offset: int,
    src: "MemRef | int",
    nbytes: int,
) -> Generator:
    """Move ``nbytes`` from ``src`` (own MPB offset or own private memory)
    into ``dst_core``'s MPB at ``dst_offset``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return
    cfg = core.config
    m = lines_of(nbytes)
    exact = cfg.contention_mode is ContentionMode.EXACT

    if isinstance(src, MemRef):
        if src.owner != core.id:
            raise ValueError("put source MemRef must be in the calling core's memory")
        if src.nbytes < nbytes:
            raise ValueError(f"put of {nbytes} bytes from a {src.nbytes}-byte buffer")
        yield core.compute(cfg.o_put_mem)
        if exact:
            for i in range(m):
                span = min(CACHE_LINE, nbytes - i * CACHE_LINE)
                yield from core.mem_read(src.sub(i * CACHE_LINE, span))
                yield from core.mpb_access(dst_core, 1, write=True)
        else:
            yield from core.mem_read(src.sub(0, nbytes))
            yield from core.mpb_access(dst_core, m, write=True)
        payload = src.sub(0, nbytes).read()
    else:
        src_off = int(src)
        yield core.compute(cfg.o_put_mpb)
        if exact:
            for _ in range(m):
                yield from core.mpb_access(core.id, 1)
                yield from core.mpb_access(dst_core, 1, write=True)
        else:
            yield from core.mpb_access(core.id, m)
            yield from core.mpb_access(dst_core, m, write=True)
        payload = core.mpb.read_bytes(src_off, nbytes)

    landed = core.chip.mpbs[dst_core].write_bytes(
        dst_offset, payload, source=core.id, op="data"
    )
    core.chip.trace(
        f"core{core.id}", "put",
        dst=dst_core, off=dst_offset, n=nbytes, landed=landed,
    )
    if core.chip.metrics is not None:
        core.chip.metrics.inc("rcce.puts")
        core.chip.metrics.inc("rcce.put_bytes", nbytes)


def put_acked(
    core: "Core",
    dst_core: int,
    dst_offset: int,
    src: "MemRef | int",
    nbytes: int,
    *,
    max_retries: int = 3,
    policy: "RetryPolicy | None" = None,
) -> Generator:
    """A :func:`put` with an acknowledgment: after writing, the calling
    core reads the destination lines back and re-sends the whole transfer
    until the readback matches (at most ``max_retries`` re-sends, or the
    ``policy``'s paced schedule when one is given).

    MPB writes on the SCC are unacknowledged, so a put can silently lose
    cache lines; the verification read doubles the MPB traffic of the
    put -- the data-path robustness tax, paid only when a protocol opts
    in.  Raises :class:`repro.sim.TimeoutError` once retries are
    exhausted (the destination is presumed unreachable).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return
    chip = core.chip
    m = lines_of(nbytes)
    site = f"mpb{dst_core}@{dst_offset}"
    delays = plan_delays(policy, core.id, site, max_retries)
    for attempt in range(len(delays) + 1):
        if attempt and delays[attempt - 1] > 0.0:
            yield from _backoff_pause(core, site, delays[attempt - 1])
        yield from put(core, dst_core, dst_offset, src, nbytes)
        # The ack: read the destination region back over the mesh.
        yield from core.mpb_access(dst_core, m)
        expected = (
            src.sub(0, nbytes).read()
            if isinstance(src, MemRef)
            else core.mpb.read_bytes(int(src), nbytes)
        )
        got = chip.mpbs[dst_core].read_bytes(dst_offset, nbytes)
        if got == expected:
            if attempt > 0:
                _ack_recovered(
                    core, "put_retry_ok", f"put->core{dst_core}@{dst_offset}",
                    f"{nbytes}B re-sent x{attempt}", attempt + 1,
                    dst=dst_core, off=dst_offset,
                )
            return
    raise SimTimeoutError(
        f"core {core.id}: put of {nbytes} B to core {dst_core}@{dst_offset} "
        f"un-acked after {len(delays) + 1} attempts at t={core.sim.now:.4f}"
        f"{_timeline_suffix(chip)}",
        process=f"core{core.id}",
        sim_time=core.sim.now,
        site=site,
    )


def get_acked(
    core: "Core",
    src_core: int,
    src_offset: int,
    dst: "MemRef | int",
    nbytes: int,
    *,
    max_retries: int = 3,
    policy: "RetryPolicy | None" = None,
) -> Generator:
    """A :func:`get` with verification: the destination is read back and
    the transfer re-fetched until it matches the source lines (at most
    ``max_retries`` re-fetches, or the ``policy``'s paced schedule).

    The vulnerable leg of a get is the deposit into the caller's *own*
    MPB -- an unacknowledged write like any other -- so the readback is
    a cheap local access; a private-memory destination pays one memory
    read.  Raises :class:`repro.sim.TimeoutError` once retries are
    exhausted.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return
    chip = core.chip
    m = lines_of(nbytes)
    site = f"mpb{src_core}@{src_offset}"
    delays = plan_delays(policy, core.id, site, max_retries)
    for attempt in range(len(delays) + 1):
        if attempt and delays[attempt - 1] > 0.0:
            yield from _backoff_pause(core, site, delays[attempt - 1])
        yield from get(core, src_core, src_offset, dst, nbytes)
        expected = chip.mpbs[src_core].read_bytes(src_offset, nbytes)
        if isinstance(dst, MemRef):
            yield from core.mem_read(dst.sub(0, nbytes))
            got = dst.sub(0, nbytes).read()
        else:
            yield from core.mpb_access(core.id, m)
            got = core.mpb.read_bytes(int(dst), nbytes)
        if got == expected:
            if attempt > 0:
                _ack_recovered(
                    core, "get_retry_ok", f"get<-core{src_core}@{src_offset}",
                    f"{nbytes}B re-fetched x{attempt}", attempt + 1,
                    src=src_core, off=src_offset,
                )
            return
    raise SimTimeoutError(
        f"core {core.id}: get of {nbytes} B from core {src_core}@{src_offset} "
        f"unverified after {len(delays) + 1} attempts at t={core.sim.now:.4f}"
        f"{_timeline_suffix(chip)}",
        process=f"core{core.id}",
        sim_time=core.sim.now,
        site=site,
    )


def put_bytes(
    core: "Core",
    dst_core: int,
    dst_offset: int,
    payload: bytes,
) -> Generator[object, object, str]:
    """A small register-sourced protocol write (at most a few cache
    lines): the payload comes from the calling core's registers rather
    than its MPB or memory, so only the destination write is charged.

    Used for protocol metadata that is *computed* rather than staged --
    chunk-header checksums, membership bitmaps.  Costs the put call
    overhead plus one MPB write per line; the write is a protocol
    (``op="data"``) write, so it is subject to fault injection like any
    other payload line.  Returns the landed status.
    """
    nbytes = len(payload)
    if nbytes == 0:
        return "ok"
    m = lines_of(nbytes)
    yield core.compute(core.config.o_put_mpb)
    yield from core.mpb_access(dst_core, m, write=True)
    landed = core.chip.mpbs[dst_core].write_bytes(
        dst_offset, payload, source=core.id, op="data"
    )
    core.chip.trace(
        f"core{core.id}", "put_bytes",
        dst=dst_core, off=dst_offset, n=nbytes, landed=landed,
    )
    return landed


def get_bytes(
    core: "Core",
    src_core: int,
    src_offset: int,
    nbytes: int,
) -> Generator[object, object, bytes]:
    """A small register-destined read (at most a few cache lines) from
    ``src_core``'s MPB: the lines land in the calling core's registers,
    so only the remote read is charged and no MPB deposit happens --
    which also means the *read leg cannot be faulted into a silent
    corruption* (there is no protocol write to intercept).

    Used to pull protocol metadata: remote chunk headers, membership
    bitmaps on a view change.
    """
    if nbytes <= 0:
        raise ValueError("get_bytes needs nbytes > 0")
    m = lines_of(nbytes)
    yield core.compute(core.config.o_get_mpb)
    yield from core.mpb_access(src_core, m)
    return core.chip.mpbs[src_core].read_bytes(src_offset, nbytes)


def get(
    core: "Core",
    src_core: int,
    src_offset: int,
    dst: "MemRef | int",
    nbytes: int,
) -> Generator:
    """Move ``nbytes`` from ``src_core``'s MPB at ``src_offset`` into
    ``dst`` (own MPB offset or own private memory)."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if nbytes == 0:
        return
    cfg = core.config
    m = lines_of(nbytes)
    exact = cfg.contention_mode is ContentionMode.EXACT

    if isinstance(dst, MemRef):
        if dst.owner != core.id:
            raise ValueError("get destination MemRef must be in the calling core's memory")
        if dst.nbytes < nbytes:
            raise ValueError(f"get of {nbytes} bytes into a {dst.nbytes}-byte buffer")
        yield core.compute(cfg.o_get_mem)
        if exact:
            for i in range(m):
                span = min(CACHE_LINE, nbytes - i * CACHE_LINE)
                yield from core.mpb_access(src_core, 1)
                yield from core.mem_write(dst.sub(i * CACHE_LINE, span))
        else:
            yield from core.mpb_access(src_core, m)
            yield from core.mem_write(dst.sub(0, nbytes))
        payload = core.chip.mpbs[src_core].read_bytes(src_offset, nbytes)
        dst.sub(0, nbytes).write(payload)
        landed = "ok"
    else:
        dst_off = int(dst)
        yield core.compute(cfg.o_get_mpb)
        if exact:
            for _ in range(m):
                yield from core.mpb_access(src_core, 1)
                yield from core.mpb_access(core.id, 1, write=True)
        else:
            yield from core.mpb_access(src_core, m)
            yield from core.mpb_access(core.id, m, write=True)
        payload = core.chip.mpbs[src_core].read_bytes(src_offset, nbytes)
        landed = core.mpb.write_bytes(dst_off, payload, source=core.id, op="data")

    core.chip.trace(
        f"core{core.id}", "get",
        src=src_core, off=src_offset, n=nbytes, landed=landed,
    )
    if core.chip.metrics is not None:
        core.chip.metrics.inc("rcce.gets")
        core.chip.metrics.inc("rcce.get_bytes", nbytes)
