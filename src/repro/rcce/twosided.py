"""Blocking two-sided send/recv, the RCCE way.

Protocol (paper Section 1.1 / RCCE [19]): the *sender* puts each chunk of
the message from its private memory into its **own** MPB payload buffer
and advances its slot in the receiver's ``sent`` array; the *receiver*
gets the chunk from the sender's MPB into its private memory and
advances its slot in the sender's ``ready`` (ack) array, which the
sender needs before it may overwrite its payload buffer.  A send/recv
pair therefore costs ``C_put_mem(chunk) + C_get_mem(chunk)`` plus two
flag round-trips -- the building block of the binomial-tree and
scatter-allgather baselines (Formulas 14 and 16).

Flags are per-partner slots (:class:`~repro.rcce.flags.FlagSlotArray`),
exactly like RCCE's per-UE flag arrays: core R's ``sent`` array has one
slot per possible sender, each written only by that sender, so any
number of partners may be in flight against one core without write
races.  Slot values are cumulative chunk counters, so nothing is ever
cleared.

Messages larger than the payload buffer (250 cache lines -- RCCE's
8 KB minus the flag arrays; the paper quotes 251 with bit-packed
flags) are chunked; chunks are strictly stop-and-wait, which is
precisely the serialisation OC-Bcast's pipelining removes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef
from .flags import FlagSlotArray

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Comm, CoreComm

#: RCCE's payload buffer in cache lines: the 256-line MPB minus two
#: per-partner flag arrays (the paper quotes 251 for bit-packed flags;
#: our 16-bit sequence slots cost 3 lines per array at P=48).
RCCE_PAYLOAD_LINES = 250


class TwoSidedState:
    """Per-communicator state for RCCE send/recv.

    ``sent`` -- in each receiver's MPB, slot ``s`` is the number of chunks
    sender ``s`` has made available to this receiver.
    ``ready`` -- in each sender's MPB, slot ``r`` is the number of chunks
    receiver ``r`` has drained from this sender's payload buffer.
    """

    def __init__(self, comm: "Comm", payload_lines: int | None = None) -> None:
        size = comm.size
        flag_lines = FlagSlotArray.lines_needed(size)
        if payload_lines is None:
            payload_lines = min(
                RCCE_PAYLOAD_LINES, comm.layout.free_lines - 2 * flag_lines
            )
        if payload_lines < 1:
            raise ValueError("payload buffer must be at least one line")
        self.sent = FlagSlotArray(
            comm.layout.alloc_lines(flag_lines), size, name="ts.sent"
        )
        self.ready = FlagSlotArray(
            comm.layout.alloc_lines(flag_lines), size, name="ts.ready"
        )
        self.payload = comm.layout.alloc_lines(payload_lines)
        # (src_rank, dst_rank) -> chunk counters, advanced by the sending /
        # receiving side respectively; they agree because matching
        # send/recv pairs process chunks in the same order.
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_seq: dict[tuple[int, int], int] = {}

    @property
    def payload_bytes(self) -> int:
        return self.payload.nbytes

    def next_send_seq(self, src_rank: int, dst_rank: int) -> int:
        key = (src_rank, dst_rank)
        self._send_seq[key] = self._send_seq.get(key, 0) + 1
        return self._send_seq[key]

    def next_recv_seq(self, src_rank: int, dst_rank: int) -> int:
        key = (src_rank, dst_rank)
        self._recv_seq[key] = self._recv_seq.get(key, 0) + 1
        return self._recv_seq[key]


def _chunks(nbytes: int, chunk: int) -> Generator[tuple[int, int], None, None]:
    off = 0
    while off < nbytes:
        yield off, min(chunk, nbytes - off)
        off += chunk


def send(
    cc: "CoreComm",
    dst_rank: int,
    src: MemRef,
    nbytes: int,
    st: TwoSidedState | None = None,
) -> Generator:
    """Blocking send of ``nbytes`` from private memory to ``dst_rank``.

    ``st`` selects the flag/payload state; default is the communicator's
    shared one.  Algorithms that co-reside with other MPB users (e.g. the
    one-sided scatter-allgather) pass their own smaller instance.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if dst_rank == cc.rank:
        raise ValueError("send to self is not supported (RCCE semantics)")
    cc.comm.core_of(dst_rank)  # validates the rank
    st = st if st is not None else cc.comm.twosided
    core = cc.core
    dst_core = cc.comm.core_of(dst_rank)
    if nbytes == 0:
        # Zero-byte messages still synchronise (flag handshake only).
        seq = st.next_send_seq(cc.rank, dst_rank)
        yield from st.sent.write(core, dst_core, cc.rank, seq)
        yield from st.ready.wait_at_least(core, dst_rank, seq)
        return
    for off, span in _chunks(nbytes, st.payload_bytes):
        seq = st.next_send_seq(cc.rank, dst_rank)
        yield from cc.put(cc.rank, st.payload.offset, src.sub(off, span), span)
        yield from st.sent.write(core, dst_core, cc.rank, seq)
        # Stop-and-wait: the payload buffer may not be reused until acked.
        yield from st.ready.wait_at_least(core, dst_rank, seq)


def recv(
    cc: "CoreComm",
    src_rank: int,
    dst: MemRef,
    nbytes: int,
    st: TwoSidedState | None = None,
) -> Generator:
    """Blocking receive of ``nbytes`` from ``src_rank`` into private memory."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if src_rank == cc.rank:
        raise ValueError("recv from self is not supported (RCCE semantics)")
    st = st if st is not None else cc.comm.twosided
    core = cc.core
    src_core = cc.comm.core_of(src_rank)
    if nbytes == 0:
        seq = st.next_recv_seq(src_rank, cc.rank)
        yield from st.sent.wait_at_least(core, src_rank, seq)
        yield from st.ready.write(core, src_core, cc.rank, seq)
        return
    for off, span in _chunks(nbytes, st.payload_bytes):
        seq = st.next_recv_seq(src_rank, cc.rank)
        yield from st.sent.wait_at_least(core, src_rank, seq)
        yield from cc.get(src_rank, st.payload.offset, dst.sub(off, span), span)
        yield from st.ready.write(core, src_core, cc.rank, seq)
