"""MPB synchronization flags.

The SCC guarantees read/write atomicity at cache-line (32 B) granularity,
so one cache line per flag needs no locks (paper Section 5.1).  A flag
here carries a :class:`FlagValue` -- a ``(tag, seq)`` pair -- rather than
a bare boolean: monotonically increasing sequence numbers let OC-Bcast's
double buffering and RCCE's send/recv reuse the same flag line across
chunks and invocations without clearing it (clearing would cost an extra
remote put per chunk).

Polling cost model
------------------
A core waiting on flags continuously sweeps them, each flag read costing
``t_poll``.  Simulating every sweep would explode the event count, so the
wait primitive (:func:`wait_local_flags`) is event-driven -- it sleeps on
MPB write-watchers -- and charges the *detection delay* a sweep would add:
on the wake-up that satisfies the predicate, the core pays half a sweep
(``0.5 * nflags * t_poll``) plus one flag read.  This reproduces the
paper's observation that large ``k`` makes the root slow to notice its 47
doneFlags, while keeping waits O(#writes) in events.

Fault tolerance
---------------
Plain flag waits spin forever if the awaited write was lost (the SCC's
MPB stores are unacknowledged), which turns a single dropped write into
a whole-program deadlock.  Two escape hatches, both opt-in:

- every wait primitive takes a ``timeout`` (a polling budget in
  simulated microseconds); an expired budget raises
  :class:`repro.sim.TimeoutError` naming the waiting core, the flag and
  the simulated time, instead of spinning silently;
- :func:`flag_write_acked` reads the flag line back after writing and
  re-sends until it verifies (bounded retries), converting the
  fire-and-forget store into an acknowledged one at the cost of one
  remote read per attempt.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Sequence

from ..sim import any_of
from ..sim.errors import TimeoutError as SimTimeoutError
from ..scc.config import CACHE_LINE
from ..resilience.policy import RetryPolicy, plan_delays
from .layout import MpbRegion

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.chip import SccChip
    from ..scc.core import Core

# Histogram bucket bounds (us) for backoff pauses inserted by retry
# policies; coarse decades matching the simulated RMA cost scale.
_BACKOFF_BOUNDS = (10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0)


def _ack_recovered(
    core: "Core", kind: str, site: str, note: str, attempts: int, **detail
) -> None:
    """The shared trace/metric emission for an acked write that needed
    re-sending: one place instead of three near-identical blocks, so
    the retry-policy integration (and any future field) lands once."""
    chip = core.chip
    chip.trace(f"core{core.id}", kind, attempts=attempts, **detail)
    if chip.faults is not None:
        chip.faults.note_recovery(site, note=note)
    if chip.metrics is not None:
        chip.metrics.inc("resilience.retry_ok")


def _backoff_pause(core: "Core", site: str, delay: float) -> Generator:
    """Charge one backoff pause before a re-send.  Callers only route
    strictly positive delays here, so a zero/None policy inserts no
    simulator events and default traces stay bit-identical."""
    chip = core.chip
    chip.trace(f"core{core.id}", "retry_backoff", site=site, delay=delay)
    if chip.metrics is not None:
        chip.metrics.inc("resilience.backoffs")
        chip.metrics.histogram("resilience.backoff_us", _BACKOFF_BOUNDS).observe(delay)
    yield core.compute(delay)

_STRUCT = struct.Struct("<qq")  # tag, seq -- 16 of the 32 flag bytes


@dataclass(frozen=True, order=True)
class FlagValue:
    """The content of a flag line: an opaque tag and a sequence number."""

    tag: int = 0
    seq: int = 0

    def encode(self) -> bytes:
        return _STRUCT.pack(self.tag, self.seq) + b"\x00" * (
            CACHE_LINE - _STRUCT.size
        )

    @classmethod
    def decode(cls, raw: bytes) -> "FlagValue":
        tag, seq = _STRUCT.unpack_from(raw)
        return cls(tag, seq)


ZERO = FlagValue(0, 0)


@dataclass(frozen=True)
class Flag:
    """A symmetric one-cache-line flag: core ``i``'s copy lives at
    ``region.offset`` in core ``i``'s MPB."""

    region: MpbRegion
    name: str = "flag"

    def __post_init__(self) -> None:
        if self.region.nbytes != CACHE_LINE:
            raise ValueError(f"flag must be exactly one cache line, got {self.region.nbytes}")

    @property
    def offset(self) -> int:
        return self.region.offset

    def peek(self, chip: "SccChip", owner_core: int) -> FlagValue:
        """Untimed read of the flag in ``owner_core``'s MPB (for tests)."""
        raw = chip.mpbs[owner_core].read_bytes(self.offset, CACHE_LINE)
        return FlagValue.decode(raw)

    def poke(self, chip: "SccChip", owner_core: int, value: FlagValue) -> None:
        """Untimed write (for initialisation in tests)."""
        chip.mpbs[owner_core].write_bytes(self.offset, value.encode())


class FlagSlotArray:
    """Per-partner flag slots packed into few cache lines (RCCE-style).

    Real RCCE keeps one flag per communication partner and bit-packs them
    so 48 partners cost a handful of bytes rather than 48 cache lines; we
    model the same with one little-endian 16-bit sequence counter per
    partner (16 slots per line).  Each slot has exactly ONE writer (the
    partner it is named after), so there are no write races; the packing
    means a write touches only its own bytes -- the property RCCE's
    bit-flags rely on.

    The array is symmetric: every core's MPB holds its own copy at
    ``region.offset``.
    """

    SLOT_BYTES = 2
    MAX_SEQ = 0xFFFF

    def __init__(self, region: MpbRegion, nslots: int, name: str = "slots") -> None:
        need = -(-nslots * self.SLOT_BYTES // CACHE_LINE)
        if region.lines < need:
            raise ValueError(
                f"slot array {name!r} needs {need} lines for {nslots} slots, "
                f"got {region.lines}"
            )
        self.region = region
        self.nslots = nslots
        self.name = name

    @classmethod
    def lines_needed(cls, nslots: int) -> int:
        return -(-nslots * cls.SLOT_BYTES // CACHE_LINE)

    def _check(self, slot: int) -> int:
        if not 0 <= slot < self.nslots:
            raise IndexError(f"slot {slot} outside 0..{self.nslots - 1}")
        return slot

    def slot_offset(self, slot: int) -> int:
        return self.region.offset + self._check(slot) * self.SLOT_BYTES

    def peek(self, chip: "SccChip", owner_core: int, slot: int) -> int:
        raw = chip.mpbs[owner_core].read_bytes(self.slot_offset(slot), self.SLOT_BYTES)
        return int.from_bytes(raw, "little")

    def write(
        self, core: "Core", owner_core: int, slot: int, value: int
    ) -> Generator:
        """Timed remote write of one slot (costs one 1-line flag put)."""
        if not 0 <= value <= self.MAX_SEQ:
            raise ValueError(
                f"slot value {value} exceeds 16-bit sequence space; "
                f"reinitialise the communicator for longer runs"
            )
        chip = core.chip
        yield core.compute(chip.config.o_put_mpb)
        yield from core.mpb_access(owner_core, 1, write=True)
        landed = chip.mpbs[owner_core].write_bytes(
            self.slot_offset(slot),
            value.to_bytes(self.SLOT_BYTES, "little"),
            source=core.id,
            op="flag",
        )
        chip.trace(
            f"core{core.id}", "slot_write",
            array=self.name, owner=owner_core, slot=slot, value=value,
            landed=landed,
        )
        if chip.metrics is not None:
            chip.metrics.inc("flags.slot_writes")

    def write_acked(
        self,
        core: "Core",
        owner_core: int,
        slot: int,
        value: int,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        """An acknowledged slot write: read the slot back and re-send
        until it verifies (slot values are monotonic per writer, so a
        readback >= value also acks).  The membership heartbeats ride on
        this -- a silently dropped heartbeat would otherwise read as a
        crash and evict a live core.  A ``policy`` paces the re-sends
        (and overrides ``max_retries``); ``None`` keeps the legacy
        immediate re-send schedule.
        """
        chip = core.chip
        off = self.slot_offset(slot)
        site = f"{self.name}[{slot}]@core{owner_core}"
        delays = plan_delays(policy, core.id, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                yield from _backoff_pause(core, site, delays[attempt - 1])
            yield from self.write(core, owner_core, slot, value)
            yield from core.mpb_access(owner_core, 1)
            got = int.from_bytes(
                chip.mpbs[owner_core].read_bytes(off, self.SLOT_BYTES), "little"
            )
            if got >= value:
                if attempt:
                    _ack_recovered(
                        core, "slot_write_retry_ok", site,
                        f"slot re-sent x{attempt}", attempt + 1,
                        array=self.name, owner=owner_core, slot=slot,
                    )
                return
        raise SimTimeoutError(
            f"core {core.id}: slot write {self.name}[{slot}] to core "
            f"{owner_core} un-acked after {len(delays) + 1} attempts at "
            f"t={core.sim.now:.4f}{_timeline_suffix(chip)}",
            process=f"core{core.id}",
            sim_time=core.sim.now,
            site=site,
        )

    def wait_any_at_least(
        self,
        core: "Core",
        slots: Sequence[int],
        value: int,
        *,
        timeout: float,
        site: str = "",
    ) -> Generator[object, object, int]:
        """Wait until *any* of the core's own copies of ``slots`` is
        >= ``value``; returns the first satisfying slot (lowest index).

        The multi-slot twin of :meth:`wait_at_least`: one watcher per
        *distinct cache line* covering the watched slots, so 16 slots
        cost one watcher.  Always takes a ``timeout`` -- the election
        protocol that rides on this is all about bounded waits.  Raises
        :class:`repro.sim.TimeoutError` on budget expiry.
        """
        if not slots:
            raise ValueError("wait_any_at_least needs at least one slot")
        mpb = core.mpb
        sim = core.sim
        offs = {self.slot_offset(s): s for s in slots}
        lines = sorted({off - off % CACHE_LINE for off in offs})
        deadline = sim.now + timeout
        where = site or f"{self.name}[any]"

        def hit() -> int | None:
            for s in sorted(slots):
                raw = mpb.read_bytes(self.slot_offset(s), self.SLOT_BYTES)
                if int.from_bytes(raw, "little") >= value:
                    return s
            return None

        yield _charge_poll(core, core.config.t_poll)
        while True:
            got = hit()
            if got is not None:
                return got
            watchers = [mpb.watch(off) for off in lines]
            got = hit()
            if got is not None:
                return got
            remaining = deadline - sim.now
            if remaining <= 0:
                _raise_wait_timeout(core, where, timeout)
            timer = sim.timeout(remaining, name=f"core{core.id}.{self.name}.budget")
            yield any_of(sim, [*watchers, timer], name=f"core{core.id}.wait_any")
            if hit() is None and sim.now >= deadline:
                _raise_wait_timeout(core, where, timeout)
            got = hit()
            if got is not None:
                yield _charge_poll(core, 1.5 * core.config.t_poll)
                return got

    def wait_at_least(
        self, core: "Core", slot: int, value: int, *, timeout: float | None = None
    ) -> Generator[object, object, int]:
        """Wait until the core's own copy of ``slot`` is >= ``value``.

        Same polling cost model as :func:`wait_local_flags`; wakes on any
        write to the slot's cache line (sharing a line with other slots
        only causes spurious re-checks, never missed wake-ups).  With a
        ``timeout``, an exhausted poll budget raises
        :class:`repro.sim.TimeoutError` instead of spinning forever.
        """
        mpb = core.mpb
        off = self.slot_offset(slot)
        sim = core.sim
        deadline = None if timeout is None else sim.now + timeout

        def read() -> int:
            return int.from_bytes(mpb.read_bytes(off, self.SLOT_BYTES), "little")

        yield _charge_poll(core, core.config.t_poll)
        while True:
            current = read()
            if current >= value:
                return current
            watcher = mpb.watch(off)
            current = read()
            if current >= value:
                return current
            if deadline is None:
                yield watcher
            else:
                remaining = deadline - sim.now
                if remaining <= 0:
                    _raise_wait_timeout(core, f"{self.name}[{slot}]", timeout)
                timer = sim.timeout(
                    remaining, name=f"core{core.id}.{self.name}.budget"
                )
                yield any_of(sim, [watcher, timer], name=f"core{core.id}.wait_slot")
                if read() < value and sim.now >= deadline:
                    _raise_wait_timeout(core, f"{self.name}[{slot}]", timeout)
            current = read()
            if current >= value:
                yield _charge_poll(core, 1.5 * core.config.t_poll)
                return read()


_VOTE = struct.Struct("<II")  # round seq, digest -- 8 of the slot's 8 bytes


class DigestSlotArray:
    """Per-partner ``(seq, digest)`` vote slots -- the RBC wire format.

    :class:`FlagSlotArray`'s 16-bit slots are too narrow to carry a
    payload digest, so quorum votes get 8-byte slots (4 per cache line):
    a 32-bit round sequence number qualifying the vote and a 32-bit
    digest being voted for.  The single-writer discipline is identical --
    slot ``i`` is written only by member ``i`` -- which is exactly the
    trust base the Byzantine mode leans on: a compromised core can forge
    values *in its own slots* (vote equivocation) but cannot overwrite
    another member's vote.

    The array is symmetric: every core's MPB holds its own tally copy,
    and a voter pushes its vote into all of them.
    """

    SLOT_BYTES = 8
    MAX_SEQ = 0xFFFFFFFF

    def __init__(self, region: MpbRegion, nslots: int, name: str = "votes") -> None:
        need = -(-nslots * self.SLOT_BYTES // CACHE_LINE)
        if region.lines < need:
            raise ValueError(
                f"vote array {name!r} needs {need} lines for {nslots} slots, "
                f"got {region.lines}"
            )
        self.region = region
        self.nslots = nslots
        self.name = name

    @classmethod
    def lines_needed(cls, nslots: int) -> int:
        return -(-nslots * cls.SLOT_BYTES // CACHE_LINE)

    def _check(self, slot: int) -> int:
        if not 0 <= slot < self.nslots:
            raise IndexError(f"slot {slot} outside 0..{self.nslots - 1}")
        return slot

    def slot_offset(self, slot: int) -> int:
        return self.region.offset + self._check(slot) * self.SLOT_BYTES

    def peek(self, chip: "SccChip", owner_core: int, slot: int) -> tuple[int, int]:
        raw = chip.mpbs[owner_core].read_bytes(self.slot_offset(slot), self.SLOT_BYTES)
        return _VOTE.unpack(raw)

    def write(
        self, core: "Core", owner_core: int, slot: int, seq: int, digest: int
    ) -> Generator:
        """Timed remote write of one vote slot (one 1-line flag put)."""
        if not 0 <= seq <= self.MAX_SEQ:
            raise ValueError(f"vote seq {seq} exceeds 32-bit sequence space")
        if not 0 <= digest <= 0xFFFFFFFF:
            raise ValueError(f"digest {digest:#x} is not a 32-bit value")
        chip = core.chip
        yield core.compute(chip.config.o_put_mpb)
        yield from core.mpb_access(owner_core, 1, write=True)
        landed = chip.mpbs[owner_core].write_bytes(
            self.slot_offset(slot),
            _VOTE.pack(seq, digest),
            source=core.id,
            op="flag",
        )
        chip.trace(
            f"core{core.id}", "vote_write",
            array=self.name, owner=owner_core, slot=slot, seq=seq,
            digest=digest, landed=landed,
        )
        if chip.metrics is not None:
            chip.metrics.inc("flags.vote_writes")

    def write_acked(
        self,
        core: "Core",
        owner_core: int,
        slot: int,
        seq: int,
        digest: int,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        """An acknowledged vote write: read the slot back and re-send until
        it verifies.  Digests are not monotonic, so unlike
        :meth:`FlagSlotArray.write_acked` the ack demands an *exact*
        digest match at this seq -- or a later seq, meaning the tally has
        already moved on and this vote is moot anyway.
        """
        chip = core.chip
        off = self.slot_offset(slot)
        site = f"{self.name}[{slot}]@core{owner_core}"
        delays = plan_delays(policy, core.id, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                yield from _backoff_pause(core, site, delays[attempt - 1])
            yield from self.write(core, owner_core, slot, seq, digest)
            yield from core.mpb_access(owner_core, 1)
            got_seq, got_digest = _VOTE.unpack(
                chip.mpbs[owner_core].read_bytes(off, self.SLOT_BYTES)
            )
            if got_seq > seq or (got_seq == seq and got_digest == digest):
                if attempt:
                    _ack_recovered(
                        core, "vote_write_retry_ok", site,
                        f"vote re-sent x{attempt}", attempt + 1,
                        array=self.name, owner=owner_core, slot=slot,
                    )
                return
        raise SimTimeoutError(
            f"core {core.id}: vote write {self.name}[{slot}] to core "
            f"{owner_core} un-acked after {len(delays) + 1} attempts at "
            f"t={core.sim.now:.4f}{_timeline_suffix(chip)}",
            process=f"core{core.id}",
            sim_time=core.sim.now,
            site=site,
        )

    def tally(self, chip: "SccChip", owner_core: int, seq: int) -> dict[int, int]:
        """Untimed count of votes at round ``seq`` in ``owner_core``'s copy:
        digest -> number of distinct voters.  Timed callers charge the
        sweep themselves (:meth:`wait_quorum` does)."""
        counts: dict[int, int] = {}
        mpb = chip.mpbs[owner_core]
        base = self.region.offset
        for s in range(self.nslots):
            got_seq, got_digest = _VOTE.unpack(
                mpb.read_bytes(base + s * self.SLOT_BYTES, self.SLOT_BYTES)
            )
            if got_seq == seq:
                counts[got_digest] = counts.get(got_digest, 0) + 1
        return counts

    def wait_quorum(
        self,
        core: "Core",
        seq: int,
        need: int,
        *,
        timeout: float,
        site: str = "",
    ) -> Generator[object, object, int]:
        """Wait until some digest holds >= ``need`` votes at round ``seq``
        in the core's *own* tally copy; returns that digest.

        Event-driven like the other waits: one watcher per cache line of
        the region, a sweep-shaped detection charge on the satisfying
        wake-up.  Raises :class:`repro.sim.TimeoutError` when the budget
        expires with every digest still short of quorum -- the RBC
        layer's signal that votes are split (or voters silent) and the
        round cannot complete.
        """
        mpb = core.mpb
        sim = core.sim
        nlines = -(-self.nslots * self.SLOT_BYTES // CACHE_LINE)
        lines = [self.region.offset + i * CACHE_LINE for i in range(nlines)]
        deadline = sim.now + timeout
        where = site or f"{self.name}.quorum(seq={seq})"

        def hit() -> int | None:
            counts = self.tally(core.chip, core.id, seq)
            best = None
            for digest, votes in sorted(counts.items()):
                if votes >= need and (best is None or votes > counts[best]):
                    best = digest
            return best

        yield _charge_poll(core, core.config.t_poll)
        while True:
            got = hit()
            if got is not None:
                return got
            watchers = [mpb.watch(off) for off in lines]
            got = hit()
            if got is not None:
                return got
            remaining = deadline - sim.now
            if remaining <= 0:
                _raise_wait_timeout(core, where, timeout)
            timer = sim.timeout(remaining, name=f"core{core.id}.{self.name}.budget")
            yield any_of(sim, [*watchers, timer], name=f"core{core.id}.wait_quorum")
            if hit() is None and sim.now >= deadline:
                _raise_wait_timeout(core, where, timeout)
            got = hit()
            if got is not None:
                yield _charge_poll(
                    core, 0.5 * nlines * core.config.t_poll + core.config.t_poll
                )
                return got


def _charge_poll(core: "Core", duration: float):
    """A poll-shaped compute: same timing as ``core.compute`` but also
    accrued into the core's poll counters (nominal, pre-jitter time)."""
    core.stats.polls += 1
    core.stats.poll_time += duration
    return core.compute(duration)


def _timeline_suffix(chip: "SccChip") -> str:
    """The injector's fault timeline (if any), for timeout messages."""
    faults = getattr(chip, "faults", None)
    if faults is None:
        return ""
    text = faults.timeline_text()
    return f"\n{text}" if text else ""


def _raise_wait_timeout(core: "Core", site: str, timeout: float | None) -> None:
    raise SimTimeoutError(
        f"core {core.id} exhausted its {timeout}-us poll budget waiting on "
        f"{site!r} at t={core.sim.now:.4f}{_timeline_suffix(core.chip)}",
        process=f"core{core.id}",
        sim_time=core.sim.now,
        site=site,
    )


def flag_write(
    core: "Core", owner_core: int, flag: Flag, value: FlagValue
) -> Generator:
    """Set ``flag`` in ``owner_core``'s MPB to ``value`` (a 1-line put
    whose source is a register/L1-resident variable, so no source read)."""
    chip = core.chip
    yield core.compute(chip.config.o_put_mpb)
    yield from core.mpb_access(owner_core, 1, write=True)
    landed = chip.mpbs[owner_core].write_bytes(
        flag.offset, value.encode(), source=core.id, op="flag"
    )
    chip.trace(f"core{core.id}", "flag_write", flag=flag.name, owner=owner_core,
               off=flag.offset, tag=value.tag, seq=value.seq, landed=landed)
    if chip.metrics is not None:
        chip.metrics.inc("flags.writes")
        if landed != "ok":
            chip.metrics.inc(f"flags.writes_{landed}")


def flag_write_acked(
    core: "Core",
    owner_core: int,
    flag: Flag,
    value: FlagValue,
    *,
    max_retries: int = 3,
    policy: "RetryPolicy | None" = None,
) -> Generator[object, object, FlagValue]:
    """An *acknowledged* flag write: write, read the line back, re-send
    until it verifies (at most ``max_retries`` re-sends, or the
    ``policy``'s schedule when one is given).

    The SCC's MPB store is fire-and-forget; the ack here is a remote
    read of the just-written line, costing one extra 1-line MPB access
    per attempt -- the per-write robustness tax of the FT protocols.
    Verification accepts any state at least as new as ``value`` (another
    writer may legitimately have advanced a monotonic flag further).
    Raises :class:`repro.sim.TimeoutError` when every attempt was lost.
    """
    chip = core.chip
    site = f"{flag.name}@core{owner_core}"
    delays = plan_delays(policy, core.id, site, max_retries)
    for attempt in range(len(delays) + 1):
        if attempt and delays[attempt - 1] > 0.0:
            yield from _backoff_pause(core, site, delays[attempt - 1])
        yield from flag_write(core, owner_core, flag, value)
        # The ack: read the remote line back and compare.
        yield from core.mpb_access(owner_core, 1)
        got = FlagValue.decode(
            chip.mpbs[owner_core].read_bytes(flag.offset, CACHE_LINE)
        )
        if got.tag == value.tag and got.seq >= value.seq:
            if attempt > 0:
                _ack_recovered(
                    core, "flag_write_retry_ok", site,
                    f"flag re-sent x{attempt}", attempt + 1,
                    flag=flag.name, owner=owner_core,
                )
            return got
    raise SimTimeoutError(
        f"core {core.id}: flag write {flag.name!r} to core {owner_core} "
        f"un-acked after {len(delays) + 1} attempts at t={core.sim.now:.4f}"
        f"{_timeline_suffix(chip)}",
        process=f"core{core.id}",
        sim_time=core.sim.now,
        site=site,
    )


def flag_put(
    core: "Core",
    owner_core: int,
    flag: Flag,
    value: FlagValue,
    *,
    acked: bool = False,
    max_retries: int = 3,
    policy: "RetryPolicy | None" = None,
) -> Generator[object, object, "FlagValue | None"]:
    """The one entry point for remote flag writes: plain fire-and-forget
    or acked (readback-verified, bounded re-send).  Higher layers route
    through here so the acked/unacked paths cannot drift apart."""
    if acked:
        return (
            yield from flag_write_acked(
                core, owner_core, flag, value,
                max_retries=max_retries, policy=policy,
            )
        )
    yield from flag_write(core, owner_core, flag, value)
    return None


def flag_read_local(core: "Core", flag: Flag) -> Generator[object, object, FlagValue]:
    """One timed poll of the core's own copy of ``flag``."""
    yield _charge_poll(core, core.config.t_poll)
    raw = core.mpb.read_bytes(flag.offset, CACHE_LINE)
    return FlagValue.decode(raw)


def wait_local_flags(
    core: "Core",
    flags: Sequence[Flag],
    predicate: Callable[[Sequence[FlagValue]], bool],
    *,
    sweep_flags: int | None = None,
    timeout: float | None = None,
    site: str = "",
) -> Generator[object, object, list[FlagValue]]:
    """Wait until ``predicate(values)`` holds over the core's own copies of
    ``flags``; returns the satisfying values.

    ``sweep_flags`` overrides the number of flags the core is sweeping (for
    algorithms that poll a superset of the flags the predicate needs).

    ``timeout`` bounds the wait (simulated microseconds of polling
    budget); on expiry :class:`repro.sim.TimeoutError` is raised with the
    waiting core, ``site`` (defaults to the flag names) and the sim time
    in its structured fields -- the FT protocols build their retry and
    crash-suspicion logic on this.
    """
    if not flags:
        return []
    mpb = core.mpb
    sim = core.sim
    nscan = sweep_flags if sweep_flags is not None else len(flags)
    deadline = None if timeout is None else sim.now + timeout
    where = site or "+".join(f.name for f in flags)

    def values() -> list[FlagValue]:
        return [
            FlagValue.decode(mpb.read_bytes(f.offset, CACHE_LINE)) for f in flags
        ]

    # Entry check costs one sweep position; full sweeps while blocked are
    # concurrent with the wait and charged only as the detection delay.
    yield _charge_poll(core, core.config.t_poll)
    while True:
        vals = values()
        if predicate(vals):
            return vals
        watchers = [mpb.watch(f.offset) for f in flags]
        vals = values()
        if predicate(vals):  # value changed while registering: no sleep
            return vals
        if deadline is None:
            yield any_of(sim, watchers, name=f"core{core.id}.wait_flags")
        else:
            remaining = deadline - sim.now
            if remaining <= 0:
                _raise_wait_timeout(core, where, timeout)
            timer = sim.timeout(remaining, name=f"core{core.id}.poll_budget")
            yield any_of(
                sim, [*watchers, timer], name=f"core{core.id}.wait_flags"
            )
            if not predicate(values()) and sim.now >= deadline:
                _raise_wait_timeout(core, where, timeout)
        vals = values()
        if predicate(vals):
            # Detection delay: half a sweep on average, plus the final read.
            yield _charge_poll(
                core, 0.5 * nscan * core.config.t_poll + core.config.t_poll
            )
            return values()
