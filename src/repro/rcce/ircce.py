"""iRCCE-style pipelined point-to-point transfer (double buffering).

The iRCCE library [8] extends RCCE with non-blocking, *pipelined*
send/recv: the payload area is split into two halves so the sender can
stage chunk ``i+1`` while the receiver drains chunk ``i`` -- the paper's
Section 4.2 credits this technique as the inspiration for OC-Bcast's
double buffering and derives the 2n*delta -> n*delta speedup from it.

We implement the pipelined *pair* operation: matching
:func:`pipelined_send` / :func:`pipelined_recv` calls stream a large
message through the two half-buffers with sequence-numbered per-partner
slots (no clearing, no races).  Like RCCE, at most one pipelined transfer
may be in flight per (sender, receiver) pair at a time; unlike plain
RCCE send/recv, the sender returns as soon as its last chunk is staged
and acknowledged *as consumed-or-buffered*, having overlapped all
intermediate chunks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef
from .flags import FlagSlotArray

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Comm, CoreComm

#: Each of the two pipeline buffers, in cache lines (iRCCE splits the
#: RCCE payload area in half).
IRCCE_HALF_LINES = 124


class IrcceState:
    """Per-communicator state for pipelined transfers.

    Two staging half-buffers in every sender's MPB plus two per-partner
    slot arrays: ``staged[s]`` (at the receiver) counts chunks sender
    ``s`` has staged, ``drained[r]`` (at the sender) counts chunks
    receiver ``r`` has drained.
    """

    def __init__(self, comm: "Comm", half_lines: int = IRCCE_HALF_LINES) -> None:
        if half_lines < 1:
            raise ValueError("pipeline buffers must be at least one line")
        size = comm.size
        flag_lines = FlagSlotArray.lines_needed(size)
        self.staged = FlagSlotArray(
            comm.layout.alloc_lines(flag_lines), size, name="ircce.staged"
        )
        self.drained = FlagSlotArray(
            comm.layout.alloc_lines(flag_lines), size, name="ircce.drained"
        )
        self.buffers = [comm.layout.alloc_lines(half_lines) for _ in range(2)]
        self.half_bytes = half_lines * 32
        # (src, dst) -> cumulative chunk counters, per side.
        self._send_chunks: dict[tuple[int, int], int] = {}
        self._recv_chunks: dict[tuple[int, int], int] = {}

    def take_send_base(self, src: int, dst: int, nchunks: int) -> int:
        key = (src, dst)
        base = self._send_chunks.get(key, 0)
        self._send_chunks[key] = base + nchunks
        return base

    def take_recv_base(self, src: int, dst: int, nchunks: int) -> int:
        key = (src, dst)
        base = self._recv_chunks.get(key, 0)
        self._recv_chunks[key] = base + nchunks
        return base


def _nchunks(nbytes: int, half: int) -> int:
    return -(-nbytes // half)


def pipelined_send(
    cc: "CoreComm", st: IrcceState, dst_rank: int, src: MemRef, nbytes: int
) -> Generator:
    """Stream ``nbytes`` to ``dst_rank`` through the two half-buffers.

    Chunk ``i`` goes into buffer ``i % 2``; the sender recycles a buffer
    once the receiver's ``drained`` counter covers its previous occupant,
    so staging chunk ``i+1`` overlaps the receiver's get of chunk ``i``.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if dst_rank == cc.rank:
        raise ValueError("pipelined send to self is not supported")
    core = cc.core
    dst_core = cc.comm.core_of(dst_rank)
    n = _nchunks(nbytes, st.half_bytes)
    base = st.take_send_base(cc.rank, dst_rank, n)
    for i in range(n):
        off = i * st.half_bytes
        span = min(st.half_bytes, nbytes - off)
        buf = st.buffers[i % 2]
        if i >= 2:
            # Recycle: the receiver must have drained chunk i-2.
            yield from st.drained.wait_at_least(core, dst_rank, base + i - 1)
        yield from cc.put(cc.rank, buf.offset, src.sub(off, span), span)
        yield from st.staged.write(core, dst_core, cc.rank, base + i + 1)
    # Return only when the whole message is consumed (buffer safety for
    # the next transfer on this pair or any other receiver).
    if n:
        yield from st.drained.wait_at_least(core, dst_rank, base + n)


def pipelined_recv(
    cc: "CoreComm", st: IrcceState, src_rank: int, dst: MemRef, nbytes: int
) -> Generator:
    """Receive the matching pipelined stream from ``src_rank``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if src_rank == cc.rank:
        raise ValueError("pipelined recv from self is not supported")
    core = cc.core
    src_core = cc.comm.core_of(src_rank)
    n = _nchunks(nbytes, st.half_bytes)
    base = st.take_recv_base(src_rank, cc.rank, n)
    for i in range(n):
        off = i * st.half_bytes
        span = min(st.half_bytes, nbytes - off)
        buf = st.buffers[i % 2]
        yield from st.staged.wait_at_least(core, src_rank, base + i + 1)
        yield from cc.get(src_rank, buf.offset, dst.sub(off, span), span)
        yield from st.drained.write(core, src_core, cc.rank, base + i + 1)
