"""Non-blocking send/recv with explicit progress (iRCCE-style).

iRCCE's non-blocking operations do not run on a DMA engine -- the SCC
has none; they advance only when the program calls test/wait, which
pushes any chunks whose flags have arrived.  This module models exactly
that discipline, which keeps the simulator's core-serialism honest:

- ``isend``/``irecv`` post a request (allocating its chunk sequence
  numbers immediately, so matching follows posting order);
- :func:`wait_all` *progresses* requests: it peeks each request's gate
  (an untimed flag read -- the test-loop read itself is charged as
  ``t_poll`` per sweep), and when a gate is open it runs that chunk's
  timed work **serially** on the calling core.  Only the *waiting*
  overlaps; the data movement never does, exactly like hardware.

What overlap buys: a rank exchanging halos with two neighbours no longer
imposes an order on their arrivals -- whichever sender is ready first is
served first -- and a send's ack wait overlaps a receive's data wait.

Constraints (asserted or documented): requests between one pair progress
in posting order; outstanding sends of one core share the payload
staging buffer, so send ``i+1`` gates on send ``i``'s final ack; do not
mix blocking and non-blocking transfers on the same ordered pair while
requests are outstanding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..sim import Event, any_of
from ..scc.memory import MemRef
from .twosided import TwoSidedState

if TYPE_CHECKING:  # pragma: no cover
    from .comm import CoreComm


class Request:
    """One posted non-blocking transfer."""

    def __init__(
        self,
        cc: "CoreComm",
        st: TwoSidedState,
        peer: int,
        buf: MemRef,
        nbytes: int,
        is_send: bool,
        prev_send: "Request | None",
    ) -> None:
        self.cc = cc
        self.st = st
        self.peer = peer
        self.buf = buf
        self.nbytes = nbytes
        self.is_send = is_send
        self.prev_send = prev_send  # payload-buffer predecessor (sends only)
        chunk = st.payload_bytes
        self.nchunks = max(1, -(-nbytes // chunk)) if nbytes else 1
        # Allocate the whole sequence range now: matching = posting order.
        if is_send:
            self.seqs = [
                st.next_send_seq(cc.rank, peer) for _ in range(self.nchunks)
            ]
        else:
            self.seqs = [
                st.next_recv_seq(peer, cc.rank) for _ in range(self.nchunks)
            ]
        self._next = 0  # chunks fully processed
        self._staged = 0  # sends: chunks staged (ack may be pending)
        self.done = False

    # -- gates (untimed peeks; the caller charges the test-loop cost) ------

    def _peek_ready(self) -> int:
        return self.st.ready.peek(self.cc.chip, self.cc.core.id, self.peer)

    def _peek_sent(self) -> int:
        return self.st.sent.peek(self.cc.chip, self.cc.core.id, self.peer)

    def refresh(self) -> None:
        """Update ``done`` from flag state (no work to run)."""
        if self.done:
            return
        if self.is_send and self._staged == self.nchunks:
            if self._peek_ready() >= self.seqs[-1]:
                self.done = True

    def gate_open(self) -> bool:
        """Can :meth:`step` make progress right now?"""
        self.refresh()
        if self.done:
            return False
        if self.is_send:
            if self.prev_send is not None:
                self.prev_send.refresh()
                if not self.prev_send.done:
                    return False
            if self._staged == 0:
                return True  # payload free (predecessor drained)
            if self._staged < self.nchunks:
                # Stop-and-wait: previous chunk must be acked.
                return self._peek_ready() >= self.seqs[self._staged - 1]
            return False  # fully staged; only the final ack remains
        return self._peek_sent() >= self.seqs[self._next]

    def watch(self) -> Event:
        """An event that fires when this request's gate MAY have opened."""
        mpb = self.cc.core.mpb
        if self.is_send:
            if self.prev_send is not None and not self.prev_send.done:
                return self.prev_send.watch()
            return mpb.watch(self.st.ready.slot_offset(self.peer))
        return mpb.watch(self.st.sent.slot_offset(self.peer))

    # -- timed work ----------------------------------------------------------

    def step(self) -> Generator:
        """Run one chunk's timed work (call only when ``gate_open()``)."""
        cc = self.cc
        st = self.st
        core = cc.core
        chunk = st.payload_bytes
        if self.is_send:
            i = self._staged
            seq = self.seqs[i]
            off = i * chunk
            span = min(chunk, self.nbytes - off) if self.nbytes else 0
            if span:
                yield from cc.put(cc.rank, st.payload.offset, self.buf.sub(off, span), span)
            yield from st.sent.write(
                core, cc.comm.core_of(self.peer), cc.rank, seq
            )
            self._staged += 1
            self._next += 1
            self.refresh()
        else:
            i = self._next
            seq = self.seqs[i]
            off = i * chunk
            span = min(chunk, self.nbytes - off) if self.nbytes else 0
            if span:
                yield from cc.get(self.peer, st.payload.offset, self.buf.sub(off, span), span)
            yield from st.ready.write(
                core, cc.comm.core_of(self.peer), cc.rank, seq
            )
            self._next += 1
            if self._next == self.nchunks:
                self.done = True


def isend(cc: "CoreComm", dst_rank: int, src: MemRef, nbytes: int) -> Request:
    """Post a non-blocking send (progress via :func:`wait_all`)."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if dst_rank == cc.rank:
        raise ValueError("isend to self is not supported")
    cc.comm.core_of(dst_rank)
    st = cc.comm.twosided
    prev = cc.comm._send_tails.get(cc.core.id)
    req = Request(cc, st, dst_rank, src, nbytes, True, prev)
    cc.comm._send_tails[cc.core.id] = req
    return req


def irecv(cc: "CoreComm", src_rank: int, dst: MemRef, nbytes: int) -> Request:
    """Post a non-blocking receive (progress via :func:`wait_all`)."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if src_rank == cc.rank:
        raise ValueError("irecv from self is not supported")
    cc.comm.core_of(src_rank)
    st = cc.comm.twosided
    return Request(cc, st, src_rank, dst, nbytes, False, None)


def wait_all(cc: "CoreComm", requests: list[Request]) -> Generator:
    """Progress ``requests`` (serially, one chunk of work at a time,
    serving whichever gate opens first) until every one completes."""
    for req in requests:
        if req.cc.core is not cc.core:
            raise ValueError("wait_all progresses this core's requests only")
    pending = [r for r in requests if not r.done]
    while pending:
        progressed = False
        for req in pending:
            while req.gate_open():
                yield from req.step()
                progressed = True
            req.refresh()
        pending = [r for r in pending if not r.done]
        if not pending:
            return
        if not progressed:
            # Test loop: one sweep over the outstanding requests' flags,
            # then sleep until any of their gates may have opened.
            watchers = [r.watch() for r in pending]
            if any(r.gate_open() for r in pending):  # opened while arming
                continue
            yield any_of(cc.core.sim, watchers, name=f"waitall(r{cc.rank})")
            yield cc.core.compute(len(pending) * cc.core.config.t_poll)
