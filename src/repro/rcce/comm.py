"""The communication world: ranks, MPB layout, per-core handles.

A :class:`Comm` binds a set of participating cores (by chip core id) to
ranks ``0..P-1``, owns the symmetric MPB layout, and hands out per-core
:class:`CoreComm` handles that programs drive with ``yield from``.

All collective algorithms in :mod:`repro.collectives` and
:mod:`repro.core` are written against :class:`CoreComm`, so they are
rank-based and agnostic of which physical cores participate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Sequence

from ..scc.chip import SccChip
from ..scc.memory import MemRef
from .flags import (
    Flag,
    FlagValue,
    flag_read_local,
    flag_write,
    flag_write_acked,
    wait_local_flags,
)
from .layout import MpbLayout, MpbRegion
from . import onesided

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.core import Core
    from .twosided import TwoSidedState


class Comm:
    """A communicator over a subset (default: all) of the chip's cores."""

    def __init__(self, chip: SccChip, ranks: Sequence[int] | None = None) -> None:
        self.chip = chip
        self.core_ids: tuple[int, ...] = (
            tuple(ranks) if ranks is not None else tuple(range(chip.num_cores))
        )
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ValueError("duplicate core ids in communicator")
        for cid in self.core_ids:
            if not 0 <= cid < chip.num_cores:
                raise ValueError(f"core id {cid} outside chip")
        self._rank_of = {cid: r for r, cid in enumerate(self.core_ids)}
        self.layout = MpbLayout(chip.config.mpb_lines)
        self._twosided: "TwoSidedState | None" = None
        # Per-core tail of the outstanding non-blocking send chain (the
        # payload staging buffer is shared, so sends gate on each other).
        self._send_tails: dict[int, object] = {}

    @property
    def size(self) -> int:
        return len(self.core_ids)

    def rank_of(self, core_id: int) -> int:
        try:
            return self._rank_of[core_id]
        except KeyError:
            raise ValueError(f"core {core_id} is not in this communicator") from None

    def core_of(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside 0..{self.size - 1}")
        return self.core_ids[rank]

    def flag(self, name: str) -> Flag:
        """Allocate one symmetric flag line."""
        return Flag(self.layout.alloc_lines(1), name=name)

    def attach(self, core: "Core") -> "CoreComm":
        """Per-core handle for the program running on ``core``."""
        return CoreComm(self, core)

    @property
    def twosided(self) -> "TwoSidedState":
        """Lazily allocated RCCE send/recv state (flags + payload buffer)."""
        if self._twosided is None:
            from .twosided import TwoSidedState

            self._twosided = TwoSidedState(self)
        return self._twosided

    def reset_mpb(self) -> None:
        """Zero all participating MPBs (when switching algorithms whose
        regions alias; sequence-numbered flags normally make this
        unnecessary)."""
        for cid in self.core_ids:
            mpb = self.chip.mpbs[cid]
            mpb.write_bytes(0, bytes(mpb.size))


class CoreComm:
    """The view of a :class:`Comm` from one core's program."""

    def __init__(self, comm: Comm, core: "Core") -> None:
        self.comm = comm
        self.core = core
        self.chip = comm.chip
        self.rank = comm.rank_of(core.id)

    @property
    def size(self) -> int:
        return self.comm.size

    # -- memory -----------------------------------------------------------

    def alloc(self, nbytes: int) -> MemRef:
        """Allocate private off-chip memory on this core."""
        return self.core.mem.alloc(nbytes)

    def local_copy(self, dst: MemRef, src: MemRef, nbytes: int) -> Generator:
        """Timed private-memory-to-private-memory copy on this core."""
        if src.owner != self.core.id or dst.owner != self.core.id:
            raise ValueError("local_copy operates on this core's memory only")
        if nbytes < 0 or nbytes > src.nbytes or nbytes > dst.nbytes:
            raise ValueError(f"bad local_copy length {nbytes}")
        if nbytes == 0:
            return
        yield from self.core.mem_read(src.sub(0, nbytes))
        yield from self.core.mem_write(dst.sub(0, nbytes))
        dst.sub(0, nbytes).write(src.sub(0, nbytes).read())

    # -- one-sided ----------------------------------------------------------

    def put(
        self, dst_rank: int, dst_offset: int, src: "MemRef | int", nbytes: int
    ) -> Generator:
        """One-sided put to ``dst_rank``'s MPB (offset in bytes)."""
        yield from onesided.put(
            self.core, self.comm.core_of(dst_rank), dst_offset, src, nbytes
        )

    def get(
        self, src_rank: int, src_offset: int, dst: "MemRef | int", nbytes: int
    ) -> Generator:
        """One-sided get from ``src_rank``'s MPB (offset in bytes)."""
        yield from onesided.get(
            self.core, self.comm.core_of(src_rank), src_offset, dst, nbytes
        )

    def put_acked(
        self,
        dst_rank: int,
        dst_offset: int,
        src: "MemRef | int",
        nbytes: int,
        *,
        max_retries: int = 3,
    ) -> Generator:
        """Acked, bounded-retry put: re-sends un-acked cache lines (see
        :func:`repro.rcce.onesided.put_acked`)."""
        yield from onesided.put_acked(
            self.core,
            self.comm.core_of(dst_rank),
            dst_offset,
            src,
            nbytes,
            max_retries=max_retries,
        )

    def get_acked(
        self,
        src_rank: int,
        src_offset: int,
        dst: "MemRef | int",
        nbytes: int,
        *,
        max_retries: int = 3,
    ) -> Generator:
        """Verified, bounded-retry get: re-fetches until the destination
        matches the source (see :func:`repro.rcce.onesided.get_acked`)."""
        yield from onesided.get_acked(
            self.core,
            self.comm.core_of(src_rank),
            src_offset,
            dst,
            nbytes,
            max_retries=max_retries,
        )

    def put_bytes(
        self, dst_rank: int, dst_offset: int, payload: bytes
    ) -> Generator[object, object, str]:
        """Small register-sourced protocol write (chunk headers,
        membership bitmaps); returns the landed status."""
        return (
            yield from onesided.put_bytes(
                self.core, self.comm.core_of(dst_rank), dst_offset, payload
            )
        )

    def get_bytes(
        self, src_rank: int, src_offset: int, nbytes: int
    ) -> Generator[object, object, bytes]:
        """Small register-destined read of ``src_rank``'s MPB lines."""
        return (
            yield from onesided.get_bytes(
                self.core, self.comm.core_of(src_rank), src_offset, nbytes
            )
        )

    # -- flags ---------------------------------------------------------------

    def flag_set(self, owner_rank: int, flag: Flag, value: FlagValue) -> Generator:
        """Write ``value`` into ``flag`` in ``owner_rank``'s MPB."""
        yield from flag_write(self.core, self.comm.core_of(owner_rank), flag, value)

    def flag_set_acked(
        self,
        owner_rank: int,
        flag: Flag,
        value: FlagValue,
        *,
        max_retries: int = 3,
    ) -> Generator[object, object, FlagValue]:
        """Acknowledged flag write: verify by readback, re-send until it
        lands (see :func:`repro.rcce.flags.flag_write_acked`)."""
        return (
            yield from flag_write_acked(
                self.core,
                self.comm.core_of(owner_rank),
                flag,
                value,
                max_retries=max_retries,
            )
        )

    def flag_poll(self, flag: Flag) -> Generator[object, object, FlagValue]:
        """One timed poll of this core's own copy of ``flag``."""
        return (yield from flag_read_local(self.core, flag))

    def wait_flags(
        self,
        flags: Sequence[Flag],
        predicate: Callable[[Sequence[FlagValue]], bool],
        *,
        sweep_flags: int | None = None,
        timeout: float | None = None,
        site: str = "",
    ) -> Generator[object, object, list[FlagValue]]:
        """Block until ``predicate`` holds over own copies of ``flags``.
        With ``timeout``, raise :class:`repro.sim.TimeoutError` when the
        poll budget expires instead of spinning forever."""
        return (
            yield from wait_local_flags(
                self.core,
                flags,
                predicate,
                sweep_flags=sweep_flags,
                timeout=timeout,
                site=site,
            )
        )

    def wait_flag_equals(self, flag: Flag, value: FlagValue) -> Generator:
        """Block until own copy of ``flag`` equals ``value`` exactly."""
        yield from wait_local_flags(self.core, [flag], lambda v: v[0] == value)

    def wait_flag_at_least(self, flag: Flag, tag: int, seq: int) -> Generator:
        """Block until own ``flag`` has ``tag`` and ``seq >= seq``."""
        yield from wait_local_flags(
            self.core, [flag], lambda v: v[0].tag == tag and v[0].seq >= seq
        )

    # -- two-sided -------------------------------------------------------------

    def send(self, dst_rank: int, src: MemRef, nbytes: int) -> Generator:
        """Blocking RCCE-style send (matching :meth:`recv` required)."""
        from .twosided import send

        yield from send(self, dst_rank, src, nbytes)

    def recv(self, src_rank: int, dst: MemRef, nbytes: int) -> Generator:
        """Blocking RCCE-style receive."""
        from .twosided import recv

        yield from recv(self, src_rank, dst, nbytes)

    # -- non-blocking (explicit progress, iRCCE-style) ----------------------

    def isend(self, dst_rank: int, src: MemRef, nbytes: int):
        """Post a non-blocking send; progress with :meth:`wait_all`."""
        from .nonblocking import isend

        return isend(self, dst_rank, src, nbytes)

    def irecv(self, src_rank: int, dst: MemRef, nbytes: int):
        """Post a non-blocking receive; progress with :meth:`wait_all`."""
        from .nonblocking import irecv

        return irecv(self, src_rank, dst, nbytes)

    def wait_all(self, requests) -> Generator:
        """Progress and complete the given non-blocking requests."""
        from .nonblocking import wait_all

        yield from wait_all(self, requests)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CoreComm rank={self.rank} core={self.core.id}>"
