"""The communication world: ranks, MPB layout, per-core handles.

A :class:`Comm` binds a set of participating cores (by chip core id) to
ranks ``0..P-1``, owns the symmetric MPB layout, and hands out per-core
:class:`CoreComm` handles that programs drive with ``yield from``.

All collective algorithms in :mod:`repro.collectives` and
:mod:`repro.core` are written against :class:`CoreComm`, so they are
rank-based and agnostic of which physical cores participate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Sequence

from ..scc.chip import SccChip
from ..scc.memory import MemRef
from ..resilience.policy import RetryPolicy
from .flags import (
    DigestSlotArray,
    Flag,
    FlagSlotArray,
    FlagValue,
    flag_put,
    flag_read_local,
    wait_local_flags,
)
from .layout import MpbLayout, MpbRegion
from . import onesided

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.core import Core
    from .twosided import TwoSidedState


class Comm:
    """A communicator over a subset (default: all) of the chip's cores."""

    def __init__(self, chip: SccChip, ranks: Sequence[int] | None = None) -> None:
        self.chip = chip
        self.core_ids: tuple[int, ...] = (
            tuple(ranks) if ranks is not None else tuple(range(chip.num_cores))
        )
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ValueError("duplicate core ids in communicator")
        for cid in self.core_ids:
            if not 0 <= cid < chip.num_cores:
                raise ValueError(f"core id {cid} outside chip")
        self._rank_of = {cid: r for r, cid in enumerate(self.core_ids)}
        self.layout = MpbLayout(chip.config.mpb_lines)
        #: Optional transport-level fault layer (differential testing):
        #: an object with ``on_trace(rank, kind, detail)`` consulted by
        #: :meth:`CoreComm.trace` before every protocol trace event.  It
        #: may raise :class:`repro.sim.FaultInjected` to crash the rank
        #: at a *logical* protocol point -- the backend-agnostic crash
        #: coordinate the differential harness uses.  ``None`` (the
        #: default) adds one attribute check per protocol trace.
        self.transport_faults = None
        self._twosided: "TwoSidedState | None" = None
        # Per-core tail of the outstanding non-blocking send chain (the
        # payload staging buffer is shared, so sends gate on each other).
        self._send_tails: dict[int, object] = {}

    @property
    def size(self) -> int:
        return len(self.core_ids)

    def rank_of(self, core_id: int) -> int:
        try:
            return self._rank_of[core_id]
        except KeyError:
            raise ValueError(f"core {core_id} is not in this communicator") from None

    def core_of(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside 0..{self.size - 1}")
        return self.core_ids[rank]

    def flag(self, name: str) -> Flag:
        """Allocate one symmetric flag line."""
        return Flag(self.layout.alloc_lines(1), name=name)

    def attach(self, core: "Core") -> "CoreComm":
        """Per-core handle for the program running on ``core``."""
        return CoreComm(self, core)

    @property
    def twosided(self) -> "TwoSidedState":
        """Lazily allocated RCCE send/recv state (flags + payload buffer)."""
        if self._twosided is None:
            from .twosided import TwoSidedState

            self._twosided = TwoSidedState(self)
        return self._twosided

    def reset_mpb(self) -> None:
        """Zero all participating MPBs (when switching algorithms whose
        regions alias; sequence-numbered flags normally make this
        unnecessary)."""
        for cid in self.core_ids:
            mpb = self.chip.mpbs[cid]
            mpb.write_bytes(0, bytes(mpb.size))


class CoreComm:
    """The view of a :class:`Comm` from one core's program."""

    def __init__(self, comm: Comm, core: "Core") -> None:
        self.comm = comm
        self.core = core
        self.chip = comm.chip
        self.rank = comm.rank_of(core.id)

    @property
    def size(self) -> int:
        return self.comm.size

    # -- memory -----------------------------------------------------------

    def alloc(self, nbytes: int) -> MemRef:
        """Allocate private off-chip memory on this core."""
        return self.core.mem.alloc(nbytes)

    def local_copy(self, dst: MemRef, src: MemRef, nbytes: int) -> Generator:
        """Timed private-memory-to-private-memory copy on this core."""
        if src.owner != self.core.id or dst.owner != self.core.id:
            raise ValueError("local_copy operates on this core's memory only")
        if nbytes < 0 or nbytes > src.nbytes or nbytes > dst.nbytes:
            raise ValueError(f"bad local_copy length {nbytes}")
        if nbytes == 0:
            return
        yield from self.core.mem_read(src.sub(0, nbytes))
        yield from self.core.mem_write(dst.sub(0, nbytes))
        dst.sub(0, nbytes).write(src.sub(0, nbytes).read())

    # -- one-sided ----------------------------------------------------------

    def put(
        self, dst_rank: int, dst_offset: int, src: "MemRef | int", nbytes: int
    ) -> Generator:
        """One-sided put to ``dst_rank``'s MPB (offset in bytes)."""
        yield from onesided.put(
            self.core, self.comm.core_of(dst_rank), dst_offset, src, nbytes
        )

    def get(
        self, src_rank: int, src_offset: int, dst: "MemRef | int", nbytes: int
    ) -> Generator:
        """One-sided get from ``src_rank``'s MPB (offset in bytes)."""
        yield from onesided.get(
            self.core, self.comm.core_of(src_rank), src_offset, dst, nbytes
        )

    def put_acked(
        self,
        dst_rank: int,
        dst_offset: int,
        src: "MemRef | int",
        nbytes: int,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        """Acked, bounded-retry put: re-sends un-acked cache lines (see
        :func:`repro.rcce.onesided.put_acked`)."""
        yield from onesided.put_acked(
            self.core,
            self.comm.core_of(dst_rank),
            dst_offset,
            src,
            nbytes,
            max_retries=max_retries,
            policy=policy,
        )

    def get_acked(
        self,
        src_rank: int,
        src_offset: int,
        dst: "MemRef | int",
        nbytes: int,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        """Verified, bounded-retry get: re-fetches until the destination
        matches the source (see :func:`repro.rcce.onesided.get_acked`)."""
        yield from onesided.get_acked(
            self.core,
            self.comm.core_of(src_rank),
            src_offset,
            dst,
            nbytes,
            max_retries=max_retries,
            policy=policy,
        )

    def put_bytes(
        self, dst_rank: int, dst_offset: int, payload: bytes
    ) -> Generator[object, object, str]:
        """Small register-sourced protocol write (chunk headers,
        membership bitmaps); returns the landed status."""
        return (
            yield from onesided.put_bytes(
                self.core, self.comm.core_of(dst_rank), dst_offset, payload
            )
        )

    def get_bytes(
        self, src_rank: int, src_offset: int, nbytes: int
    ) -> Generator[object, object, bytes]:
        """Small register-destined read of ``src_rank``'s MPB lines."""
        return (
            yield from onesided.get_bytes(
                self.core, self.comm.core_of(src_rank), src_offset, nbytes
            )
        )

    # -- flags ---------------------------------------------------------------

    def flag_set(self, owner_rank: int, flag: Flag, value: FlagValue) -> Generator:
        """Write ``value`` into ``flag`` in ``owner_rank``'s MPB."""
        yield from flag_put(
            self.core, self.comm.core_of(owner_rank), flag, value, acked=False
        )

    def flag_set_acked(
        self,
        owner_rank: int,
        flag: Flag,
        value: FlagValue,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator[object, object, FlagValue]:
        """Acknowledged flag write: verify by readback, re-send until it
        lands (see :func:`repro.rcce.flags.flag_write_acked`)."""
        return (
            yield from flag_put(
                self.core,
                self.comm.core_of(owner_rank),
                flag,
                value,
                acked=True,
                max_retries=max_retries,
                policy=policy,
            )
        )

    def flag_poll(self, flag: Flag) -> Generator[object, object, FlagValue]:
        """One timed poll of this core's own copy of ``flag``."""
        return (yield from flag_read_local(self.core, flag))

    def wait_flags(
        self,
        flags: Sequence[Flag],
        predicate: Callable[[Sequence[FlagValue]], bool],
        *,
        sweep_flags: int | None = None,
        timeout: float | None = None,
        site: str = "",
    ) -> Generator[object, object, list[FlagValue]]:
        """Block until ``predicate`` holds over own copies of ``flags``.
        With ``timeout``, raise :class:`repro.sim.TimeoutError` when the
        poll budget expires instead of spinning forever."""
        return (
            yield from wait_local_flags(
                self.core,
                flags,
                predicate,
                sweep_flags=sweep_flags,
                timeout=timeout,
                site=site,
            )
        )

    def wait_flag_equals(self, flag: Flag, value: FlagValue) -> Generator:
        """Block until own copy of ``flag`` equals ``value`` exactly."""
        yield from wait_local_flags(self.core, [flag], lambda v: v[0] == value)

    def wait_flag_at_least(self, flag: Flag, tag: int, seq: int) -> Generator:
        """Block until own ``flag`` has ``tag`` and ``seq >= seq``."""
        yield from wait_local_flags(
            self.core, [flag], lambda v: v[0].tag == tag and v[0].seq >= seq
        )

    # -- transport interface: identity, timing and observability hooks -------
    #
    # Everything below (together with the one-sided/flag/slot primitives
    # above) forms the narrow ``Transport`` surface protocols are written
    # against (see :mod:`repro.transport.api`).  Each method delegates to
    # exactly the chip/core call chain the protocol call sites used
    # before the extraction, so the SCC paths stay bit-identical.

    @property
    def core_id(self) -> int:
        """The physical identity of this endpoint (chip core id here;
        the rank itself on backends without a core/rank distinction)."""
        return self.core.id

    @property
    def now(self) -> float:
        """Current virtual time (microseconds)."""
        return self.core.sim.now

    @property
    def t_poll(self) -> float:
        """Cost of one flag poll on this endpoint (microseconds)."""
        return self.core.config.t_poll

    @property
    def tracer_enabled(self) -> bool:
        return self.chip.tracer.enabled

    @property
    def has_faults(self) -> bool:
        """Whether a fault injector is attached to this backend."""
        return self.chip.faults is not None

    def trace(self, kind: str, **detail: object) -> None:
        """Emit one protocol trace record as ``rank{rank}``.  The
        transport fault layer (differential crash coordinates) hooks
        here; it may raise :class:`repro.sim.FaultInjected`."""
        tf = self.comm.transport_faults
        if tf is not None:
            tf.on_trace(self.rank, kind, detail)
        self.chip.trace(f"rank{self.rank}", kind, **detail)

    def metric_inc(self, name: str, n: int = 1) -> None:
        if self.chip.metrics is not None:
            self.chip.metrics.inc(name, n)

    def metric_set(self, name: str, value: float) -> None:
        if self.chip.metrics is not None:
            self.chip.metrics.set(name, value)

    def observe_histogram(self, name: str, bounds, value: float) -> None:
        if self.chip.metrics is not None:
            self.chip.metrics.histogram(name, bounds).observe(value)

    def compute(self, duration: float) -> Generator:
        """Local compute for ``duration`` microseconds."""
        yield self.core.compute(duration)

    def read_local(self, offset: int, nbytes: int) -> bytes:
        """Untimed read of this endpoint's own MPB bytes (timed callers
        charge the access themselves)."""
        return self.chip.mpbs[self.core.id].read_bytes(offset, nbytes)

    def mpb_charge_local(self, lines: int, *, write: bool = False) -> Generator:
        """The timed cost of touching ``lines`` of the own MPB."""
        yield from self.core.mpb_access(self.core.id, lines, write=write)

    def mem_read(self, ref: MemRef) -> Generator:
        """Timed private-memory read of ``ref`` (own memory only)."""
        yield from self.core.mem_read(ref)

    def mem_write(self, ref: MemRef) -> Generator:
        """Timed private-memory write of ``ref`` (own memory only)."""
        yield from self.core.mem_write(ref)

    def flag_peek(self, flag: Flag) -> FlagValue:
        """Untimed read of this endpoint's own copy of ``flag``."""
        return flag.peek(self.chip, self.core.id)

    # -- transport interface: fault/adversary hooks --------------------------

    def adversary_stage(self):
        """The Byzantine staging hook (EQUIVOCATE window), or ``None``."""
        faults = self.chip.faults
        return None if faults is None else faults.adversary_stage(self.core.id)

    def quorum_vote(self):
        """The Byzantine vote hook (FORGE/LIE specs), or ``None``."""
        faults = self.chip.faults
        return None if faults is None else faults.quorum_vote(self.core.id)

    def note_recovery(self, site: str, note: str = "") -> None:
        if self.chip.faults is not None:
            self.chip.faults.note_recovery(site, note=note)

    def first_fault_time(self) -> float | None:
        """Time of the first injected fault, or ``None`` (repair
        telemetry baselines)."""
        faults = self.chip.faults
        if faults is not None and faults.injected:
            return faults.injected[0].time
        return None

    # -- transport interface: slot arrays (heartbeats, claims, ring) ---------

    def slot_write(
        self, array: FlagSlotArray, owner_rank: int, slot: int, value: int
    ) -> Generator:
        yield from array.write(
            self.core, self.comm.core_of(owner_rank), slot, value
        )

    def slot_write_acked(
        self,
        array: FlagSlotArray,
        owner_rank: int,
        slot: int,
        value: int,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        yield from array.write_acked(
            self.core,
            self.comm.core_of(owner_rank),
            slot,
            value,
            max_retries=max_retries,
            policy=policy,
        )

    def slot_peek(self, array: FlagSlotArray, slot: int) -> int:
        """Untimed read of the own copy of one slot."""
        return array.peek(self.chip, self.core.id, slot)

    def slot_wait_at_least(
        self,
        array: FlagSlotArray,
        slot: int,
        value: int,
        *,
        timeout: float | None = None,
    ) -> Generator[object, object, int]:
        return (
            yield from array.wait_at_least(self.core, slot, value, timeout=timeout)
        )

    def slot_wait_any_at_least(
        self,
        array: FlagSlotArray,
        slots: Sequence[int],
        value: int,
        *,
        timeout: float,
        site: str = "",
    ) -> Generator[object, object, int]:
        return (
            yield from array.wait_any_at_least(
                self.core, slots, value, timeout=timeout, site=site
            )
        )

    # -- transport interface: digest vote slots (RBC) -------------------------

    def vote_write(
        self, array: DigestSlotArray, owner_rank: int, slot: int, seq: int,
        digest: int,
    ) -> Generator:
        yield from array.write(
            self.core, self.comm.core_of(owner_rank), slot, seq, digest
        )

    def vote_write_acked(
        self,
        array: DigestSlotArray,
        owner_rank: int,
        slot: int,
        seq: int,
        digest: int,
        *,
        max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        yield from array.write_acked(
            self.core,
            self.comm.core_of(owner_rank),
            slot,
            seq,
            digest,
            max_retries=max_retries,
            policy=policy,
        )

    def vote_peek(self, array: DigestSlotArray, slot: int) -> tuple[int, int]:
        """Untimed read of the own copy of one vote slot."""
        return array.peek(self.chip, self.core.id, slot)

    def vote_wait_quorum(
        self,
        array: DigestSlotArray,
        seq: int,
        need: int,
        *,
        timeout: float,
        site: str = "",
    ) -> Generator[object, object, int]:
        return (
            yield from array.wait_quorum(
                self.core, seq, need, timeout=timeout, site=site
            )
        )

    # -- two-sided -------------------------------------------------------------

    def send(self, dst_rank: int, src: MemRef, nbytes: int) -> Generator:
        """Blocking RCCE-style send (matching :meth:`recv` required)."""
        from .twosided import send

        yield from send(self, dst_rank, src, nbytes)

    def recv(self, src_rank: int, dst: MemRef, nbytes: int) -> Generator:
        """Blocking RCCE-style receive."""
        from .twosided import recv

        yield from recv(self, src_rank, dst, nbytes)

    # -- non-blocking (explicit progress, iRCCE-style) ----------------------

    def isend(self, dst_rank: int, src: MemRef, nbytes: int):
        """Post a non-blocking send; progress with :meth:`wait_all`."""
        from .nonblocking import isend

        return isend(self, dst_rank, src, nbytes)

    def irecv(self, src_rank: int, dst: MemRef, nbytes: int):
        """Post a non-blocking receive; progress with :meth:`wait_all`."""
        from .nonblocking import irecv

        return irecv(self, src_rank, dst, nbytes)

    def wait_all(self, requests) -> Generator:
        """Progress and complete the given non-blocking requests."""
        from .nonblocking import wait_all

        yield from wait_all(self, requests)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CoreComm rank={self.rank} core={self.core.id}>"
