"""Symmetric MPB space allocation.

Like RCCE's ``RCCE_malloc``, allocation is *symmetric*: one allocation
reserves the same offset range in every participating core's MPB, so a
core can address a peer's buffer with its own offsets.  The allocator is
owned by the :class:`~repro.rcce.comm.Comm` world; every algorithm layered
on a world allocates from the same line pool and gets non-overlapping
regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scc.config import CACHE_LINE


@dataclass(frozen=True)
class MpbRegion:
    """A symmetric region: the same [offset, offset+nbytes) in every MPB."""

    offset: int
    nbytes: int

    @property
    def lines(self) -> int:
        return self.nbytes // CACHE_LINE

    def line(self, i: int) -> int:
        """Byte offset of the i-th cache line of the region."""
        if not 0 <= i < self.lines:
            raise IndexError(f"line {i} outside region of {self.lines} lines")
        return self.offset + i * CACHE_LINE

    def sub(self, line_offset: int, lines: int) -> "MpbRegion":
        """A sub-region given in cache lines."""
        if line_offset < 0 or lines < 0 or (line_offset + lines) > self.lines:
            raise IndexError(
                f"sub-region [{line_offset}, {line_offset + lines}) outside "
                f"region of {self.lines} lines"
            )
        return MpbRegion(self.offset + line_offset * CACHE_LINE, lines * CACHE_LINE)


class MpbLayout:
    """Line-granular symmetric bump allocator over the per-core MPB."""

    def __init__(self, mpb_lines: int) -> None:
        self.mpb_lines = mpb_lines
        self._next_line = 0

    @property
    def used_lines(self) -> int:
        return self._next_line

    @property
    def free_lines(self) -> int:
        return self.mpb_lines - self._next_line

    def alloc_lines(self, lines: int) -> MpbRegion:
        """Reserve ``lines`` cache lines symmetrically in every MPB."""
        if lines < 0:
            raise ValueError("allocation must be >= 0 lines")
        if self._next_line + lines > self.mpb_lines:
            raise MemoryError(
                f"MPB layout exhausted: requested {lines} lines, "
                f"{self.free_lines} of {self.mpb_lines} free"
            )
        region = MpbRegion(self._next_line * CACHE_LINE, lines * CACHE_LINE)
        self._next_line += lines
        return region

    def alloc_bytes(self, nbytes: int) -> MpbRegion:
        """Reserve enough whole cache lines to hold ``nbytes``."""
        lines = -(-nbytes // CACHE_LINE)
        return self.alloc_lines(lines)
