"""RCCE-style communication library on the simulated chip.

Mirrors the layering of Intel's RCCE / iRCCE libraries that the paper's
baselines use:

- :mod:`repro.rcce.layout` -- symmetric MPB space allocation,
- :mod:`repro.rcce.flags` -- cache-line synchronization flags,
- :mod:`repro.rcce.onesided` -- one-sided ``put``/``get`` (Formulas 7-12),
- :mod:`repro.rcce.twosided` -- blocking ``send``/``recv`` built on top,
- :mod:`repro.rcce.ircce` -- iRCCE-style double-buffered point-to-point,
- :mod:`repro.rcce.comm` -- the :class:`Comm` world object gluing it all
  to a chip and to per-core :class:`CoreComm` handles.

Programs obtain a :class:`CoreComm` via ``comm.attach(core)`` and drive
all operations with ``yield from``.
"""

from .comm import Comm, CoreComm
from .flags import DigestSlotArray, Flag, FlagSlotArray, FlagValue, flag_write_acked
from .ircce import IrcceState, pipelined_recv, pipelined_send
from .nonblocking import Request, irecv, isend, wait_all
from .layout import MpbLayout, MpbRegion
from .onesided import get_acked, put_acked

__all__ = [
    "Comm",
    "CoreComm",
    "Flag",
    "DigestSlotArray",
    "FlagSlotArray",
    "FlagValue",
    "flag_write_acked",
    "get_acked",
    "put_acked",
    "IrcceState",
    "MpbLayout",
    "MpbRegion",
    "Request",
    "irecv",
    "isend",
    "pipelined_recv",
    "pipelined_send",
    "wait_all",
]
