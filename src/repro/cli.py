"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro info
    python -m repro bcast --algo oc --k 7 --cache-lines 96
    python -m repro sweep --algos oc:7 oc:2 binomial --sizes 1 16 96 192
    python -m repro sweep --algos oc:7 scatter_allgather \\
        --sizes 16 96 1024 4096 --throughput --chart
    python -m repro bcast --cache-lines 96 --metrics
    python -m repro trace --algo oc --k 7 --cache-lines 96 -o trace.json
    python -m repro contention --op get --lines 128
    python -m repro faults --trials 50 --kinds drop_flag crash --timeline
    python -m repro faults --trials 20 --byz --adversaries 3 --timeline
    python -m repro faults --trials 500 --fault-rate 0.05 --fidelity adaptive
    python -m repro sweep --algos oc:7 --sizes 1 16 96 192 --mode analytic
    python -m repro fit
    python -m repro model --what table2
    python -m repro model --what fig6 --mode analytic

Every command builds a fresh simulated chip, runs on it, and prints
tables (optionally ASCII charts) to stdout.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench import (
    BcastSpec,
    FaultCampaign,
    format_fault_timeline,
    format_series,
    format_table,
    default_jobs,
    run_broadcast,
    run_campaign_parallel,
    sweep_broadcast_parallel,
    sweep_putget,
)
from .bench.faultcampaign import parse_kinds
from .faults import CRASH_SITES
from .bench.ascii_plot import ascii_chart
from .bench.contention import contention_sweep
from .model import TABLE_1, broadcast as model_bcast, fitting
from .scc import (
    AnalyticEngine,
    AnalyticUnsupported,
    ContentionMode,
    SccConfig,
    resolve_contention_mode,
)
from .scc.config import CACHE_LINE


def _parse_spec(text: str) -> BcastSpec:
    """'oc:7' -> OC-Bcast with k=7; 'binomial' / 'scatter_allgather' as-is."""
    if text.startswith("oc"):
        k = int(text.split(":", 1)[1]) if ":" in text else 7
        return BcastSpec("oc", k=k)
    return BcastSpec(text)


def _config(args: argparse.Namespace) -> SccConfig:
    # Subcommands without --mode fall back to the chip default (batch).
    return SccConfig(
        mesh_cols=args.mesh_cols,
        mesh_rows=args.mesh_rows,
        contention_mode=resolve_contention_mode(getattr(args, "mode", "batch")),
    )


def _add_mesh_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh-cols", type=int, default=6, help="mesh columns (default 6)")
    p.add_argument("--mesh-rows", type=int, default=4, help="mesh rows (default 4)")


def _add_mode_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--mode", default="batch",
        choices=[m.value for m in ContentionMode],
        help="contention fidelity: exact = per-line port arbitration, "
             "batch = whole-transfer port holds (default), ideal = no "
             "queueing, analytic = closed-form numpy replay of the "
             "IDEAL protocol without the event kernel (OC-Bcast only)",
    )


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent runs (0 = one per CPU core, "
             "default 1 = in-process); results are identical for any N",
    )


def cmd_info(args: argparse.Namespace) -> int:
    cfg = _config(args)
    rows = [
        ["cores", cfg.num_cores],
        ["tiles", f"{cfg.mesh_cols}x{cfg.mesh_rows}"],
        ["MPB per core", f"{cfg.mpb_bytes} B ({cfg.mpb_lines} lines)"],
        ["cache line", f"{CACHE_LINE} B"],
        ["L_hop", f"{cfg.l_hop} us"],
        ["o_mpb", f"{cfg.o_mpb} us"],
        ["o_mem_r / o_mem_w", f"{cfg.o_mem_r} / {cfg.o_mem_w} us"],
        ["contention mode", cfg.contention_mode.value],
    ]
    print(format_table(["property", "value"], rows, title="Simulated chip"))
    return 0


#: Headline metrics shown by ``bcast --metrics`` (the full registry goes
#: to ``--metrics-out``); everything else is in docs/OBSERVABILITY.md.
_HEADLINE_METRICS = (
    "sim.events_scheduled",
    "trace.records",
    "mpb.port.acquisitions.total",
    "mpb.port.wait_time.total",
    "mpb.port.utilisation.max",
    "mpb.port.max_queue.max",
    "mpb.port.coalesced_cycles.total",
    "core.compute_time.total",
    "core.mpb_time.total",
    "core.mem_time.total",
    "core.poll_time.total",
    "core.idle_time.total",
)


def _metrics_report(metrics, out_path: str | None) -> None:
    flat = metrics.flat()
    rows = [[k, f"{flat[k]:.4g}"] for k in _HEADLINE_METRICS if k in flat]
    if not rows:  # analytic runs have protocol counters, no kernel stats
        rows = [[k, f"{flat[k]:.4g}"] for k in sorted(flat)]
    print()
    print(format_table(["metric", "value"], rows, title="Metrics"))
    if out_path:
        payload = (
            metrics.to_csv() if out_path.endswith(".csv") else metrics.to_json() + "\n"
        )
        with open(out_path, "w") as fh:
            fh.write(payload)
        print(f"full registry ({len(metrics)} metrics) written to {out_path}")


def cmd_bcast(args: argparse.Namespace) -> int:
    spec = _parse_spec(args.algo if args.algo != "oc" else f"oc:{args.k}")
    metrics = None
    if args.metrics or args.metrics_out:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    try:
        res = run_broadcast(
            spec,
            args.cache_lines * CACHE_LINE,
            config=_config(args),
            root=args.root,
            iters=args.iters,
            warmup=args.warmup,
            metrics=metrics,
        )
    except AnalyticUnsupported as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    if not res.verified:
        print("ERROR: payload verification failed", file=sys.stderr)
        return 1
    rows = [
        ["algorithm", spec.label],
        ["message", f"{args.cache_lines} cache lines ({res.nbytes} B)"],
        ["mean latency", f"{res.mean_latency:.2f} us"],
        ["per-iteration", ", ".join(f"{v:.2f}" for v in res.latencies)],
        ["latency throughput", f"{res.throughput_mb_s:.2f} MB/s"],
        ["steady throughput", f"{res.steady_throughput_mb_s:.2f} MB/s"],
    ]
    print(format_table(["metric", "value"], rows, title="Broadcast"))
    if metrics is not None:
        _metrics_report(metrics, args.metrics_out)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        InvariantChecker,
        MetricsRegistry,
        to_chrome_trace,
        validate_chrome_trace,
    )
    from .sim import Tracer

    spec = _parse_spec(args.algo if args.algo != "oc" else f"oc:{args.k}")
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry()
    checker = InvariantChecker()
    tracer.add_listener(checker.feed)
    res = run_broadcast(
        spec,
        args.cache_lines * CACHE_LINE,
        config=_config(args),
        root=args.root,
        iters=args.iters,
        warmup=args.warmup,
        metrics=metrics,
        tracer=tracer,
    )
    doc = to_chrome_trace(tracer.records)
    validate_chrome_trace(doc)
    import json as _json

    with open(args.output, "w") as fh:
        _json.dump(doc, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    rows = [
        ["algorithm", spec.label],
        ["message", f"{args.cache_lines} cache lines ({res.nbytes} B)"],
        ["mean latency", f"{res.mean_latency:.2f} us"],
        ["trace records", len(tracer.records)],
        ["trace events", len(doc["traceEvents"])],
        ["invariants", "OK" if checker.ok else f"{len(checker.violations)} VIOLATED"],
        ["output", args.output],
    ]
    print(format_table(["metric", "value"], rows, title="Trace export"))
    print(f"load {args.output} in https://ui.perfetto.dev or chrome://tracing")
    if args.metrics_out:
        _metrics_report(metrics, args.metrics_out)
    if not checker.ok:
        print(f"\n{checker.violations[0]}", file=sys.stderr)
        return 1
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    specs = [_parse_spec(a) for a in args.algos]
    try:
        out = sweep_broadcast_parallel(
            specs, args.sizes, config=_config(args), iters=args.iters,
            warmup=args.warmup, jobs=args.jobs or default_jobs(),
        )
    except AnalyticUnsupported as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    if args.throughput:
        series = {
            label: [r.steady_throughput_mb_s for r in rows]
            for label, rows in out.items()
        }
        what = "steady throughput (MB/s)"
    else:
        series = {
            label: [r.mean_latency for r in rows] for label, rows in out.items()
        }
        what = "mean latency (us)"
    print(format_series("CL", list(args.sizes), series, title=f"Broadcast {what}"))
    if args.chart:
        print()
        print(
            ascii_chart(
                list(args.sizes),
                series,
                logx=max(args.sizes) / max(1, min(args.sizes)) > 50,
                title=f"Broadcast {what}",
                x_label="CL",
                y_label=what.split()[-1],
            )
        )
    return 0


def cmd_contention(args: argparse.Namespace) -> int:
    rows = contention_sweep(
        args.op, args.lines, counts=args.counts, config=_config(args), iters=args.iters
    )
    print(
        format_table(
            ["cores", "mean (us)", "fastest", "slowest", "slow/fast"],
            [[r.n_cores, r.mean, r.fastest, r.slowest, r.spread] for r in rows],
            title=f"Concurrent {args.op} of {args.lines} cache line(s)",
        )
    )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    try:
        names = list(args.kinds)
        if args.burst and "link_down" not in names:
            names.append("link_down")
        campaign = FaultCampaign(
            trials=args.trials,
            seed=args.seed,
            kinds=parse_kinds(names),
            nbytes=args.cache_lines * CACHE_LINE,
            config=_config(args),
            compare_baseline=not args.no_baseline,
            service=args.service,
            faults_per_trial=args.faults_per_trial,
            crash_site=args.crash_site,
            mid_stream=args.mid_stream,
            link_down_duration=args.burst_duration,
            byz=args.byz,
            adversaries=args.adversaries,
            fault_rate=args.fault_rate,
            fidelity=args.fidelity,
        )
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    result = run_campaign_parallel(campaign, jobs=args.jobs or default_jobs())
    print(result.summary())
    if args.timeline:
        print()
        print(format_fault_timeline(result.timeline))
    # A campaign "fails" only if a hardened mode lost a trial it should
    # win: the FT layer against its single-fault adversary, the service
    # against anything (it must never wedge or deliver wrong bytes), the
    # Byzantine mode against honest-member divergence (agreed and
    # uniformly-refused trials are both wins).
    lost = result.ft_counts["deadlock"] + result.ft_counts["corrupt"]
    if result.service_counts is not None:
        lost += (result.service_counts["deadlock"]
                 + result.service_counts["corrupt"])
    if result.byz_counts is not None:
        lost += (result.byz_counts["disagreement"]
                 + result.byz_counts["partial"]
                 + result.byz_counts["deadlock"])
    # Self-reproducing failures: every non-recovered hardened-leg trial
    # becomes a replayable chaos bundle with a one-line repro command
    # (docs/FAULTS.md §9), instead of just a counter bump.
    if args.bundle_dir:
        from .chaos import repro_command, write_campaign_bundles

        written = write_campaign_bundles(
            campaign, result, args.bundle_dir, limit=5
        )
        for path, leg, index in written:
            run = getattr(result.trials[index], leg)
            print(
                f"lost trial {index} ({leg}: {run.outcome}) -- repro: "
                f"{repro_command(path)}"
            )
    return 1 if lost else 0


def cmd_churn(args: argparse.Namespace) -> int:
    from .bench import ChurnCampaign

    try:
        campaign = ChurnCampaign(
            trials=args.trials,
            seed=args.seed,
            broadcasts=args.broadcasts,
            flap_period=args.flap_period,
            flap_duty=args.flap_duty,
            crash=not args.no_crash,
            compare_fixed=not args.no_fixed,
            check_i8=not args.no_i8,
        )
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    result = campaign.run()
    print(result.summary())
    # The campaign's promise is the ISSUE-10 acceptance bar: every
    # adaptive trial terminates cleanly with zero false evictions and
    # zero online I8 violations.
    failed = (result.termination_rate < 1.0
              or result.n_false_evictions
              or result.n_i8_violations)
    return 1 if failed else 0


def _parse_chaos_mesh(text: str) -> tuple[int, int]:
    """'3x2' -> (3, 2) mesh columns x rows."""
    try:
        cols, rows = text.lower().split("x", 1)
        return (int(cols), int(rows))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"mesh must look like COLSxROWS (e.g. 6x4), got {text!r}"
        ) from None


def cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import (
        ReproBundle, ScheduleGenerator, repro_command, run_soak, shrink,
    )

    if args.replay:
        failed = 0
        for path in args.replay:
            bundle = ReproBundle.load(path)
            outcome, mismatches = bundle.replay()
            tag = "OK" if not mismatches else "MISMATCH"
            print(f"[{tag}] {path}: {outcome.describe()}")
            if bundle.note:
                print(f"  note: {bundle.note}")
            for line in mismatches:
                print(f"  {line}")
                failed += 1
            if args.shrink and outcome.classification == "violation":
                result = shrink(outcome.schedule, max_runs=args.shrink_runs)
                print(f"  {result.describe()}")
                print(f"  minimal schedule: {result.schedule.describe()}")
        return 1 if failed else 0

    if args.trials is not None and args.trials < 1:
        print("ERROR: need at least one trial", file=sys.stderr)
        return 2
    if args.budget is not None and args.budget <= 0:
        print("ERROR: budget must be positive", file=sys.stderr)
        return 2
    try:
        generator = ScheduleGenerator(
            seed=args.seed,
            backends=tuple(args.backends),
            meshes=tuple(args.meshes),
            modes=tuple(args.modes),
            max_events=args.max_events,
            max_chunks=args.max_chunks,
            fragile=args.fragile,
        )
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    metrics = None
    if args.metrics_out:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    result = run_soak(
        generator,
        trials=args.trials,
        budget=args.budget,
        jobs=args.jobs or default_jobs(),
        out_dir=args.out_dir,
        shrink_failures=not args.no_shrink,
        shrink_runs=args.shrink_runs,
        metrics=metrics,
        log=print if args.verbose else None,
    )
    print(result.summary())
    if metrics is not None:
        _metrics_report(metrics, args.metrics_out)
    return 0 if result.ok else 1


def cmd_fit(args: argparse.Namespace) -> int:
    obs = sweep_putget(_config(args), iters=args.iters)
    result = fitting.fit(obs)
    rows = [
        [name, fitted, ref, f"{rel * 100:.3f}%"]
        for name, (fitted, ref, rel) in result.compare(TABLE_1).items()
    ]
    print(
        format_table(
            ["parameter", "fitted (us)", "Table 1 (us)", "error"],
            rows,
            title=f"LogP fit over {result.n_observations} observations "
                  f"(residual RMS {result.residual_rms:.2e})",
            float_fmt="{:.4f}",
        )
    )
    return 0


def _model_mesh(cores: int) -> SccConfig:
    """A chip geometry with exactly ``cores`` cores for engine-backed
    model evaluation (48 -> the real 6x4 mesh; other even counts get the
    widest mesh that divides evenly)."""
    for rows in (4, 2, 1):
        if cores % (2 * rows) == 0:
            return SccConfig(mesh_cols=cores // (2 * rows), mesh_rows=rows)
    raise ValueError(f"engine evaluation needs an even core count, got {cores}")


def cmd_model(args: argparse.Namespace) -> int:
    analytic = resolve_contention_mode(args.mode) is ContentionMode.ANALYTIC
    if analytic:
        try:
            cfg = _model_mesh(args.cores)
        except ValueError as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 2
    if args.what == "table2":
        if analytic:
            # Steady-state pipeline throughput from the engine's protocol
            # replay; scatter-allgather has no engine schedule, so its row
            # keeps the Formula 16 value.
            big = 8 * model_bcast.M_OC * CACHE_LINE
            rows: list[list] = []
            for k in (2, 7, min(47, args.cores - 1)):
                eng = AnalyticEngine(cfg, k=k)
                res = eng.evaluate(big, iters=3, warmup=1)
                rows.append([f"OC-Bcast k={k}", res.steady_throughput_mb_s])
            rows.append([
                "scatter-allgather (formula)",
                model_bcast.scatter_allgather_throughput_complete(args.cores, TABLE_1),
            ])
            title = f"Table 2 (engine replay), P={args.cores}"
        else:
            t2 = model_bcast.table2(args.cores, TABLE_1)
            rows = list(t2.as_dict().items())
            title = f"Table 2 (analytic), P={args.cores}"
        print(format_table(["algorithm", "peak throughput (MB/s)"], rows, title=title))
        return 0
    sizes = list(range(1, 193, 8))
    if analytic:
        series = {}
        for k in (2, 7):
            eng = AnalyticEngine(cfg, k=k)
            batch = eng.evaluate_batch([m * CACHE_LINE for m in sizes], iters=1)
            series[f"k={k}"] = [r.mean_latency for r in batch]
        series["binomial (formula)"] = model_bcast.binomial_latency_complete_batch(
            args.cores, sizes, TABLE_1
        ).tolist()
        title = f"Figure 6a (engine replay), P={args.cores}"
    else:
        series = {
            "k=2": model_bcast.ocbcast_latency_complete_batch(
                args.cores, sizes, 2, TABLE_1).tolist(),
            "k=7": model_bcast.ocbcast_latency_complete_batch(
                args.cores, sizes, 7, TABLE_1).tolist(),
            "binomial": model_bcast.binomial_latency_complete_batch(
                args.cores, sizes, TABLE_1).tolist(),
        }
        title = f"Figure 6a (analytic), P={args.cores}"
    print(ascii_chart(sizes, series, title=title, x_label="CL", y_label="us"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OC-Bcast on a simulated Intel SCC: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="describe the simulated chip")
    _add_mesh_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("bcast", help="run one broadcast and report latency")
    p.add_argument("--algo", default="oc",
                   choices=["oc", "binomial", "scatter_allgather", "osag"])
    p.add_argument("--k", type=int, default=7, help="OC-Bcast fan-out")
    p.add_argument("--cache-lines", type=int, default=96)
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--iters", type=int, default=3)
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--metrics", action="store_true",
                   help="collect and print headline metrics for the run")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="also dump the full metric registry (.csv or .json)")
    _add_mesh_args(p)
    _add_mode_arg(p)
    p.set_defaults(fn=cmd_bcast)

    p = sub.add_parser(
        "trace",
        help="run one broadcast and export a Chrome/Perfetto trace",
    )
    p.add_argument("--algo", default="oc",
                   choices=["oc", "binomial", "scatter_allgather", "osag"])
    p.add_argument("--k", type=int, default=7, help="OC-Bcast fan-out")
    p.add_argument("--cache-lines", type=int, default=96)
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--iters", type=int, default=1)
    p.add_argument("--warmup", type=int, default=0)
    p.add_argument("-o", "--output", default="trace.json",
                   help="trace-event JSON path (default trace.json)")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="also dump the full metric registry (.csv or .json)")
    _add_mesh_args(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("sweep", help="latency/throughput sweep over sizes")
    p.add_argument("--algos", nargs="+", default=["oc:7", "binomial"],
                   help="e.g. oc:7 oc:2 binomial scatter_allgather")
    p.add_argument("--sizes", nargs="+", type=int, default=[1, 16, 96, 192],
                   help="message sizes in cache lines")
    p.add_argument("--iters", type=int, default=2)
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--throughput", action="store_true",
                   help="report steady throughput instead of latency")
    p.add_argument("--chart", action="store_true", help="also draw an ASCII chart")
    _add_mesh_args(p)
    _add_mode_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("contention", help="concurrent MPB access study (Fig. 4)")
    p.add_argument("--op", choices=["get", "put"], default="get")
    p.add_argument("--lines", type=int, default=128)
    p.add_argument("--counts", nargs="+", type=int,
                   default=[1, 8, 16, 24, 32, 47])
    p.add_argument("--iters", type=int, default=10)
    _add_mesh_args(p)
    p.set_defaults(fn=cmd_contention)

    p = sub.add_parser(
        "faults", help="seeded fault-injection campaign (FT vs baseline)"
    )
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--kinds", nargs="+", default=["drop_flag"],
        help="fault kinds: drop_flag corrupt_flag drop_data corrupt_data "
             "stall link_down pause crash; sustained regimes: flap "
             "(flapping_link) churn (repeated_crash) storm "
             "(congestion_storm); adversary kinds (--byz): "
             "equivocate forge_flag lie_quorum",
    )
    p.add_argument("--cache-lines", type=int, default=96,
                   help="message size (96 = one chunk, every flag write fatal)")
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the (slow, deadlock-prone) baseline runs")
    p.add_argument("--timeline", action="store_true",
                   help="print the fault timeline of the first faulty trial")
    p.add_argument("--service", action="store_true",
                   help="also run every trial against the crash-surviving "
                        "broadcast service (membership + integrity)")
    p.add_argument("--burst", action="store_true",
                   help="add link_down correlated-burst faults to the mix")
    p.add_argument("--burst-duration", type=float, default=400.0,
                   help="link-down burst window in us (with --burst)")
    p.add_argument("--faults-per-trial", type=int, default=1,
                   help="faults injected per trial (kinds cycle within "
                        "each multi-fault plan)")
    p.add_argument("--crash-site", choices=list(CRASH_SITES),
                   default="leaf",
                   help="where crash faults strike (interior orphans a "
                        "subtree; root kills the source/coordinator -- "
                        "only the election-capable service survives)")
    p.add_argument("--mid-stream", action="store_true",
                   help="aim faults at the middle of the run (pair with a "
                        "multi-chunk --cache-lines)")
    p.add_argument("--byz", action="store_true",
                   help="Byzantine campaign: run every trial against the "
                        "RBC-hardened service (Bracha echo/ready quorums) "
                        "with compromised cores drawn per trial; --kinds "
                        "may name equivocate/forge_flag/lie_quorum (all "
                        "three when unset)")
    p.add_argument("--adversaries", type=int, default=1,
                   help="compromised cores per Byzantine trial (the RBC "
                        "guarantees hold up to f = (n-1)//3)")
    p.add_argument("--fault-rate", type=float, default=1.0,
                   help="fraction of trials that draw a fault plan; the "
                        "rest run fault-free (default 1.0 = every trial "
                        "faulty, the historical behaviour)")
    p.add_argument("--fidelity", choices=["exact", "adaptive"],
                   default="exact",
                   help="adaptive = serve fault-free trials from an "
                        "analytically cross-checked reference run and "
                        "replay only fault-bearing trials through the "
                        "event kernel (identical classifications, "
                        "orders of magnitude faster at low --fault-rate)")
    p.add_argument("--bundle-dir", metavar="DIR", default="chaos_bundles",
                   help="write replayable repro bundles for lost "
                        "hardened-leg trials here (empty string disables; "
                        "default chaos_bundles/)")
    _add_mesh_args(p)
    _add_mode_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "churn",
        help="sustained-regime survival campaign: adaptive (phi accrual "
             "+ paced retries) vs fixed-deadline membership under a "
             "continuously flapping link plus mid-stream crash",
    )
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--broadcasts", type=int, default=10,
                   help="consecutive service broadcasts per trial")
    p.add_argument("--flap-period", type=float, default=2_000.0,
                   help="flap cycle length in us")
    p.add_argument("--flap-duty", type=float, default=0.4,
                   help="fraction of each cycle the link is down")
    p.add_argument("--no-crash", action="store_true",
                   help="flapping only: skip the mid-stream core crash")
    p.add_argument("--no-fixed", action="store_true",
                   help="skip the fixed-deadline comparison leg")
    p.add_argument("--no-i8", action="store_true",
                   help="skip the online no-false-eviction (I8) checker")
    p.set_defaults(fn=cmd_churn)

    p = sub.add_parser(
        "chaos",
        help="randomized composite-fault search over both transport "
             "backends (soak, replay, shrink)",
    )
    p.add_argument("--trials", type=int, default=None,
                   help="number of schedules to run (default: 100, or "
                        "unbounded when --budget is given)")
    p.add_argument("--budget", type=float, default=None, metavar="SECS",
                   help="wall-clock budget in seconds (soak stops at "
                        "whichever of --trials/--budget hits first)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--backends", nargs="+", default=["scc", "asyncio"],
                   choices=["scc", "asyncio"],
                   help="transport backends to draw schedules over")
    p.add_argument("--modes", nargs="+",
                   default=["service", "service", "service", "byz", "ft"],
                   choices=["service", "byz", "ft", "baseline"],
                   help="protocol-mode mix, drawn uniformly (repeat a mode "
                        "to weight it; baseline needs --fragile)")
    p.add_argument("--meshes", nargs="+", type=_parse_chaos_mesh,
                   default=[(2, 2), (3, 2), (4, 3)], metavar="CxR",
                   help="mesh geometries, e.g. --meshes 2x2 6x4 "
                        "(cores = 2 x cols x rows)")
    p.add_argument("--max-events", type=int, default=3,
                   help="max composite fault events per schedule")
    p.add_argument("--max-chunks", type=int, default=3,
                   help="max message length in chunks")
    p.add_argument("--fragile", action="store_true",
                   help="admit the deliberately fragile baseline mode "
                        "(ft=False): schedules are expected to violate -- "
                        "counterexample/shrinker demo, not a soak")
    p.add_argument("--out-dir", metavar="DIR", default=None,
                   help="write a repro bundle for every violation here")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging minimisation of violations")
    p.add_argument("--shrink-runs", type=int, default=250,
                   help="schedule-execution budget per shrink")
    p.add_argument("--replay", nargs="+", metavar="BUNDLE", default=None,
                   help="replay repro bundle(s) and diff against their "
                        "recorded expectations (exit 1 on mismatch)")
    p.add_argument("--shrink", action="store_true",
                   help="with --replay: also minimise a replayed violation")
    p.add_argument("--verbose", action="store_true",
                   help="log per-batch soak progress")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="dump chaos outcome metrics (.csv or .json)")
    _add_jobs_arg(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("fit", help="recover Table 1 from simulated sweeps")
    p.add_argument("--iters", type=int, default=3)
    _add_mesh_args(p)
    p.set_defaults(fn=cmd_fit)

    p = sub.add_parser("model", help="evaluate the analytic model")
    p.add_argument("--what", choices=["table2", "fig6"], default="table2")
    p.add_argument("--cores", type=int, default=48)
    p.add_argument(
        "--mode", default="batch",
        choices=[m.value for m in ContentionMode],
        help="analytic = evaluate via the AnalyticEngine protocol replay "
             "(bit-identical to an IDEAL simulation) instead of the "
             "closed-form Figure 7 formulas; other modes keep the formulas",
    )
    p.set_defaults(fn=cmd_model)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
