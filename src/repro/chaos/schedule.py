"""Chaos schedules: one randomized composite fault scenario, fully pinned.

A :class:`ChaosSchedule` is the chaos engine's unit of work: *one* run of
a broadcast protocol on *one* transport backend under a composite fault
load -- occurrence-counted injector faults (:class:`repro.faults.FaultSpec`),
an optional backend-agnostic crash coordinate
(:class:`repro.transport.api.CrashOnEvent`), and -- on the asyncio
backend -- an optional network model (delay / probabilistic drop /
partition, :mod:`repro.transport.models`).  Everything that influences
the run is in the schedule: backend, mesh geometry, message size,
protocol mode, OC-Bcast knobs and the payload/model seed.  A schedule is
therefore a *deterministic coordinate*: running it twice produces
byte-identical classifications and decision digests, which is what makes
chaos failures replayable from a JSON bundle
(:mod:`repro.chaos.bundle`) and shrinkable
(:mod:`repro.chaos.shrink`).

Validity is delegated to the fault subsystem: :meth:`ChaosSchedule.plan`
routes the specs through :class:`repro.faults.FaultPlan` (overlap
rejection, adversary-core range checks, equivocation-window rules) and
:meth:`ChaosSchedule.validate` layers the transport-level rules on top
(core-primitive kinds only exist on the SCC backend, network models only
on the asyncio backend, adversary kinds only under the Byzantine mode).
The generator (:mod:`repro.chaos.generate`) rejection-samples against
exactly these rules, so *every* schedule it emits validates -- the
property test suite pins that across seeds and backends.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from ..faults.plan import ADVERSARY_KINDS, FaultKind, FaultPlan, FaultSpec
from ..scc.config import CACHE_LINE
from ..transport.api import CrashOnEvent
from ..transport.models import (
    DelayModel, LinkDrop, NoDelay, Partition, UniformDelay,
)

#: Transport backends a schedule can name.
BACKENDS = ("scc", "asyncio")

#: Protocol modes: the crash-surviving service (default adversary
#: target), the Byzantine-hardened service, bare fault-tolerant OC-Bcast,
#: and the deliberately fragile baseline (``ft=False`` -- the config the
#: chaos engine exists to break, kept for counterexample demos and
#: campaign-failure replay).
MODES = ("service", "byz", "ft", "baseline")

#: Injector kinds that hook core primitives -- they only fire on the SCC
#: backend (the asyncio backend has no ``core_op`` stream; its crashes
#: use the backend-agnostic :class:`CrashOnEvent` coordinate instead).
#: REPEATED_CRASH is core-primitive churn; the sustained link regimes
#: (FLAPPING_LINK, CONGESTION_STORM) anchor on ``mpb_access`` occurrence
#: counts, which the two backends count differently (line batches vs
#: operations), so schedules pin them to the SCC backend too -- except
#: at ``nth=1``, the one portable anchor, which the differential
#: ``flapping_link`` scenario uses deliberately.
SCC_ONLY_KINDS = frozenset({
    FaultKind.CORE_PAUSE,
    FaultKind.CORE_CRASH,
    FaultKind.REPEATED_CRASH,
    FaultKind.FLAPPING_LINK,
    FaultKind.CONGESTION_STORM,
})

#: Bundle / schedule serialisation format version.
SCHEDULE_VERSION = 1


@dataclass(frozen=True)
class ModelSpec:
    """A JSON-able description of an asyncio-backend network model.

    ``name`` picks the model: ``"none"`` (:class:`NoDelay`),
    ``"uniform"`` (per-operation latency in ``[lo, hi]`` us),
    ``"linkdrop"`` (each remote write dropped with probability ``p``,
    plus optional uniform delay) or ``"partition"`` (the rank ``groups``
    cannot reach each other until virtual time ``heal_at``).
    """

    name: str = "none"
    lo: float = 0.0
    hi: float = 0.0
    p: float = 0.0
    groups: tuple[tuple[int, ...], ...] = ()
    heal_at: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in ("none", "uniform", "linkdrop", "partition"):
            raise ValueError(f"unknown model {self.name!r}")
        object.__setattr__(
            self, "groups", tuple(tuple(g) for g in self.groups)
        )

    @property
    def faulty(self) -> bool:
        """Whether the model can *lose* writes (drops / partitions count
        as fault events; pure delay does not)."""
        return self.name in ("linkdrop", "partition")

    def build(self) -> DelayModel:
        if self.name == "uniform":
            return UniformDelay(self.lo, self.hi)
        if self.name == "linkdrop":
            return LinkDrop(self.p, self.lo, self.hi)
        if self.name == "partition":
            return Partition([list(g) for g in self.groups], self.heal_at)
        return NoDelay()

    def describe(self) -> str:
        if self.name == "uniform":
            return f"uniform[{self.lo:g},{self.hi:g}]us"
        if self.name == "linkdrop":
            return f"linkdrop(p={self.p:g})"
        if self.name == "partition":
            sizes = "/".join(str(len(g)) for g in self.groups)
            return f"partition({sizes} heal@{self.heal_at:g}us)"
        return "nodelay"

    def to_dict(self) -> dict:
        return {
            "name": self.name, "lo": self.lo, "hi": self.hi, "p": self.p,
            "groups": [list(g) for g in self.groups], "heal_at": self.heal_at,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModelSpec":
        return cls(
            name=d.get("name", "none"), lo=d.get("lo", 0.0),
            hi=d.get("hi", 0.0), p=d.get("p", 0.0),
            groups=tuple(tuple(g) for g in d.get("groups", ())),
            heal_at=d.get("heal_at", 0.0),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """One pinned composite-fault scenario."""

    backend: str = "scc"
    #: Mesh geometry ``(cols, rows)``; the communicator has
    #: ``2 * cols * rows`` ranks on both backends.
    mesh: tuple[int, int] = (2, 2)
    #: Message length in chunks of ``chunk_lines`` cache lines.
    chunks: int = 1
    mode: str = "service"
    #: Seeds the payload bytes and the asyncio model streams.
    seed: int = 1
    #: Occurrence-counted injector faults (both backends).
    specs: tuple[FaultSpec, ...] = ()
    #: Backend-agnostic crash coordinate ``(rank, trace kind, nth)``.
    crash: tuple[int, str, int] | None = None
    #: Network model (asyncio backend only).
    model: ModelSpec | None = None
    label: str = ""
    #: Kernel watchdog period / asyncio wedge horizon knobs.
    watchdog_us: float = 50_000.0
    # OC-Bcast knobs (mirroring FaultCampaign so campaign trials convert
    # 1:1 into replayable schedules).
    k: int = 7
    chunk_lines: int = 96
    num_buffers: int = 2
    ft_max_retries: int = 3
    ft_ack_data: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "mesh", tuple(self.mesh))
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.crash is not None:
            object.__setattr__(self, "crash", tuple(self.crash))

    # -- derived geometry ---------------------------------------------------

    @property
    def nranks(self) -> int:
        cols, rows = self.mesh
        return 2 * cols * rows

    @property
    def nbytes(self) -> int:
        return self.chunks * self.chunk_lines * CACHE_LINE

    @property
    def n_events(self) -> int:
        """Composite size: injector specs + crash + lossy network model."""
        n = len(self.specs)
        if self.crash is not None:
            n += 1
        if self.model is not None and self.model.faulty:
            n += 1
        return n

    # -- validity -----------------------------------------------------------

    def plan(self) -> FaultPlan:
        """The schedule's injector plan, validated by the fault
        subsystem's own rules (raises :class:`ValueError` on overlap /
        adversary violations)."""
        return FaultPlan(
            self.specs, label=self.label or self.describe(),
            num_cores=self.nranks,
        )

    def validate(self) -> FaultPlan:
        """Full validity check; returns the (validated) fault plan.

        Layered on :class:`FaultPlan`'s rules: backend/mode membership,
        geometry sanity, core-primitive kinds pinned to the SCC backend,
        adversary kinds pinned to the Byzantine mode, crash coordinates
        inside the communicator, and network models pinned to the
        asyncio backend with in-range partition groups.
        """
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        cols, rows = self.mesh
        if cols < 1 or rows < 1 or self.nranks < 2:
            raise ValueError(f"degenerate mesh {self.mesh}")
        if self.chunks < 1:
            raise ValueError("chunks must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        for spec in self.specs:
            if self.backend != "scc" and spec.kind in SCC_ONLY_KINDS:
                raise ValueError(
                    f"{spec.kind.value} hooks core primitives, which only "
                    f"exist on the scc backend (use a crash coordinate on "
                    f"{self.backend})"
                )
            if spec.kind in ADVERSARY_KINDS and self.mode != "byz":
                raise ValueError(
                    f"{spec.kind.value} needs mode='byz': only the "
                    f"Byzantine-tolerant service consults adversary hooks"
                )
            if spec.core is not None and not 0 <= spec.core < self.nranks:
                raise ValueError(
                    f"spec {spec.site} targets core {spec.core} outside "
                    f"the {self.nranks}-rank communicator"
                )
        if self.crash is not None:
            rank, kind, nth = self.crash
            if not 0 <= rank < self.nranks:
                raise ValueError(
                    f"crash rank {rank} outside the {self.nranks}-rank "
                    f"communicator"
                )
            if not kind or nth < 1:
                raise ValueError(f"bad crash coordinate {self.crash!r}")
        if self.model is not None:
            if self.backend != "asyncio":
                raise ValueError(
                    "network models only exist on the asyncio backend"
                )
            for group in self.model.groups:
                for rank in group:
                    if not 0 <= rank < self.nranks:
                        raise ValueError(
                            f"partition group names rank {rank} outside "
                            f"the {self.nranks}-rank communicator"
                        )
        return self.plan()

    # -- helpers ------------------------------------------------------------

    def crash_hook(self) -> CrashOnEvent | None:
        if self.crash is None:
            return None
        rank, kind, nth = self.crash
        return CrashOnEvent(rank, kind, nth=nth)

    def describe(self) -> str:
        parts = [s.site for s in self.specs]
        if self.crash is not None:
            rank, kind, nth = self.crash
            parts.append(f"crash@rank{rank}:{kind}#{nth}")
        if self.model is not None and self.model.name != "none":
            parts.append(self.model.describe())
        body = " + ".join(parts) if parts else "fault-free"
        return (
            f"{self.backend}/{self.mode} {self.mesh[0]}x{self.mesh[1]} "
            f"({self.nranks}r) {self.chunks}ch seed={self.seed}: {body}"
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": SCHEDULE_VERSION,
            "backend": self.backend,
            "mesh": list(self.mesh),
            "chunks": self.chunks,
            "mode": self.mode,
            "seed": self.seed,
            "label": self.label,
            "watchdog_us": self.watchdog_us,
            "k": self.k,
            "chunk_lines": self.chunk_lines,
            "num_buffers": self.num_buffers,
            "ft_max_retries": self.ft_max_retries,
            "ft_ack_data": self.ft_ack_data,
            "specs": [
                {
                    "kind": s.kind.value, "nth": s.nth,
                    "core": s.core, "duration": s.duration,
                    "period": s.period, "duty": s.duty, "cycles": s.cycles,
                }
                for s in self.specs
            ],
            "crash": list(self.crash) if self.crash is not None else None,
            "model": self.model.to_dict() if self.model is not None else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosSchedule":
        version = d.get("version", SCHEDULE_VERSION)
        if version != SCHEDULE_VERSION:
            raise ValueError(
                f"unsupported schedule version {version!r} "
                f"(this build reads version {SCHEDULE_VERSION})"
            )
        specs = tuple(
            FaultSpec(
                kind=FaultKind(s["kind"]), nth=s.get("nth", 1),
                core=s.get("core"), duration=s.get("duration", 0.0),
                period=s.get("period", 0.0), duty=s.get("duty", 0.0),
                cycles=s.get("cycles", 0),
            )
            for s in d.get("specs", ())
        )
        crash = d.get("crash")
        model = d.get("model")
        return cls(
            backend=d.get("backend", "scc"),
            mesh=tuple(d.get("mesh", (2, 2))),
            chunks=d.get("chunks", 1),
            mode=d.get("mode", "service"),
            seed=d.get("seed", 1),
            specs=specs,
            crash=tuple(crash) if crash is not None else None,
            model=ModelSpec.from_dict(model) if model is not None else None,
            label=d.get("label", ""),
            watchdog_us=d.get("watchdog_us", 50_000.0),
            k=d.get("k", 7),
            chunk_lines=d.get("chunk_lines", 96),
            num_buffers=d.get("num_buffers", 2),
            ft_max_retries=d.get("ft_max_retries", 3),
            ft_ack_data=d.get("ft_ack_data", False),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        return cls.from_dict(json.loads(text))

    # -- shrink support -----------------------------------------------------

    def without_event(self, index: int) -> "ChaosSchedule":
        """Drop one composite event: indexes ``0..len(specs)-1`` name
        injector specs, then the crash coordinate, then the network
        model (shrinker vocabulary)."""
        n = len(self.specs)
        if index < n:
            specs = self.specs[:index] + self.specs[index + 1:]
            return replace(self, specs=specs)
        index -= n
        if self.crash is not None:
            if index == 0:
                return replace(self, crash=None)
            index -= 1
        if self.model is not None and self.model.faulty and index == 0:
            return replace(self, model=None)
        raise IndexError(f"no composite event at index {index}")
