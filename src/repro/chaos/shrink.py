"""Delta-debugging shrinker: minimise a failing chaos schedule.

Greedy ddmin over the schedule's structure: starting from a schedule
whose run matches a *target* ``(classification, status)`` pair (by
default, whatever the schedule currently produces -- typically a
``violation``), repeatedly try strictly smaller variants and keep any
that still reproduce the target:

- drop whole composite events (injector specs, the crash coordinate,
  a lossy network model);
- cut the message to fewer chunks;
- move to a smaller mesh (a candidate naming cores outside the smaller
  communicator is skipped by validation);
- narrow windows: halve stall/burst/pause durations and occurrence
  numbers, pull partition heal times in, drop a pure-delay model.

Every accepted step restarts the pass, so the result is 1-minimal with
respect to these operators: no single remaining event, chunk, mesh step
or halving can be removed without losing the failure.  The whole search
is bounded by ``max_runs`` schedule executions; determinism of
:func:`repro.chaos.runner.run_schedule` makes the shrink itself
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from ..faults.plan import ADVERSARY_KINDS, FaultSpec
from .runner import ChaosOutcome, run_schedule
from .schedule import ChaosSchedule

#: Meshes the shrinker may move down to, smallest first.
MESH_LADDER = ((1, 1), (2, 1), (2, 2), (3, 2), (4, 3))

#: Durations are not halved below this floor (us) -- a near-zero stall
#: stops being the fault it was.
MIN_DURATION = 50.0


@dataclass(frozen=True)
class ShrinkResult:
    """The minimised schedule plus the search's bookkeeping."""

    original: ChaosSchedule
    schedule: ChaosSchedule
    outcome: ChaosOutcome
    target: tuple[str, str]
    n_runs: int
    n_steps: int

    @property
    def shrunk(self) -> bool:
        return self.n_steps > 0

    def describe(self) -> str:
        return (
            f"shrunk {self.original.n_events} event(s) on "
            f"{self.original.mesh[0]}x{self.original.mesh[1]}/"
            f"{self.original.chunks}ch to {self.schedule.n_events} on "
            f"{self.schedule.mesh[0]}x{self.schedule.mesh[1]}/"
            f"{self.schedule.chunks}ch in {self.n_steps} step(s) "
            f"({self.n_runs} runs); still "
            f"{self.outcome.classification}/{self.outcome.status}"
        )


def _spec_variants(spec: FaultSpec) -> Iterator[FaultSpec]:
    """Strictly narrower versions of one injector spec."""
    if spec.duration and spec.duration > MIN_DURATION \
            and spec.kind not in ADVERSARY_KINDS:
        yield replace(spec, duration=max(MIN_DURATION, spec.duration / 2))
    if spec.nth > 1:
        yield replace(spec, nth=1)
        if spec.nth > 2:
            yield replace(spec, nth=spec.nth // 2)


def _candidates(s: ChaosSchedule) -> Iterator[ChaosSchedule]:
    """Strictly smaller variants, most aggressive first."""
    # Whole-event removal.
    for i in reversed(range(s.n_events)):
        try:
            yield s.without_event(i)
        except IndexError:  # pragma: no cover - n_events bounds the range
            pass
    # Fewer chunks.
    if s.chunks > 1:
        yield replace(s, chunks=1)
        if s.chunks > 2:
            yield replace(s, chunks=s.chunks // 2)
    # Smaller meshes (invalid core references are filtered by
    # schedule.validate() at the call site).
    for mesh in MESH_LADDER:
        if 2 * mesh[0] * mesh[1] < s.nranks:
            yield replace(s, mesh=mesh)
    # Narrower injector specs.
    for i, spec in enumerate(s.specs):
        for variant in _spec_variants(spec):
            yield replace(
                s, specs=s.specs[:i] + (variant,) + s.specs[i + 1:]
            )
    # Earlier crash occurrence.
    if s.crash is not None and s.crash[2] > 1:
        yield replace(s, crash=(s.crash[0], s.crash[1], 1))
    # Simpler network model: a pure-delay model vanishes outright (it is
    # not a composite event, so without_event never offers it); lossy
    # models narrow their windows.
    if s.model is not None:
        if not s.model.faulty and s.model.name != "none":
            yield replace(s, model=None)
        if s.model.name == "partition" and s.model.heal_at > MIN_DURATION:
            yield replace(
                s,
                model=replace(s.model, heal_at=s.model.heal_at / 2),
            )


def shrink(
    schedule: ChaosSchedule,
    *,
    target: tuple[str, str] | None = None,
    max_runs: int = 250,
) -> ShrinkResult:
    """Minimise ``schedule`` while its run keeps reproducing ``target``
    (default: the schedule's current ``(classification, status)``)."""
    n_runs = 0

    def execute(s: ChaosSchedule) -> ChaosOutcome:
        nonlocal n_runs
        n_runs += 1
        return run_schedule(s)

    outcome = execute(schedule)
    got = (outcome.classification, outcome.status)
    if target is None:
        target = got
    elif got != target:
        raise ValueError(
            f"schedule does not reproduce the target: wanted {target}, "
            f"got {got}"
        )

    best, best_out = schedule, outcome
    n_steps = 0
    improved = True
    while improved and n_runs < max_runs:
        improved = False
        for candidate in _candidates(best):
            if n_runs >= max_runs:
                break
            try:
                candidate.validate()
            except ValueError:
                continue
            out = execute(candidate)
            if (out.classification, out.status) == target:
                best, best_out = candidate, out
                n_steps += 1
                improved = True
                break  # restart the pass from the smaller schedule
    return ShrinkResult(
        original=schedule,
        schedule=best,
        outcome=best_out,
        target=target,
        n_runs=n_runs,
        n_steps=n_steps,
    )
