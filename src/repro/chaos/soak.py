"""The chaos soak loop: generate, run, classify, shrink, bundle.

:func:`run_soak` drives a :class:`~repro.chaos.generate.ScheduleGenerator`
for a fixed trial count and/or wall-clock budget, fanning schedule
executions across worker processes
(:func:`repro.bench.parallel.parallel_map` -- schedules and outcomes are
plain picklable dataclasses), and aggregates the three-way
classification.  Every *violation* is minimised by the delta-debugging
shrinker and written out as a replayable repro bundle -- the nightly CI
job uploads those as artifacts, so a red soak arrives with its
counterexamples attached, each carrying its own one-line replay
command.

Outcome metrics land in a :class:`repro.obs.MetricsRegistry` when one is
passed (``chaos.trials``, ``chaos.tolerated`` / ``chaos.refused`` /
``chaos.violation``, per-status counters and a latency histogram) --
see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable

from ..obs.metrics import MetricsRegistry
from .bundle import repro_command, write_bundle
from .generate import ScheduleGenerator
from .runner import CLASSIFICATIONS, ChaosOutcome, run_schedule
from .shrink import ShrinkResult, shrink


@dataclass(frozen=True)
class SoakResult:
    """Aggregate result of one chaos soak."""

    n_trials: int
    counts: Counter
    status_counts: Counter
    elapsed: float
    #: The (shrunk) violating outcomes, with their bundle paths.
    violations: tuple[ChaosOutcome, ...] = ()
    shrinks: tuple[ShrinkResult, ...] = ()
    bundles: tuple[str, ...] = ()
    seed: int = 0

    @property
    def ok(self) -> bool:
        return self.counts.get("violation", 0) == 0

    def summary(self) -> str:
        from ..bench.reporting import format_table

        rows = [
            [c, self.counts.get(c, 0)] for c in CLASSIFICATIONS
        ]
        lines = [
            format_table(
                ["classification", "schedules"], rows,
                title=f"Chaos soak: {self.n_trials} schedules, "
                      f"seed={self.seed}, {self.elapsed:.1f}s",
            ),
            "",
            "statuses: " + ", ".join(
                f"{status}={n}"
                for status, n in sorted(self.status_counts.items())
            ),
        ]
        for outcome, path in zip(self.violations, self.bundles):
            lines.append(f"counterexample: {outcome.describe()}")
            lines.append(f"  repro: {repro_command(path)}")
        for outcome in self.violations[len(self.bundles):]:
            lines.append(f"counterexample (no bundle): {outcome.describe()}")
        if self.ok:
            lines.append(
                "zero violations: every schedule was tolerated or "
                "detected-and-refused"
            )
        return "\n".join(lines)


def run_soak(
    generator: ScheduleGenerator,
    *,
    trials: int | None = None,
    budget: float | None = None,
    jobs: int = 1,
    out_dir: str | None = None,
    shrink_failures: bool = True,
    shrink_runs: int = 250,
    metrics: MetricsRegistry | None = None,
    log: Callable[[str], None] | None = None,
) -> SoakResult:
    """Run the soak until ``trials`` schedules have executed or the
    wall-clock ``budget`` (seconds) runs out, whichever comes first; at
    least one batch always runs.  With neither bound given, 100 trials.
    """
    from ..bench.parallel import parallel_map

    if trials is None and budget is None:
        trials = 100
    start = time.monotonic()
    batch_size = max(1, jobs) * 4
    counts: Counter = Counter()
    status_counts: Counter = Counter()
    violations: list[ChaosOutcome] = []
    shrinks: list[ShrinkResult] = []
    bundles: list[str] = []
    n_done = 0

    def out_of_budget() -> bool:
        return budget is not None and time.monotonic() - start >= budget

    while True:
        if trials is not None and n_done >= trials:
            break
        if n_done and out_of_budget():
            break
        n = batch_size
        if trials is not None:
            n = min(n, trials - n_done)
        batch = generator.generate(n)
        outcomes = parallel_map(run_schedule, batch, jobs=jobs)
        for outcome in outcomes:
            n_done += 1
            counts[outcome.classification] += 1
            status_counts[outcome.status] += 1
            if metrics is not None:
                metrics.counter("chaos.trials").inc()
                metrics.counter(
                    f"chaos.{outcome.classification}"
                ).inc()
                metrics.counter(f"chaos.status.{outcome.status}").inc()
                if outcome.latency > 0.0:
                    metrics.histogram("chaos.latency_us").observe(
                        outcome.latency
                    )
            if outcome.classification != "violation":
                continue
            if shrink_failures:
                result = shrink(outcome.schedule, max_runs=shrink_runs)
                shrinks.append(result)
                outcome = result.outcome
                if metrics is not None:
                    metrics.counter("chaos.shrink_runs").inc(result.n_runs)
            violations.append(outcome)
            if out_dir is not None:
                path = write_bundle(outcome, out_dir)
                bundles.append(path)
                if log is not None:
                    log(f"counterexample bundled: {repro_command(path)}")
            elif log is not None:
                log(f"counterexample: {outcome.describe()}")
        if log is not None:
            log(
                f"chaos soak: {n_done} schedule(s), "
                f"{counts.get('violation', 0)} violation(s), "
                f"{time.monotonic() - start:.1f}s"
            )
    return SoakResult(
        n_trials=n_done,
        counts=counts,
        status_counts=status_counts,
        elapsed=time.monotonic() - start,
        violations=tuple(violations),
        shrinks=tuple(shrinks),
        bundles=tuple(bundles),
        seed=generator.seed,
    )
