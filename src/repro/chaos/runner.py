"""Execute one chaos schedule and classify the outcome.

:func:`run_schedule` builds a fresh world for the schedule's backend
(SCC chip model or asyncio event loop), arms the injector plan, crash
hook and network model, attaches the online invariant checker
(:class:`repro.obs.InvariantChecker`, ``lossless=False`` -- faults are
armed on purpose) and runs the schedule's protocol mode to completion.
The result is a :class:`ChaosOutcome` carrying a fine-grained status
(the campaign vocabulary: delivered / recovered / aborted / detected /
deadlock / timeout / corrupt / disagreement / partial / crashed) and the
three-way chaos classification the soak loop aggregates:

``tolerated``
    Every live, honest member delivered the source payload -- faults
    (if any) were masked or repaired.
``refused``
    The protocol *detected* trouble and uniformly declined: a uniform
    abort under the completion protocol, a uniform Byzantine refusal, an
    exhausted FT retry budget surfaced as
    :class:`repro.sim.errors.TimeoutError`.  Nothing wrong was
    delivered; liveness was traded away explicitly.
``violation``
    A safety or termination promise broke: an I1--I7 invariant
    violation, wrong bytes, honest disagreement, a deliverer/refuser
    split, a deadlock (the termination oracle), or the whole run dying.

Classification and the decision digest are deterministic functions of
the schedule, which is what the repro bundles pin and replay.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace as dc_replace
from functools import lru_cache
from typing import Generator

import numpy as np

from ..core import OcBcast, OcBcastConfig
from ..faults.injector import FaultInjector
from ..faults.plan import ADVERSARY_KINDS, FaultPlan
from ..member.service import DEFAULT_SERVICE_OC, OcBcastService
from ..obs.invariants import InvariantChecker
from ..rcce.comm import Comm
from ..scc.chip import SccChip, run_spmd
from ..scc.config import SccConfig
from ..sim.errors import (
    DeadlockError, FaultInjected, SimError, WatchdogError,
    TimeoutError as SimTimeoutError,
)
from ..sim.trace import Tracer
from ..transport.asyncio_backend import AsyncioNetwork
from ..transport.decisions import decision_digest
from .schedule import ChaosSchedule

#: The three-way chaos classifications, in reporting order.
CLASSIFICATIONS = ("tolerated", "refused", "violation")

#: Statuses mapped to each classification (exception and invariant paths
#: add "deadlock"/"crashed"/"invariant" on top of the value-based ones).
TOLERATED_STATUSES = frozenset({"delivered", "recovered"})
REFUSED_STATUSES = frozenset({"aborted", "detected", "timeout"})

#: Virtual-time horizon for the asyncio backend (the analogue of the SCC
#: kernel watchdog): a blocked rank with no event before this wall is a
#: wedge, reported as DeadlockError.
ASYNCIO_TIME_LIMIT = 1_000_000.0


@dataclass(frozen=True)
class ChaosOutcome:
    """The classified result of one chaos schedule."""

    schedule: ChaosSchedule
    classification: str
    status: str
    detail: str = ""
    #: Canonical decision digest (sha256 over time-free decision streams).
    digest: str = ""
    n_injected: int = 0
    n_recovered: int = 0
    latency: float = 0.0
    #: Names of violated invariants, when the checker fired.
    invariants: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.classification != "violation"

    def describe(self) -> str:
        inv = f" [{','.join(self.invariants)}]" if self.invariants else ""
        body = f" -- {self.detail}" if self.detail else ""
        return (
            f"{self.classification}/{self.status}{inv}: "
            f"{self.schedule.describe()}{body}"
        )


def chaos_payload(schedule: ChaosSchedule) -> bytes:
    """The schedule's seeded broadcast payload (identical on both
    backends, and to :meth:`FaultCampaign._payload` for equal seeds)."""
    rng = np.random.default_rng(schedule.seed)
    return rng.integers(
        0, 256, size=schedule.nbytes, dtype=np.uint8
    ).tobytes()


def _oc_config(schedule: ChaosSchedule) -> OcBcastConfig:
    mode = schedule.mode
    if mode in ("service", "byz"):
        return dc_replace(
            DEFAULT_SERVICE_OC,
            k=schedule.k,
            chunk_lines=schedule.chunk_lines,
            num_buffers=schedule.num_buffers,
            ft_max_retries=schedule.ft_max_retries,
            byz=(mode == "byz"),
        )
    return OcBcastConfig(
        k=schedule.k,
        chunk_lines=schedule.chunk_lines,
        num_buffers=schedule.num_buffers,
        ft=(mode == "ft"),
        ft_max_retries=schedule.ft_max_retries,
        ft_ack_data=schedule.ft_ack_data,
    )


def _program(schedule: ChaosSchedule, world, payload: bytes):
    """The per-rank protocol body for the schedule's mode.  ``world`` is
    the Comm (SCC) or AsyncioNetwork -- both carry the transport
    surface the protocols run on."""
    nbytes = schedule.nbytes
    if schedule.mode in ("service", "byz"):
        svc = OcBcastService(world, root=0, oc_config=_oc_config(schedule))

        def body(cc) -> Generator:
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            try:
                status = yield from svc.bcast(cc, buf, nbytes)
            except FaultInjected:
                return "crashed"
            if status != "ok":
                return status
            return ("ok", zlib.crc32(buf.read()))
    else:
        oc = OcBcast(world, _oc_config(schedule))

        def body(cc) -> Generator:
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            try:
                yield from oc.bcast(cc, 0, buf, nbytes)
            except FaultInjected:
                return "crashed"
            return ("ok", zlib.crc32(buf.read()))

    return body


def _classify_values(
    schedule: ChaosSchedule, values: list, payload: bytes, injected: int
) -> tuple[str, str]:
    """Map per-rank return values to (status, detail).  Byzantine
    adversary ranks are excluded -- their claims are worthless by
    definition; crashed and evicted ranks are non-decisive (dead, or
    removed from the agreement set)."""
    adversary = (
        {s.core for s in schedule.specs if s.kind in ADVERSARY_KINDS}
        if schedule.mode == "byz" else set()
    )
    vals = [v for r, v in enumerate(values) if r not in adversary]
    src_crc = zlib.crc32(payload)
    ok_crcs = {v[1] for v in vals if isinstance(v, tuple)}
    n_ok = sum(1 for v in vals if isinstance(v, tuple))
    n_abort = sum(1 for v in vals if v == "aborted")
    n_det = sum(1 for v in vals if v == "detected")
    n_crash = sum(1 for v in vals if v == "crashed")
    n_evict = sum(1 for v in vals if v in ("evicted", "self_evicted"))
    n_other = len(vals) - n_ok - n_abort - n_det - n_crash - n_evict

    if n_other:
        return "crashed", f"{n_other} rank(s) returned unexpectedly"
    if len(ok_crcs) > 1:
        if schedule.mode == "byz":
            return (
                "disagreement",
                f"honest members delivered {len(ok_crcs)} distinct payloads",
            )
        n_bad = sum(
            1 for v in vals if isinstance(v, tuple) and v[1] != src_crc
        )
        return "corrupt", f"{n_bad} member(s) hold wrong bytes"
    if n_ok and ok_crcs != {src_crc} and not (
        # Bracha validity only binds for an honest source: with the
        # source compromised, uniform agreement on the attacker's
        # variant is exactly what the RBC layer promises.
        schedule.mode == "byz" and 0 in adversary
    ):
        return "corrupt", f"{n_ok} member(s) hold wrong bytes"
    if n_ok and (n_abort or n_det):
        return (
            "partial",
            f"non-uniform outcome: {n_ok} delivered, "
            f"{n_abort + n_det} refused",
        )
    if n_ok:
        survivors = []
        if n_crash:
            survivors.append(f"{n_crash} crashed")
        if n_evict:
            survivors.append(f"{n_evict} evicted")
        if injected or survivors:
            detail = ", ".join(survivors)
            return "recovered", (detail + ", survivors delivered") if detail \
                else "faults masked, all delivered"
        return "delivered", ""
    if n_abort or n_det:
        kind = "aborted" if n_abort >= n_det else "detected"
        return kind, (
            f"uniform refusal by {n_abort + n_det} live member(s)"
        )
    return "crashed", "no live member decided"


def _classify(status: str, invariants: tuple[str, ...]) -> str:
    if invariants:
        return "violation"
    if status in TOLERATED_STATUSES:
        return "tolerated"
    if status in REFUSED_STATUSES:
        return "refused"
    return "violation"


def _run_scc(schedule: ChaosSchedule, payload: bytes):
    cols, rows = schedule.mesh
    config = SccConfig(mesh_cols=cols, mesh_rows=rows)
    chip = SccChip(
        config,
        tracer=Tracer(enabled=True),
        faults=FaultInjector(schedule.plan()),
    )
    checker = InvariantChecker(lossless=False)
    chip.tracer.add_listener(checker.feed)
    comm = Comm(chip)
    comm.transport_faults = schedule.crash_hook()
    body = _program(schedule, comm, payload)

    def prog(core):
        return body(comm.attach(core))

    chip.sim.start_watchdog(schedule.watchdog_us)
    start = chip.now
    status = detail = ""
    values: list = []
    latency = 0.0
    try:
        res = run_spmd(chip, prog)
    except SimError as exc:
        cause = exc if exc.__cause__ is None else exc.__cause__
        if isinstance(cause, (WatchdogError, DeadlockError)):
            status, detail = "deadlock", str(cause)
        elif isinstance(cause, SimTimeoutError):
            status, detail = "timeout", str(cause)
        elif isinstance(cause, FaultInjected):
            status, detail = "crashed", str(cause)
        else:
            raise
    else:
        latency = res.end_time - start
        values = list(res.values)
    return values, status, detail, latency, chip.faults, \
        list(chip.tracer.records), checker


def _run_asyncio(schedule: ChaosSchedule, payload: bytes):
    model = (
        schedule.model.build() if schedule.model is not None else None
    )
    net = AsyncioNetwork(
        schedule.nranks,
        model=model,
        seed=schedule.seed,
        plan=schedule.plan(),
        time_limit=ASYNCIO_TIME_LIMIT,
    )
    checker = InvariantChecker(lossless=False)
    net.tracer.add_listener(checker.feed)
    net.transport_faults = schedule.crash_hook()
    body = _program(schedule, net, payload)
    start = net.now
    results = net.run(body, return_exceptions=True)
    latency = net.now - start

    status = detail = ""
    values: list = []
    # Exception precedence mirrors the SCC path: a wedge (termination
    # oracle) dominates an exhausted retry budget dominates a stray
    # crash escape; any other exception is a harness bug and re-raises.
    deadlocks = [r for r in results if isinstance(r, DeadlockError)]
    timeouts = [r for r in results if isinstance(r, SimTimeoutError)]
    others = [
        r for r in results
        if isinstance(r, BaseException)
        and not isinstance(r, (DeadlockError, SimTimeoutError, FaultInjected))
    ]
    if others:
        raise others[0]
    if deadlocks:
        status, detail = "deadlock", str(deadlocks[0])
    elif timeouts:
        status, detail = "timeout", str(timeouts[0])
    else:
        values = [
            "crashed" if isinstance(r, FaultInjected) else r
            for r in results
        ]
    return values, status, detail, latency, net.faults, \
        list(net.tracer.records), checker


def run_schedule(schedule: ChaosSchedule) -> ChaosOutcome:
    """Run one (validated) chaos schedule to completion and classify."""
    schedule.validate()
    payload = chaos_payload(schedule)
    if schedule.backend == "scc":
        values, status, detail, latency, faults, records, checker = \
            _run_scc(schedule, payload)
    else:
        values, status, detail, latency, faults, records, checker = \
            _run_asyncio(schedule, payload)

    injected = 0 if faults is None else faults.n_injected
    recovered = 0 if faults is None else faults.n_recovered
    if not status:
        status, detail = _classify_values(
            schedule, values, payload, injected
        )
    invariants = tuple(
        sorted({v.invariant for v in checker.violations})
    )
    return ChaosOutcome(
        schedule=schedule,
        classification=_classify(status, invariants),
        status=status,
        detail=detail,
        digest=decision_digest(records),
        n_injected=injected,
        n_recovered=recovered,
        latency=latency,
        invariants=invariants,
    )


@lru_cache(maxsize=None)
def profile_counts(
    backend: str,
    mesh: tuple[int, int],
    chunks: int,
    mode: str,
    k: int = 7,
    chunk_lines: int = 96,
    num_buffers: int = 2,
) -> dict:
    """Candidate fault-site counts for one (backend, geometry, mode)
    coordinate, from a fault-free run with an empty-plan injector
    attached (the injector counts matching sites even with no specs).
    Memoised: the generator calls this once per coordinate, then draws
    thousands of schedules against it."""
    base = ChaosSchedule(
        backend=backend, mesh=mesh, chunks=chunks, mode=mode, seed=0,
        k=k, chunk_lines=chunk_lines, num_buffers=num_buffers,
    )
    payload = chaos_payload(base)
    if backend == "scc":
        cols, rows = mesh
        chip = SccChip(
            SccConfig(mesh_cols=cols, mesh_rows=rows),
            faults=FaultInjector(FaultPlan()),
        )
        comm = Comm(chip)
        body = _program(base, comm, payload)
        chip.sim.start_watchdog(base.watchdog_us)
        run_spmd(chip, lambda core: body(comm.attach(core)))
        return dict(chip.faults.profile())
    net = AsyncioNetwork(
        base.nranks, seed=0, plan=FaultPlan(),
        time_limit=ASYNCIO_TIME_LIMIT,
    )
    net.run(_program(base, net, payload))
    return dict(net.faults.profile())
