"""Chaos search over the broadcast stack (see docs/FAULTS.md §9).

Randomized composite fault schedules over both transport backends,
three-way outcome classification against the online invariants and
agreement/termination oracles, deterministic JSON repro bundles, and a
delta-debugging shrinker -- the layer that turns the fixed fault
campaigns of PRs 1--6 into a continuously-running adversary.

Entry points: ``python -m repro chaos`` (soak / replay / shrink),
``make chaos``, the nightly ``chaos-soak`` CI job, and the pinned
bundles replayed by the tier-1 ``chaos`` marker tests.
"""

from .bundle import (
    BUNDLE_VERSION, ReproBundle, campaign_counterexamples, make_bundle,
    repro_command, schedule_for_trial, write_bundle,
    write_campaign_bundles,
)
from .generate import ScheduleGenerator
from .runner import (
    CLASSIFICATIONS, ChaosOutcome, chaos_payload, profile_counts,
    run_schedule,
)
from .schedule import (
    BACKENDS, MODES, SCC_ONLY_KINDS, ChaosSchedule, ModelSpec,
)
from .shrink import MESH_LADDER, ShrinkResult, shrink
from .soak import SoakResult, run_soak

__all__ = [
    "BACKENDS",
    "BUNDLE_VERSION",
    "CLASSIFICATIONS",
    "MESH_LADDER",
    "MODES",
    "SCC_ONLY_KINDS",
    "ChaosOutcome",
    "ChaosSchedule",
    "ModelSpec",
    "ReproBundle",
    "ScheduleGenerator",
    "ShrinkResult",
    "SoakResult",
    "campaign_counterexamples",
    "chaos_payload",
    "make_bundle",
    "profile_counts",
    "repro_command",
    "run_schedule",
    "run_soak",
    "schedule_for_trial",
    "shrink",
    "write_bundle",
    "write_campaign_bundles",
]
