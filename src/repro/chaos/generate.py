"""Randomized composite-schedule generation (the chaos adversary).

A :class:`ScheduleGenerator` draws :class:`~repro.chaos.schedule.ChaosSchedule`
instances from one seeded :class:`random.Random`: backend, mesh
geometry, chunk count, protocol mode, then a composite fault load built
from the full vocabulary -- occurrence-counted flag/data drops and
corruption, link stalls, LINK_DOWN bursts, core pauses and crashes
(leaf / interior / root), Byzantine adversaries, a backend-agnostic
:class:`~repro.transport.api.CrashOnEvent`, and (asyncio) delay / drop /
partition network models.

Fault coordinates are drawn against the *profiled* fault-free run of
the same (backend, geometry, mode) coordinate
(:func:`repro.chaos.runner.profile_counts`), exactly like
:meth:`FaultCampaign.trial_plans` -- an ``nth`` beyond the run's site
count would never fire.  Draws are rejection-sampled against
:meth:`ChaosSchedule.validate`, which routes through the existing
:class:`repro.faults.FaultPlan` rules (site-overlap rejection,
adversary-core range checks, equivocation windows), so every schedule
the generator yields is valid by construction -- the property the
``test_chaos_properties`` suite pins across seeds and backends.

Fault *intensity* is bounded, not open-ended: stall / burst / pause
durations stay two orders of magnitude under the kernel watchdog, drop
probabilities stay within the FT retry budget's reach, partitions heal
inside the membership suspicion timeout, each schedule carries at most
one crash *event* (a REPEATED_CRASH event kills two cores, but only on
meshes of >= 8 ranks and with a full suspicion window of quiet between
them), sustained regimes (flap / storm) end or pace their outages
inside the stock suspicion deadline, and the Byzantine mode's benign companions are limited to
faults the transport layer absorbs *under* the time-bounded vote
rounds (flag drops/corruption, short stalls -- no bursts, pauses or
random delay models, which silence honest voters and split the
quorum).  Within those bounds every outcome must classify as
*tolerated* or *refused* -- the zero-violation envelope the nightly soak
asserts.  The deliberately fragile ``baseline`` mode (``ft=False``) is
excluded unless ``fragile=True``: its losses are expected, and it exists
to demo counterexample shrinking, not to measure the hardened stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..faults.plan import CATEGORY_OF, FaultKind, FaultSpec
from .runner import profile_counts
from .schedule import BACKENDS, ChaosSchedule, ModelSpec

#: Injector kinds the hardened stack must mask or repair, per mode.
#: The bare FT mode has no integrity layer (payload CRC + re-fetch is a
#: service feature) and no membership, so it only sees faults its acked
#: writes and re-notify path can absorb; the service sees everything;
#: the Byzantine mode adds the adversary kinds on top.
_SERVICE_KINDS = (
    FaultKind.DROP_FLAG_WRITE,
    FaultKind.CORRUPT_FLAG_WRITE,
    FaultKind.DROP_DATA_WRITE,
    FaultKind.CORRUPT_DATA_WRITE,
    FaultKind.LINK_STALL,
    FaultKind.LINK_DOWN,
)
_FT_KINDS = (
    FaultKind.DROP_FLAG_WRITE,
    FaultKind.CORRUPT_FLAG_WRITE,
    FaultKind.DROP_DATA_WRITE,
    FaultKind.LINK_STALL,
)
#: The Byzantine mode's *benign* companions: the RBC vote rounds are
#: time-bounded, so a LINK_DOWN burst or long pause silencing an honest
#: voter splits the echo/ready quorum (some members deliver, the
#: silenced ones refuse) -- a real sensitivity of any synchronous-round
#: RBC, but outside the tolerate-or-refuse envelope the soak asserts.
#: Flag drops/corruption and short stalls are absorbed by the transport
#: retry layer beneath the votes.
_BYZ_BENIGN_KINDS = (
    FaultKind.DROP_FLAG_WRITE,
    FaultKind.CORRUPT_FLAG_WRITE,
    FaultKind.LINK_STALL,
)
_ADVERSARIES = (
    FaultKind.EQUIVOCATE,
    FaultKind.FORGE_FLAG_VALUE,
    FaultKind.LIE_IN_QUORUM,
)

#: Intensity bounds (virtual us) -- all far under the 50 ms watchdog and
#: under the service's 2.5 ms suspicion timeout where it matters.
_STALL_RANGE = (100.0, 800.0)
_BURST_RANGE = (200.0, 800.0)
_PAUSE_RANGE = (200.0, 2_000.0)
_DROP_P_RANGE = (0.01, 0.10)
_HEAL_RANGE = (200.0, 1_500.0)

#: The service's default (fixed-deadline) suspicion bound -- the chaos
#: runner executes schedules against the stock config, so every
#: sustained regime's envelope is keyed to this constant: the regime
#: must end (flap, storm) or pace its outages (duty, gap) so that no
#: *live* member stays unreachable for a full suspicion window.  The
#: adaptive configuration tolerates far harsher regimes (see
#: ``repro.bench.churn``), but chaos asserts the *stock* stack's
#: zero-violation envelope.
_SUSPICION_BOUND = 6_000.0
#: FLAPPING_LINK: total window under half the suspicion bound, short
#: cycles with a minority duty so immediate-retry bursts straddle the
#: next up phase well inside any one deadline.
_FLAP_DURATION_RANGE = (400.0, 0.5 * _SUSPICION_BOUND)
_FLAP_PERIOD_RANGE = (100.0, 400.0)
_FLAP_DUTY_RANGE = (0.15, 0.45)
#: REPEATED_CRASH: the quiet gap gives the membership at least one
#: full collect/install round between crashes; two crashes total keeps
#: a 2*cols*rows-rank communicator's quorum comfortable.
_CHURN_GAP_RANGE = (_SUSPICION_BOUND, 2.0 * _SUSPICION_BOUND)
_CHURN_CYCLES = 2
#: CONGESTION_STORM: per-access stalls stay two orders under the
#: suspicion bound and the storm itself ends within one window, so the
#: correlated slowdown reads as jitter, never as silence.
_STORM_DURATION_RANGE = (400.0, _SUSPICION_BOUND)
_STORM_STALL_RANGE = (5.0, 50.0)

#: Trace kinds a CrashOnEvent can target: every rank stages/enters
#: chunks (``oc.chunk.begin``), non-root ranks also fetch
#: (``oc.fetch``).
_CRASH_KIND_ANY = "oc.chunk.begin"
_CRASH_KIND_NODE = "oc.fetch"


@dataclass
class ScheduleGenerator:
    """Seeded stream of valid chaos schedules."""

    seed: int = 1
    backends: tuple[str, ...] = BACKENDS
    meshes: tuple[tuple[int, int], ...] = ((2, 2), (3, 2), (4, 3))
    #: Mode mix (drawn uniformly).  ``baseline`` is only admitted when
    #: ``fragile=True``.
    modes: tuple[str, ...] = ("service", "service", "service", "byz", "ft")
    max_events: int = 3
    max_chunks: int = 3
    #: Probability of adding a CrashOnEvent / core-crash event (at most
    #: one crash per schedule either way).
    crash_prob: float = 0.25
    #: Probability that an asyncio schedule carries a lossy model
    #: (linkdrop or partition) instead of pure delay.
    lossy_model_prob: float = 0.3
    #: Admit the deliberately fragile baseline (``ft=False``) mode.
    fragile: bool = False
    _rng: random.Random = field(init=False, repr=False)
    _count: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        for mode in self.modes:
            if mode == "baseline" and not self.fragile:
                raise ValueError(
                    "mode 'baseline' needs fragile=True: it is expected "
                    "to lose and would fail the zero-violation soak"
                )
        self.backends = tuple(self.backends)
        self.meshes = tuple(tuple(m) for m in self.meshes)
        self.modes = tuple(self.modes)
        self._rng = random.Random(self.seed)

    # -- drawing ------------------------------------------------------------

    def generate(self, n: int) -> list[ChaosSchedule]:
        """The next ``n`` schedules of the stream."""
        return [self.one() for _ in range(n)]

    def one(self) -> ChaosSchedule:
        """Draw the next valid schedule (rejection-sampled: a draw that
        trips a :class:`FaultPlan` rule is discarded and retried)."""
        for _ in range(64):
            schedule = self._draw()
            try:
                schedule.validate()
            except ValueError:
                continue
            self._count += 1
            return schedule
        raise RuntimeError(
            "64 consecutive invalid draws -- generator bounds are "
            "inconsistent with the FaultPlan rules"
        )

    def _draw(self) -> ChaosSchedule:
        rng = self._rng
        backend = rng.choice(self.backends)
        mode = rng.choice(self.modes)
        mesh = rng.choice(self.meshes)
        chunks = rng.randint(1, self.max_chunks)
        seed = rng.randrange(1, 2**31)
        nranks = 2 * mesh[0] * mesh[1]
        profile = profile_counts(backend, mesh, chunks, mode)

        specs: list[FaultSpec] = []
        claimed: set[tuple[str, int | None, int]] = set()
        crash: tuple[int, str, int] | None = None
        crash_budget = 1
        ft_ack_data = False

        n_events = rng.randint(1, self.max_events)
        for _ in range(n_events):
            roll = rng.random()
            if mode == "byz" and roll < 0.6:
                spec = self._draw_adversary(rng, nranks, profile, claimed)
                if spec is not None:
                    specs.append(spec)
                continue
            if mode == "service" and crash_budget \
                    and roll >= 1.0 - self.crash_prob:
                # Crashes only under the membership service: bare FT has
                # no eviction path (an interior crash wedges it) and a
                # crashed honest rank muddies the Byzantine quorum
                # arithmetic -- both outside the zero-violation envelope.
                crash_budget = 0
                if backend == "scc" and rng.random() < 0.5:
                    spec = self._draw_core_crash(rng, nranks, profile, claimed)
                    if spec is not None:
                        specs.append(spec)
                else:
                    crash = self._draw_crash_hook(rng, nranks, chunks)
                continue
            spec = self._draw_injector(
                rng, backend, mode, nranks, profile, claimed
            )
            if spec is None:
                continue
            if spec.kind is FaultKind.DROP_DATA_WRITE:
                ft_ack_data = True
            specs.append(spec)

        model = None
        if backend == "asyncio":
            model = self._draw_model(rng, mode, nranks)

        return ChaosSchedule(
            backend=backend,
            mesh=mesh,
            chunks=chunks,
            mode=mode,
            seed=seed,
            specs=tuple(specs),
            crash=crash,
            model=model,
            label=f"gen{self.seed}#{self._count}",
            ft_ack_data=ft_ack_data,
        )

    # -- event pools --------------------------------------------------------

    def _claim(
        self,
        spec: FaultSpec,
        claimed: set[tuple[str, int | None, int]],
    ) -> FaultSpec | None:
        site = (CATEGORY_OF[spec.kind], spec.core, spec.nth)
        if site in claimed:
            return None
        claimed.add(site)
        return spec

    def _nth(self, rng: random.Random, count: int) -> int:
        return rng.randint(1, max(1, count))

    def _draw_injector(
        self, rng, backend, mode, nranks, profile, claimed
    ) -> FaultSpec | None:
        if mode == "byz":
            pool = list(_BYZ_BENIGN_KINDS)
        else:
            pool = list(_SERVICE_KINDS if mode == "service" else _FT_KINDS)
        if backend == "scc" and mode == "service":
            # The occurrence-counted mpb_access / core_op anchors of the
            # pause and sustained-regime kinds are SCC-mesh semantics
            # (see SCC_ONLY_KINDS), and only the service's membership
            # layer rides out a multi-deadline outage.
            pool.extend((
                FaultKind.CORE_PAUSE,
                FaultKind.FLAPPING_LINK,
                FaultKind.CONGESTION_STORM,
            ))
        kind = rng.choice(pool)
        if kind in (FaultKind.DROP_FLAG_WRITE, FaultKind.CORRUPT_FLAG_WRITE):
            spec = FaultSpec(
                kind, nth=self._nth(rng, profile.get("flag_write", 0))
            )
        elif kind in (FaultKind.DROP_DATA_WRITE, FaultKind.CORRUPT_DATA_WRITE):
            spec = FaultSpec(
                kind, nth=self._nth(rng, profile.get("data_write", 0))
            )
        elif kind is FaultKind.LINK_STALL:
            spec = FaultSpec(
                kind,
                nth=self._nth(rng, profile.get("mpb_access", 0)),
                duration=rng.uniform(*_STALL_RANGE),
            )
        elif kind is FaultKind.LINK_DOWN:
            core = rng.randrange(1, nranks)
            spec = FaultSpec(
                kind,
                core=core,
                nth=self._nth(rng, profile.get(f"mpb_access@core{core}", 0)),
                duration=rng.uniform(*_BURST_RANGE),
            )
        elif kind is FaultKind.FLAPPING_LINK:
            core = rng.randrange(1, nranks)
            period = rng.uniform(*_FLAP_PERIOD_RANGE)
            duration = max(period, rng.uniform(*_FLAP_DURATION_RANGE))
            spec = FaultSpec(
                kind,
                core=core,
                nth=self._nth(rng, profile.get(f"mpb_access@core{core}", 0)),
                duration=duration,
                period=period,
                duty=rng.uniform(*_FLAP_DUTY_RANGE),
            )
        elif kind is FaultKind.CONGESTION_STORM:
            spec = FaultSpec(
                kind,
                nth=self._nth(rng, profile.get("mpb_access", 0)),
                duration=rng.uniform(*_STORM_DURATION_RANGE),
                period=rng.uniform(*_STORM_STALL_RANGE),
            )
        else:  # CORE_PAUSE (scc only)
            core = rng.randrange(1, nranks)
            spec = FaultSpec(
                kind,
                core=core,
                nth=self._nth(rng, profile.get(f"core_op@core{core}", 0)),
                duration=rng.uniform(*_PAUSE_RANGE),
            )
        return self._claim(spec, claimed)

    def _draw_core_crash(self, rng, nranks, profile, claimed):
        core = rng.randrange(1, nranks)
        nth = self._nth(rng, profile.get(f"core_op@core{core}", 0))
        if nranks >= 8 and rng.random() < 0.33:
            # Churn: a second, different core crashes after a quiet gap
            # of at least one suspicion window.  Only on meshes large
            # enough that two evictions leave a comfortable quorum.
            spec = FaultSpec(
                FaultKind.REPEATED_CRASH,
                core=core,
                nth=nth,
                period=rng.uniform(*_CHURN_GAP_RANGE),
                cycles=_CHURN_CYCLES,
            )
        else:
            spec = FaultSpec(FaultKind.CORE_CRASH, core=core, nth=nth)
        return self._claim(spec, claimed)

    def _draw_crash_hook(self, rng, nranks, chunks):
        rank = rng.randrange(0, nranks)
        kind = _CRASH_KIND_ANY if rank == 0 or rng.random() < 0.5 \
            else _CRASH_KIND_NODE
        return (rank, kind, rng.randint(1, max(1, chunks)))

    def _draw_adversary(self, rng, nranks, profile, claimed):
        kind = rng.choice(_ADVERSARIES)
        if kind is FaultKind.EQUIVOCATE:
            n_stage = max(1, profile.get("adv_stage@core0", 1))
            spec = FaultSpec(
                kind, core=0, nth=rng.randint(1, n_stage), duration=1
            )
        else:
            core = rng.randrange(1, nranks)
            n_vote = max(1, profile.get(f"quorum_vote@core{core}", 1))
            spec = FaultSpec(kind, core=core, nth=rng.randint(1, n_vote))
        return self._claim(spec, claimed)

    def _draw_model(self, rng, mode, nranks) -> ModelSpec:
        if mode == "byz":
            # The time-bounded vote rounds assume bounded skew: random
            # per-write delays can land one honest member past the
            # quorum deadline its peers met, splitting the outcome.
            return ModelSpec(name="none")
        if rng.random() < self.lossy_model_prob and mode == "service":
            if rng.random() < 0.5:
                return ModelSpec(
                    name="linkdrop",
                    p=rng.uniform(*_DROP_P_RANGE),
                    lo=0.05,
                    hi=rng.uniform(1.0, 5.0),
                )
            # Split off a minority island that heals well inside the
            # membership suspicion timeout.
            island = rng.sample(range(1, nranks), k=max(1, nranks // 4))
            rest = [r for r in range(nranks) if r not in island]
            return ModelSpec(
                name="partition",
                groups=(tuple(rest), tuple(island)),
                heal_at=rng.uniform(*_HEAL_RANGE),
            )
        if rng.random() < 0.25:
            return ModelSpec(name="none")
        return ModelSpec(name="uniform", lo=0.05, hi=rng.uniform(1.0, 5.0))
