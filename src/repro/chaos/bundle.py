"""Deterministic repro bundles: a chaos failure as a JSON artifact.

A :class:`ReproBundle` pins everything needed to reproduce one chaos
run bit-for-bit: the full :class:`~repro.chaos.schedule.ChaosSchedule`
(backend, geometry, mode, seed, fault events, network model, protocol
knobs) plus the *expected* result -- classification, fine-grained
status, decision digest and injection count.  ``python -m repro chaos
--replay bundle.json`` re-runs the schedule and diffs the outcome
against the expectation; the pinned bundles under
``tests/chaos_bundles/`` do the same as tier-1 pytest parameters.

Campaign bridge (the self-reproducing-failure path): a lost
:class:`~repro.bench.faultcampaign.FaultCampaign` trial converts 1:1
into a chaos schedule -- same seed (hence the same
``np.random.default_rng`` payload), same fault plan, same OC-Bcast
knobs -- so ``repro faults`` failures emit a one-line replay command
instead of just bumping a counter.  Written bundles are
*self-validating*: the expectation recorded is the chaos runner's own
result for the converted schedule (re-run at write time), with the
original campaign classification kept in ``meta`` for cross-reference.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..faults.plan import FaultKind
from ..scc.config import CACHE_LINE, SccConfig
from .runner import ChaosOutcome, run_schedule
from .schedule import ChaosSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..bench.faultcampaign import CampaignResult, FaultCampaign

BUNDLE_VERSION = 1

#: Per-leg outcomes that count as *lost* (not recovered, not an expected
#: refusal) and deserve a repro bundle.  The baseline leg is absent on
#: purpose: its losses are the measurement, not a regression.
LOST_OUTCOMES = {
    "ft": ("deadlock", "timeout", "corrupt", "crashed"),
    "service": ("deadlock", "timeout", "corrupt", "crashed"),
    "byz": ("disagreement", "partial", "deadlock", "timeout", "crashed"),
}


def repro_command(path: str) -> str:
    """The one-liner that replays a bundle."""
    return f"PYTHONPATH=src python -m repro chaos --replay {path}"


@dataclass(frozen=True)
class ReproBundle:
    """One replayable chaos failure (or pinned regression case)."""

    schedule: ChaosSchedule
    #: Expected result: classification, status, decision digest,
    #: injection count.  Replay fails on any mismatch.
    expected: dict
    note: str = ""
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": BUNDLE_VERSION,
            "note": self.note,
            "schedule": self.schedule.to_dict(),
            "expected": dict(self.expected),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ReproBundle":
        version = d.get("version", BUNDLE_VERSION)
        if version != BUNDLE_VERSION:
            raise ValueError(
                f"unsupported bundle version {version!r} "
                f"(this build reads version {BUNDLE_VERSION})"
            )
        return cls(
            schedule=ChaosSchedule.from_dict(d["schedule"]),
            expected=dict(d.get("expected", {})),
            note=d.get("note", ""),
            meta=dict(d.get("meta", {})),
        )

    def save(self, path: str) -> str:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ReproBundle":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def replay(self) -> tuple[ChaosOutcome, list[str]]:
        """Re-run the schedule; returns the outcome plus any mismatches
        against the recorded expectation (empty list = faithful repro)."""
        outcome = run_schedule(self.schedule)
        mismatches = []
        for key, got in (
            ("classification", outcome.classification),
            ("status", outcome.status),
            ("digest", outcome.digest),
            ("n_injected", outcome.n_injected),
        ):
            want = self.expected.get(key)
            if want is not None and want != got:
                mismatches.append(f"{key}: expected {want!r}, got {got!r}")
        return outcome, mismatches


def make_bundle(
    outcome: ChaosOutcome, *, note: str = "", meta: dict | None = None
) -> ReproBundle:
    """Bundle an outcome the runner just produced."""
    return ReproBundle(
        schedule=outcome.schedule,
        expected={
            "classification": outcome.classification,
            "status": outcome.status,
            "digest": outcome.digest,
            "n_injected": outcome.n_injected,
        },
        note=note or outcome.describe(),
        meta=dict(meta or {}),
    )


def write_bundle(
    outcome: ChaosOutcome,
    out_dir: str,
    *,
    name: str = "",
    note: str = "",
    meta: dict | None = None,
) -> str:
    """Write one outcome's bundle under ``out_dir``; returns the path."""
    s = outcome.schedule
    stem = name or (
        f"chaos-{s.backend}-{s.mode}-{s.mesh[0]}x{s.mesh[1]}"
        f"-seed{s.seed}-{outcome.status}"
    )
    path = os.path.join(out_dir, f"{stem}.json")
    # Never clobber a distinct counterexample: suffix on collision.
    n = 1
    while os.path.exists(path):
        candidate = os.path.join(out_dir, f"{stem}-{n}.json")
        n += 1
        path = candidate
    make_bundle(outcome, note=note, meta=meta).save(path)
    return path


# -- campaign bridge ----------------------------------------------------------


def schedule_for_trial(
    campaign: "FaultCampaign", plan, leg: str
) -> ChaosSchedule:
    """Convert one campaign trial (its fault plan + the campaign's
    config) into a replayable chaos schedule.

    The conversion is exact for the default campaign geometry: same
    seed (hence the same payload bytes), same specs, same OC-Bcast
    knobs.  A campaign message length that is not a whole number of
    chunks rounds *up* (the schedule replays the enclosing-chunk
    neighborhood; the original ``nbytes`` is kept in the caller's
    ``meta``).  Only root-0 campaigns convert -- the chaos runner pins
    the root.
    """
    if leg not in ("ft", "baseline", "service", "byz"):
        raise ValueError(f"unknown campaign leg {leg!r}")
    if campaign.root != 0:
        raise ValueError(
            f"only root-0 campaigns convert to chaos schedules "
            f"(campaign root is {campaign.root})"
        )
    cfg = campaign.config or SccConfig()
    chunk_bytes = campaign.chunk_lines * CACHE_LINE
    return ChaosSchedule(
        backend="scc",
        mesh=(cfg.mesh_cols, cfg.mesh_rows),
        chunks=max(1, math.ceil(campaign.nbytes / chunk_bytes)),
        mode=leg,
        seed=campaign.seed,
        specs=tuple(plan.specs),
        label=plan.label or f"campaign-seed{campaign.seed}",
        watchdog_us=campaign.watchdog_interval,
        k=campaign.k,
        chunk_lines=campaign.chunk_lines,
        num_buffers=campaign.num_buffers,
        ft_max_retries=campaign.ft_max_retries,
        ft_ack_data=FaultKind.DROP_DATA_WRITE in campaign.kinds,
    )


def campaign_counterexamples(
    result: "CampaignResult",
) -> Iterator[tuple[int, str, object]]:
    """Yield ``(trial index, leg, TrialRun)`` for every lost trial of a
    campaign result -- the runs worth a repro bundle."""
    for trial in result.trials:
        for leg in ("ft", "service", "byz"):
            run = getattr(trial, leg)
            if run is not None and run.outcome in LOST_OUTCOMES[leg]:
                yield trial.index, leg, run


def write_campaign_bundles(
    campaign: "FaultCampaign",
    result: "CampaignResult",
    out_dir: str,
    *,
    limit: int = 5,
) -> list[tuple[str, str, int]]:
    """Write repro bundles for a campaign's lost trials (satellite:
    self-reproducing failures).  At most ``limit`` bundles; returns
    ``(path, leg, trial index)`` triples.  Each bundle's expectation is
    the chaos runner's own result for the converted schedule (re-run
    here), so replays always match; the campaign's classification rides
    in ``meta`` for cross-reference."""
    written: list[tuple[str, str, int]] = []
    for index, leg, run in campaign_counterexamples(result):
        if len(written) >= limit:
            break
        plan = result.trials[index].plan
        try:
            schedule = schedule_for_trial(campaign, plan, leg)
        except ValueError:
            continue
        outcome = run_schedule(schedule)
        path = write_bundle(
            outcome, out_dir,
            name=f"campaign-seed{campaign.seed}-trial{index}-{leg}",
            note=(
                f"campaign seed={campaign.seed} trial={index} leg={leg} "
                f"lost as {run.outcome!r}"
            ),
            meta={
                "campaign_outcome": run.outcome,
                "campaign_detail": run.detail,
                "campaign_nbytes": campaign.nbytes,
                "trial_index": index,
                "leg": leg,
            },
        )
        written.append((path, leg, index))
    return written
