"""Binomial-tree scatter (the first phase of scatter-allgather, exposed
as a collective of its own).

After the call, the slice for relative rank ``rel`` sits at byte range
``[rel*s, rel*s + len)`` of ``buf`` on that rank (``s = ceil(n/size)``).
Every rank passes a full-size ``buf``; only the root's content matters on
entry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef
from .scatter_allgather import _scatter_phase, slice_range

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


def binomial_scatter(
    cc: "CoreComm", root: int, buf: MemRef, nbytes: int
) -> Generator:
    """Scatter ``nbytes`` of ``root``'s ``buf`` so every rank holds its
    slice in place.  Returns this rank's ``(offset, length)``."""
    size = cc.size
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside 0..{size - 1}")
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if size > 1 and nbytes > 0:
        yield from _scatter_phase(cc, root, buf, nbytes)
    return slice_range(nbytes, size, (cc.rank - root) % size)
