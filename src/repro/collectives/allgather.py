"""Ring allgather (the second phase of scatter-allgather, standalone).

Each rank contributes ``block_bytes`` and finishes with all blocks laid
out by rank in ``dst``.  P-1 rounds; blocks travel from rank ``i+1`` to
rank ``i``, with the even/odd parity schedule keeping the blocking
rendezvous ring deadlock-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


def ring_allgather(
    cc: "CoreComm",
    src: MemRef,
    dst: MemRef,
    block_bytes: int,
) -> Generator:
    """Allgather ``block_bytes`` per rank into ``dst`` (rank-major)."""
    size = cc.size
    if block_bytes < 0:
        raise ValueError("block_bytes must be >= 0")
    if dst.nbytes < block_bytes * size:
        raise ValueError("dst must hold size * block_bytes")
    if block_bytes == 0:
        return

    rank = cc.rank
    yield from cc.local_copy(dst.sub(rank * block_bytes, block_bytes), src, block_bytes)
    if size == 1:
        return

    lower = (rank - 1) % size
    upper = (rank + 1) % size
    for t in range(size - 1):
        send_idx = (rank + t) % size
        recv_idx = (rank + t + 1) % size
        sref = dst.sub(send_idx * block_bytes, block_bytes)
        rref = dst.sub(recv_idx * block_bytes, block_bytes)
        if rank % 2 == 0:
            yield from cc.send(lower, sref, block_bytes)
            yield from cc.recv(upper, rref, block_bytes)
        else:
            yield from cc.recv(upper, rref, block_bytes)
            yield from cc.send(lower, sref, block_bytes)
