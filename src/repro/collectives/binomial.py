"""Binomial-tree broadcast (the RCCE_comm small-message baseline).

The classic recursive-halving construction (paper Section 5.2.2): the set
of ranks is split in two halves, the root sends the whole message to one
rank of the other half, and broadcast recurses in both halves --
equivalently, the mask-doubling loop used by MPICH.  ``O(log2 P)`` levels,
each moving the *entire* message over a send/recv pair, which is why
Formula 14 carries ``log2 P`` off-chip write terms that OC-Bcast avoids.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


def binomial_parent(rank: int, root: int, size: int) -> int | None:
    """The rank this node receives from (None at the root)."""
    rel = (rank - root) % size
    if rel == 0:
        return None
    mask = 1
    while not rel & mask:
        mask <<= 1
    return (rank - mask) % size


def binomial_children(rank: int, root: int, size: int) -> list[int]:
    """Ranks this node forwards to, in send order (largest subtree first,
    matching the mask-descending MPICH loop)."""
    rel = (rank - root) % size
    mask = 1
    while mask < size and not rel & mask:
        mask <<= 1
    # mask is now the bit that brought us the message (or >= size at root).
    children = []
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            children.append((rank + mask) % size)
        mask >>= 1
    return children


def binomial_bcast(
    cc: "CoreComm", root: int, buf: MemRef, nbytes: int
) -> Generator:
    """Broadcast ``nbytes`` from ``root``'s ``buf`` into every rank's
    ``buf`` using the binomial tree over blocking send/recv."""
    size = cc.size
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside 0..{size - 1}")
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if size == 1 or nbytes == 0:
        return
    parent = binomial_parent(cc.rank, root, size)
    if parent is not None:
        yield from cc.recv(parent, buf, nbytes)
    for child in binomial_children(cc.rank, root, size):
        yield from cc.send(child, buf, nbytes)
