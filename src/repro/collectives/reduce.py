"""Binomial-tree reduction over two-sided send/recv.

Element-wise combination is expressed as a :class:`ReduceOp` (dtype +
NumPy ufunc) applied to byte buffers, so reductions move through exactly
the same send/recv path as broadcasts -- the two-sided cost structure the
paper's Section 7 extension study compares OC-style collectives against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

import numpy as np

from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


@dataclass(frozen=True)
class ReduceOp:
    """An element-wise reduction operator over a fixed dtype."""

    name: str
    dtype: np.dtype
    ufunc: np.ufunc

    def combine(self, acc: bytes, other: bytes) -> bytes:
        a = np.frombuffer(acc, dtype=self.dtype)
        b = np.frombuffer(other, dtype=self.dtype)
        if a.shape != b.shape:
            raise ValueError("reduce operands differ in length")
        return self.ufunc(a, b).astype(self.dtype, copy=False).tobytes()

    # -- common operators ---------------------------------------------------

    @classmethod
    def sum(cls, dtype: str = "<i8") -> "ReduceOp":
        return cls("sum", np.dtype(dtype), np.add)

    @classmethod
    def prod(cls, dtype: str = "<i8") -> "ReduceOp":
        return cls("prod", np.dtype(dtype), np.multiply)

    @classmethod
    def max(cls, dtype: str = "<i8") -> "ReduceOp":
        return cls("max", np.dtype(dtype), np.maximum)

    @classmethod
    def min(cls, dtype: str = "<i8") -> "ReduceOp":
        return cls("min", np.dtype(dtype), np.minimum)


def binomial_reduce(
    cc: "CoreComm",
    root: int,
    sendbuf: MemRef,
    recvbuf: MemRef | None,
    nbytes: int,
    op: ReduceOp,
) -> Generator:
    """Reduce ``nbytes`` from every rank's ``sendbuf`` into ``root``'s
    ``recvbuf`` (ignored elsewhere; pass a scratch buffer of ``nbytes``
    on every rank -- it is used to accumulate partial results).
    """
    size = cc.size
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside 0..{size - 1}")
    if nbytes % op.dtype.itemsize:
        raise ValueError(
            f"{nbytes} bytes is not a whole number of {op.dtype} elements"
        )
    if recvbuf is None or recvbuf.nbytes < nbytes:
        raise ValueError("every rank must pass a recv/scratch buffer of nbytes")
    if nbytes == 0:
        return

    # Accumulate into recvbuf so sendbuf stays untouched (MPI semantics).
    yield from cc.local_copy(recvbuf, sendbuf, nbytes)
    scratch = cc.alloc(nbytes)

    rel = (cc.rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            parent = (cc.rank - mask) % size
            yield from cc.send(parent, recvbuf.sub(0, nbytes), nbytes)
            return
        if rel + mask < size:
            child = (cc.rank + mask) % size
            yield from cc.recv(child, scratch, nbytes)
            combined = op.combine(
                recvbuf.sub(0, nbytes).read(), scratch.read()
            )
            # The combine itself is local compute over both operands.
            yield from cc.mem_read(scratch)
            yield from cc.mem_write(recvbuf.sub(0, nbytes))
            recvbuf.sub(0, nbytes).write(combined)
        mask <<= 1
