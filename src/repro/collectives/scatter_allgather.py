"""Scatter-allgather broadcast (the RCCE_comm large-message baseline).

Two phases (paper Section 5.3.2):

1. *Scatter*: the message is cut into P slices; a binary recursive tree
   (same shape as the binomial broadcast tree) distributes slices so that
   the rank at relative position ``rel`` ends up holding slice ``rel``.
2. *Allgather*: P-1 ring rounds; in every round each core sends one slice
   to its lower neighbour and receives the next slice from its upper
   neighbour ("core i sends to core i-1 the slices it received in the
   previous step" -- the Bruck-style exchange of [6] as the paper deploys
   it).

Slice ``j`` is the fixed byte range ``[j*s, (j+1)*s)`` of the message
(``s = ceil(n/P)``; trailing slices may be short or empty), so the buffer
is assembled in place and every rank finishes with the full message.

Ranks at even relative position send before receiving, odd ones receive
before sending -- the standard parity schedule that makes the ring of
blocking rendezvous operations deadlock-free for any P.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


def slice_range(nbytes: int, size: int, index: int) -> tuple[int, int]:
    """Byte range (offset, length) of slice ``index`` out of ``size``."""
    s = -(-nbytes // size) if nbytes else 0
    off = min(index * s, nbytes)
    return off, min(s, nbytes - off)


def _scatter_phase(
    cc: "CoreComm", root: int, buf: MemRef, nbytes: int
) -> Generator:
    """Binary-recursive-tree scatter leaving slice ``rel`` at relative
    rank ``rel``."""
    size = cc.size
    rel = (cc.rank - root) % size

    # Receive my subtree's block from the parent (non-roots only).
    mask = 1
    while mask < size and not rel & mask:
        mask <<= 1
    if rel != 0:
        parent = (cc.rank - mask) % size
        lo, _ = slice_range(nbytes, size, rel)
        hi_idx = min(rel + mask, size)
        hi = slice_range(nbytes, size, hi_idx)[0]
        yield from cc.recv(parent, buf.sub(lo, max(0, hi - lo)), max(0, hi - lo))

    # Forward the upper half of my block, halving each time.
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            child = (cc.rank + mask) % size
            lo = slice_range(nbytes, size, rel + mask)[0]
            hi_idx = min(rel + 2 * mask, size)
            hi = slice_range(nbytes, size, hi_idx)[0]
            yield from cc.send(child, buf.sub(lo, max(0, hi - lo)), max(0, hi - lo))
        mask >>= 1


def _allgather_phase(
    cc: "CoreComm", root: int, buf: MemRef, nbytes: int
) -> Generator:
    """P-1 ring rounds: slices travel from higher to lower relative rank."""
    size = cc.size
    rel = (cc.rank - root) % size
    dst = (root + (rel - 1) % size) % size  # lower neighbour
    src = (root + (rel + 1) % size) % size  # upper neighbour

    for t in range(size - 1):
        send_off, send_len = slice_range(nbytes, size, (rel + t) % size)
        recv_off, recv_len = slice_range(nbytes, size, (rel + t + 1) % size)
        if rel % 2 == 0:
            yield from cc.send(dst, buf.sub(send_off, send_len), send_len)
            yield from cc.recv(src, buf.sub(recv_off, recv_len), recv_len)
        else:
            yield from cc.recv(src, buf.sub(recv_off, recv_len), recv_len)
            yield from cc.send(dst, buf.sub(send_off, send_len), send_len)


def scatter_allgather_bcast(
    cc: "CoreComm", root: int, buf: MemRef, nbytes: int
) -> Generator:
    """Broadcast ``nbytes`` from ``root`` by scattering slices then
    allgathering them around the ring."""
    size = cc.size
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside 0..{size - 1}")
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if size == 1 or nbytes == 0:
        return
    if size == 2:
        # Degenerate ring: a single send/recv of the whole message.
        if cc.rank == root:
            yield from cc.send((root + 1) % size, buf, nbytes)
        else:
            yield from cc.recv(root, buf, nbytes)
        return
    yield from _scatter_phase(cc, root, buf, nbytes)
    yield from _allgather_phase(cc, root, buf, nbytes)
