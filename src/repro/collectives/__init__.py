"""RCCE_comm-style collective operations over two-sided send/recv.

These are the paper's baselines (Section 5): the binomial-tree broadcast
used for small messages and the scatter-allgather broadcast used for
large ones, plus the surrounding collective set (barrier, reduce, gather,
scatter, allgather) that a real application library ships and that the
extension study (Section 7) compares against.

Every collective is a plain generator function taking the calling core's
:class:`~repro.rcce.comm.CoreComm` first -- SPMD style: all ranks call
the same function with matching arguments.
"""

from .allgather import ring_allgather
from .alltoall import pairwise_alltoall
from .barrier import BarrierState, dissemination_barrier
from .binomial import binomial_bcast, binomial_children, binomial_parent
from .gather import binomial_gather
from .reduce import ReduceOp, binomial_reduce
from .scatter import binomial_scatter
from .scatter_allgather import scatter_allgather_bcast

__all__ = [
    "BarrierState",
    "ReduceOp",
    "binomial_bcast",
    "binomial_children",
    "binomial_gather",
    "binomial_parent",
    "binomial_reduce",
    "binomial_scatter",
    "dissemination_barrier",
    "pairwise_alltoall",
    "ring_allgather",
    "scatter_allgather_bcast",
]
