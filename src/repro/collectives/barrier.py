"""Dissemination barrier on MPB flags.

``ceil(log2 P)`` rounds; in round ``r`` rank ``i`` signals rank
``(i + 2^r) mod P`` and waits for the signal from ``(i - 2^r) mod P``.
One flag line per round per core keeps writers distinct even when fast
cores race one round ahead; sequence numbers (the barrier invocation
count) make the flags reusable without clearing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..rcce.flags import Flag, FlagValue

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import Comm, CoreComm


class BarrierState:
    """Flags and invocation counters for one communicator's barrier."""

    def __init__(self, comm: "Comm") -> None:
        self.rounds = max(1, (comm.size - 1).bit_length())
        self.flags: list[Flag] = [
            comm.flag(f"barrier.r{r}") for r in range(self.rounds)
        ]
        # Per-rank invocation counter (each rank advances only its own).
        self._epoch = [0] * comm.size


def dissemination_barrier(cc: "CoreComm", state: BarrierState) -> Generator:
    """Block until every rank of the communicator has entered the barrier."""
    size = cc.size
    if size == 1:
        return
    state._epoch[cc.rank] += 1
    epoch = state._epoch[cc.rank]
    for r in range(state.rounds):
        dist = 1 << r
        partner = (cc.rank + dist) % size
        waited_on = (cc.rank - dist) % size
        yield from cc.flag_set(partner, state.flags[r], FlagValue(cc.rank, epoch))
        yield from cc.wait_flags(
            [state.flags[r]],
            lambda v, w=waited_on, e=epoch: v[0].tag == w and v[0].seq >= e,
        )
