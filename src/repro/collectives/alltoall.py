"""Pairwise-exchange all-to-all over two-sided send/recv.

Each rank holds ``size`` blocks (rank-major) and must deliver block
``j`` to rank ``j`` while collecting block ``i`` from every rank ``i``
-- the transpose communication pattern of FFTs and bucket sorts.

Schedule: ``size - 1`` rounds; in round ``t`` rank ``i`` exchanges with
partner ``i XOR t`` when that partner exists (the classic XOR pairing:
within a round the pairing is a perfect matching, so both sides of each
pair agree, and ordering sends before receives on the lower rank keeps
the blocking rendezvous deadlock-free).  Ranks without a partner in a
round (XOR value >= size for non-power-of-two worlds) sit the round out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


def pairwise_alltoall(
    cc: "CoreComm",
    src: MemRef,
    dst: MemRef,
    block_bytes: int,
) -> Generator:
    """Exchange ``block_bytes`` blocks: ``dst[i] = src_of_rank_i[my_rank]``."""
    size = cc.size
    if block_bytes < 0:
        raise ValueError("block_bytes must be >= 0")
    if src.nbytes < block_bytes * size or dst.nbytes < block_bytes * size:
        raise ValueError("src and dst must hold size * block_bytes")
    if block_bytes == 0:
        return

    # Own block moves locally.
    yield from cc.local_copy(
        dst.sub(cc.rank * block_bytes, block_bytes),
        src.sub(cc.rank * block_bytes, block_bytes),
        block_bytes,
    )
    # Determine the number of rounds: smallest power of two >= size
    # guarantees every ordered pair appears in exactly one round.
    rounds = 1
    while rounds < size:
        rounds *= 2
    for t in range(1, rounds):
        partner = cc.rank ^ t
        if partner >= size:
            continue
        sref = src.sub(partner * block_bytes, block_bytes)
        rref = dst.sub(partner * block_bytes, block_bytes)
        if cc.rank < partner:
            yield from cc.send(partner, sref, block_bytes)
            yield from cc.recv(partner, rref, block_bytes)
        else:
            yield from cc.recv(partner, rref, block_bytes)
            yield from cc.send(partner, sref, block_bytes)
