"""Binomial-tree gather: every rank's block ends up at the root.

Blocks are laid out by *relative* rank (``rel = (rank - root) % size``),
so the root receives a contiguous image ``block(rel 0) .. block(rel P-1)``
and rotation to absolute-rank order, if desired, is the caller's choice.
Every rank passes a full-size buffer; rank ``rel`` accumulates the blocks
of its binomial subtree ``[rel, rel + subtree)`` before forwarding them to
its parent in one message -- the standard tree gather.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..scc.memory import MemRef

if TYPE_CHECKING:  # pragma: no cover
    from ..rcce.comm import CoreComm


def binomial_gather(
    cc: "CoreComm",
    root: int,
    src: MemRef,
    dst: MemRef,
    block_bytes: int,
) -> Generator:
    """Gather ``block_bytes`` from each rank's ``src`` into ``dst`` at the
    root (``dst`` is scratch of ``block_bytes * size`` on other ranks)."""
    size = cc.size
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside 0..{size - 1}")
    if block_bytes < 0:
        raise ValueError("block_bytes must be >= 0")
    if dst.nbytes < block_bytes * size:
        raise ValueError("dst must hold size * block_bytes")
    if block_bytes == 0 or size == 0:
        return

    rel = (cc.rank - root) % size
    # Own block goes to its relative slot.
    yield from cc.local_copy(dst.sub(rel * block_bytes, block_bytes), src, block_bytes)

    mask = 1
    while mask < size:
        if rel & mask:
            # My subtree [rel, rel + mask) is complete: forward and stop.
            parent = (cc.rank - mask) % size
            span = (min(rel + mask, size) - rel) * block_bytes
            yield from cc.send(parent, dst.sub(rel * block_bytes, span), span)
            return
        if rel + mask < size:
            child = (cc.rank + mask) % size
            lo = rel + mask
            span = (min(lo + mask, size) - lo) * block_bytes
            yield from cc.recv(child, dst.sub(lo * block_bytes, span), span)
        mask <<= 1
