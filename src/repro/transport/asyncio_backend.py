"""An asyncio event-loop transport backend for the protocol layer.

The protocols in this repo are generator coroutines written against the
narrow transport surface documented in :mod:`repro.transport.api`.  This
module provides that surface without the SCC chip model: each rank's
program runs as an asyncio task, each rank owns a :class:`RankStore`
(the stand-in for its message-passing buffer), and all timing comes from
a pluggable, seeded :class:`~repro.transport.models.DelayModel` instead
of the chip's calibrated LogP constants.

Virtual time
------------
The event loop never touches the wall clock.  ``AsyncioNetwork`` keeps a
virtual clock (float microseconds, like the SCC simulator) advanced only
when *every* rank is blocked: a counter of runnable tasks (``_active``)
and of fired-but-not-yet-resumed futures (``_pending``) tells the
network when the world is quiescent, at which point the earliest entry
of a deadline heap fires and the clock jumps to it.  Zero-delay
operations also pass through the heap, so execution order is a
deterministic function of task creation order and model draws -- the
property the differential harness depends on.  If the heap runs dry (or
holds only entries beyond ``time_limit``) while ranks are still
blocked, every blocked rank is failed with a
:class:`~repro.sim.errors.DeadlockError` naming the stuck sites.

Decision fidelity
-----------------
Write/ack/wait primitives clone the SCC semantics *exactly* -- the same
ack predicates, retry bounds, timeout ordering (predicate satisfied at
the deadline still wins), timeout ``site`` strings, and fault-injector
consultation (``repro.faults`` plans attach to the rank stores just as
they attach to MPBs) -- so the two backends may disagree on every
latency but never on a protocol decision.
"""

from __future__ import annotations

import asyncio
import itertools
from heapq import heappop, heappush
from types import SimpleNamespace
from typing import Any, Callable, Generator, Sequence

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..rcce.flags import _VOTE, DigestSlotArray, Flag, FlagSlotArray, FlagValue
from ..rcce.layout import MpbLayout
from ..resilience.policy import RetryPolicy, plan_delays
from ..scc.config import CACHE_LINE, MPB_BYTES, MPB_LINES
from ..scc.memory import MemRef, PrivateMemory
from ..sim.errors import DeadlockError, TimeoutError as SimTimeoutError
from ..sim.trace import Tracer
from .models import DelayModel, NoDelay

_PRIVATE_MEM_BYTES = 16 * 1024 * 1024


class RankStore:
    """One rank's shared message store (the asyncio stand-in for an MPB).

    Mirrors :class:`repro.scc.mpb.Mpb`'s write-classification contract so
    a :class:`FaultInjector` attaches unchanged: protocol writes carry
    ``source`` and ``op`` (``"flag"``/``"data"``), ``op="raw"`` marks
    initialisation writes that are never faulted, and the returned landed
    status is ``"ok"`` / ``"dropped"`` / ``"corrupted"``.
    """

    def __init__(self, owner: int, size: int = MPB_BYTES) -> None:
        self.owner = owner
        self.size = size
        self.data = bytearray(size)
        self.injector: FaultInjector | None = None

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"store {self.owner}: access [{offset}, {offset + nbytes}) "
                f"outside 0..{self.size}"
            )

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        self._check_range(offset, nbytes)
        return bytes(self.data[offset : offset + nbytes])

    def write_bytes(
        self,
        offset: int,
        payload: bytes | bytearray | memoryview,
        *,
        source: int | None = None,
        op: str = "raw",
    ) -> str:
        payload = bytes(payload)
        nbytes = len(payload)
        self._check_range(offset, nbytes)
        if self.injector is not None and source is not None and op != "raw":
            action = self.injector.filter_mpb_write(
                owner=self.owner, offset=offset, nbytes=nbytes, source=source, op=op
            )
            if action == "drop":
                return "dropped"
            if action == "corrupt":
                payload = bytes(b ^ 0xFF for b in payload)
                self.data[offset : offset + nbytes] = payload
                return "corrupted"
        self.data[offset : offset + nbytes] = payload
        return "ok"


class _SimShim:
    """The ``chip.sim`` surface the fault injector expects."""

    def __init__(self, net: "AsyncioNetwork") -> None:
        self._net = net
        self.diagnostic_context: Callable[[], str] | None = None

    @property
    def now(self) -> float:
        return self._net.now


class _ChipShim:
    """Just enough ``SccChip`` surface for :meth:`FaultInjector.attach`
    and the flag helpers' untimed ``peek``/``tally`` (which only touch
    ``chip.mpbs``)."""

    def __init__(self, net: "AsyncioNetwork") -> None:
        self._net = net
        self.mpbs = net.stores
        self.faults: FaultInjector | None = None
        self.mesh = SimpleNamespace(injector=None)
        self.sim = _SimShim(net)

    def trace(self, source: str, kind: str, **detail: Any) -> None:
        self._net.emit(source, kind, **detail)


class AsyncioNetwork:
    """The world object of the asyncio backend (duck-types ``Comm``).

    Build one per run: ``net = AsyncioNetwork(8, model=UniformDelay(),
    seed=3)``, allocate protocol state against it (``net.flag``,
    ``net.layout``), then ``net.run(program)`` where ``program(cc)`` is
    the same generator the SCC backend runs per core.
    """

    def __init__(
        self,
        nranks: int,
        *,
        model: DelayModel | None = None,
        seed: int = 0,
        plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
        time_limit: float = 10_000_000.0,
    ) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.size = nranks
        self.core_ids = tuple(range(nranks))
        self.layout = MpbLayout(MPB_LINES)
        self.stores = [RankStore(r) for r in range(nranks)]
        self.model = model if model is not None else NoDelay()
        self.model.reset(seed)
        self.seed = seed
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.transport_faults = None
        self.time_limit = time_limit
        self.chip = _ChipShim(self)
        self.faults: FaultInjector | None = None
        if plan is not None:
            injector = FaultInjector(plan)
            injector.attach(self.chip)
            self.faults = injector

        # -- virtual clock ------------------------------------------------
        self.now = 0.0
        self._heap: list[tuple[float, int, asyncio.Future]] = []
        self._seq = itertools.count()
        self._active = 0
        self._pending = 0
        self._blocked: dict[asyncio.Future, tuple[int, str]] = {}
        self._watchers: list[list[asyncio.Future]] = [[] for _ in range(nranks)]
        self._wedged = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ran = False
        self._transports: dict[int, AsyncioTransport] = {}

    # -- Comm surface ------------------------------------------------------

    def flag(self, name: str) -> Flag:
        """Allocate one symmetric flag line (same layout as the SCC)."""
        return Flag(self.layout.alloc_lines(1), name=name)

    def core_of(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside 0..{self.size - 1}")
        return rank

    def rank_of(self, core_id: int) -> int:
        if not 0 <= core_id < self.size:
            raise ValueError(f"core {core_id} is not in this communicator")
        return core_id

    def transport(self, rank: int) -> "AsyncioTransport":
        """The (cached) per-rank endpoint."""
        cc = self._transports.get(rank)
        if cc is None:
            cc = AsyncioTransport(self, self.core_of(rank))
            self._transports[rank] = cc
        return cc

    def emit(self, source: str, kind: str, **detail: Any) -> None:
        self.tracer.emit(self.now, source, kind, **detail)

    # -- virtual clock ------------------------------------------------------

    def _fire(self, fut: asyncio.Future, exc: BaseException | None = None) -> None:
        if fut.done():
            return
        self._pending += 1
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(None)

    async def _block(self, fut: asyncio.Future, rank: int, site: str) -> None:
        if self._wedged and not fut.done():
            raise DeadlockError(
                f"asyncio transport already wedged at t={self.now:.4f}",
                sim_time=self.now,
            )
        self._blocked[fut] = (rank, site)
        self._active -= 1
        self._maybe_advance()
        try:
            await fut
        finally:
            self._blocked.pop(fut, None)
            self._pending -= 1
            self._active += 1

    def _maybe_advance(self) -> None:
        if self._active > 0 or self._pending > 0 or self._wedged:
            return
        capped = False
        while self._heap:
            deadline, _, fut = self._heap[0]
            if fut.done():
                heappop(self._heap)
                continue
            if deadline > self.time_limit:
                capped = True
                break
            heappop(self._heap)
            if deadline > self.now:
                self.now = deadline
            self._fire(fut)
            return
        if not self._blocked:
            return  # everyone finished
        self._wedged = True
        stuck = tuple(
            (f"rank{r}", site or "blocked", self.now)
            for r, site in self._blocked.values()
        )
        names = ", ".join(sorted(f"{n}@{s}" for n, s, _ in stuck))
        cause = (
            f"next event beyond time_limit={self.time_limit:g} us"
            if capped
            else "no pending event"
        )
        suffix = self._timeline_suffix()
        err = DeadlockError(
            f"asyncio transport wedged at t={self.now:.4f}: "
            f"{len(stuck)} rank(s) blocked with {cause} ({names}){suffix}",
            stuck=stuck,
            sim_time=self.now,
        )
        for fut in list(self._blocked):
            self._fire(fut, err)

    async def sleep(self, rank: int, duration: float, site: str = "compute") -> None:
        """Advance this rank by ``duration`` virtual us (0 still yields a
        deterministic scheduling checkpoint through the heap)."""
        assert self._loop is not None
        fut = self._loop.create_future()
        heappush(self._heap, (self.now + max(0.0, duration), next(self._seq), fut))
        await self._block(fut, rank, site)

    async def wait_until(
        self,
        rank: int,
        check: Callable[[], Any],
        *,
        timeout: float | None = None,
        site: str = "",
    ) -> Any:
        """Block ``rank`` until ``check()`` returns non-``None``; the SCC
        wait ordering is preserved: the predicate is evaluated before any
        deadline test, so a wait satisfied exactly at (or entering with
        an exhausted) budget still succeeds."""
        assert self._loop is not None
        val = check()
        if val is not None:
            return val
        deadline = None if timeout is None else self.now + timeout
        while True:
            if deadline is not None and self.now >= deadline:
                self._raise_timeout(rank, site, timeout)
            fut = self._loop.create_future()
            self._watchers[rank].append(fut)
            if deadline is not None:
                heappush(self._heap, (deadline, next(self._seq), fut))
            try:
                await self._block(fut, rank, site)
            finally:
                try:
                    self._watchers[rank].remove(fut)
                except ValueError:
                    pass
            val = check()
            if val is not None:
                return val

    def _wake(self, rank: int) -> None:
        """Fire every watcher of ``rank``'s store (spurious wake-ups only
        cause predicate re-checks, as with the MPB line watchers)."""
        watchers = self._watchers[rank]
        if not watchers:
            return
        self._watchers[rank] = []
        for fut in watchers:
            self._fire(fut)

    def _timeline_suffix(self) -> str:
        if self.faults is None:
            return ""
        text = self.faults.timeline_text()
        return f"\n{text}" if text else ""

    def _raise_timeout(self, rank: int, site: str, timeout: float | None) -> None:
        raise SimTimeoutError(
            f"rank {rank} exhausted its {timeout}-us poll budget waiting on "
            f"{site!r} at t={self.now:.4f}{self._timeline_suffix()}",
            process=f"rank{rank}",
            sim_time=self.now,
            site=site,
        )

    # -- the wire: delayed/filtered store access ---------------------------

    async def _write(
        self, src: int, dst: int, offset: int, payload: bytes, *, op: str, site: str
    ) -> str:
        """One remote store: model delay, then the omission filter (local
        writes always reach the own store), then the fault injector
        inside the store -- the same boundary order as the SCC, where the
        mesh carries the packet and the MPB applies the plan."""
        delay = self.model.delay(src, dst, op=op, nbytes=len(payload))
        if self.faults is not None:
            # The mesh hook: may arm LINK_DOWN windows / add stalls.  The
            # asyncio backend counts one "mpb_access" per remote operation
            # (the SCC mesh counts per line batch), so occurrence-based
            # mpb_access specs are not portable across backends -- the
            # write-fault categories the differential plans use are.
            delay += self.faults.link_stall(src, dst)
        await self.sleep(src, delay, site=site)
        if src != dst and not self.model.deliver(src, dst, now=self.now):
            return "dropped"
        landed = self.stores[dst].write_bytes(offset, payload, source=src, op=op)
        if landed != "dropped":
            self._wake(dst)
        return landed

    async def _read(
        self, src: int, dst: int, offset: int, nbytes: int, *, site: str
    ) -> bytes:
        """A remote read (RMA pull): delayed, never dropped."""
        delay = self.model.delay(src, dst, op="read", nbytes=nbytes)
        if self.faults is not None:
            delay += self.faults.link_stall(src, dst)
        await self.sleep(src, delay, site=site)
        return self.stores[dst].read_bytes(offset, nbytes)

    # -- flags (exact SCC ack/timeout semantics) ---------------------------

    async def flag_write(
        self, rank: int, owner: int, flag: Flag, value: FlagValue
    ) -> str:
        landed = await self._write(
            rank, owner, flag.offset, value.encode(), op="flag",
            site=f"{flag.name}@core{owner}",
        )
        self.emit(
            f"core{rank}", "flag_write", flag=flag.name, owner=owner,
            off=flag.offset, tag=value.tag, seq=value.seq, landed=landed,
        )
        return landed

    async def _backoff_pause(self, rank: int, site: str, delay: float) -> None:
        """One policy-paced pause before a re-send; mirrors the SCC
        backend's ``_backoff_pause`` (same trace kind/fields) so paced
        recovery stays decision-comparable across backends."""
        self.emit(f"core{rank}", "retry_backoff", site=site, delay=delay)
        await self.sleep(rank, delay, site=site)

    def _ack_recovered(
        self, rank: int, kind: str, site: str, note: str, attempts: int, **detail
    ) -> None:
        """Shared trace emission for an acked write that needed
        re-sending (the asyncio twin of ``repro.rcce.flags._ack_recovered``;
        metrics are SCC-side only)."""
        self.emit(f"core{rank}", kind, attempts=attempts, **detail)
        if self.faults is not None:
            self.faults.note_recovery(site, note=note)

    async def flag_write_acked(
        self, rank: int, owner: int, flag: Flag, value: FlagValue,
        *, max_retries: int = 3, policy: "RetryPolicy | None" = None,
    ) -> FlagValue:
        site = f"{flag.name}@core{owner}"
        delays = plan_delays(policy, rank, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                await self._backoff_pause(rank, site, delays[attempt - 1])
            await self.flag_write(rank, owner, flag, value)
            raw = await self._read(rank, owner, flag.offset, CACHE_LINE, site=site)
            got = FlagValue.decode(raw)
            if got.tag == value.tag and got.seq >= value.seq:
                if attempt > 0:
                    self._ack_recovered(
                        rank, "flag_write_retry_ok", site,
                        f"flag re-sent x{attempt}", attempt + 1,
                        flag=flag.name, owner=owner,
                    )
                return got
        raise SimTimeoutError(
            f"rank {rank}: flag write {flag.name!r} to rank {owner} un-acked "
            f"after {len(delays) + 1} attempts at t={self.now:.4f}"
            f"{self._timeline_suffix()}",
            process=f"rank{rank}",
            sim_time=self.now,
            site=site,
        )

    async def wait_flags(
        self,
        rank: int,
        flags: Sequence[Flag],
        predicate: Callable[[Sequence[FlagValue]], bool],
        *,
        timeout: float | None = None,
        site: str = "",
    ) -> list[FlagValue]:
        if not flags:
            return []
        store = self.stores[rank]
        where = site or "+".join(f.name for f in flags)

        def check() -> list[FlagValue] | None:
            vals = [
                FlagValue.decode(store.read_bytes(f.offset, CACHE_LINE))
                for f in flags
            ]
            return vals if predicate(vals) else None

        return await self.wait_until(rank, check, timeout=timeout, site=where)

    # -- sequence-number slot arrays ---------------------------------------

    async def slot_write(
        self, rank: int, owner: int, array: FlagSlotArray, slot: int, value: int
    ) -> str:
        if not 0 <= value <= array.MAX_SEQ:
            raise ValueError(
                f"slot value {value} exceeds 16-bit sequence space; "
                f"reinitialise the communicator for longer runs"
            )
        landed = await self._write(
            rank, owner, array.slot_offset(slot),
            value.to_bytes(array.SLOT_BYTES, "little"), op="flag",
            site=f"{array.name}[{slot}]@core{owner}",
        )
        self.emit(
            f"core{rank}", "slot_write", array=array.name, owner=owner,
            slot=slot, value=value, landed=landed,
        )
        return landed

    async def slot_write_acked(
        self, rank: int, owner: int, array: FlagSlotArray, slot: int, value: int,
        *, max_retries: int = 3, policy: "RetryPolicy | None" = None,
    ) -> None:
        site = f"{array.name}[{slot}]@core{owner}"
        off = array.slot_offset(slot)
        delays = plan_delays(policy, rank, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                await self._backoff_pause(rank, site, delays[attempt - 1])
            await self.slot_write(rank, owner, array, slot, value)
            raw = await self._read(rank, owner, off, array.SLOT_BYTES, site=site)
            if int.from_bytes(raw, "little") >= value:
                if attempt:
                    self._ack_recovered(
                        rank, "slot_write_retry_ok", site,
                        f"slot re-sent x{attempt}", attempt + 1,
                        array=array.name, owner=owner, slot=slot,
                    )
                return
        raise SimTimeoutError(
            f"rank {rank}: slot write {array.name}[{slot}] to rank {owner} "
            f"un-acked after {len(delays) + 1} attempts at t={self.now:.4f}"
            f"{self._timeline_suffix()}",
            process=f"rank{rank}",
            sim_time=self.now,
            site=site,
        )

    async def slot_wait_at_least(
        self, rank: int, array: FlagSlotArray, slot: int, value: int,
        *, timeout: float | None = None,
    ) -> int:
        store = self.stores[rank]
        off = array.slot_offset(slot)

        def check() -> int | None:
            current = int.from_bytes(
                store.read_bytes(off, array.SLOT_BYTES), "little"
            )
            return current if current >= value else None

        return await self.wait_until(
            rank, check, timeout=timeout, site=f"{array.name}[{slot}]"
        )

    async def slot_wait_any_at_least(
        self, rank: int, array: FlagSlotArray, slots: Sequence[int], value: int,
        *, timeout: float, site: str = "",
    ) -> int:
        if not slots:
            raise ValueError("wait_any_at_least needs at least one slot")
        store = self.stores[rank]
        where = site or f"{array.name}[any]"

        def check() -> int | None:
            for s in sorted(slots):
                raw = store.read_bytes(array.slot_offset(s), array.SLOT_BYTES)
                if int.from_bytes(raw, "little") >= value:
                    return s
            return None

        return await self.wait_until(rank, check, timeout=timeout, site=where)

    # -- digest vote slots (RBC) -------------------------------------------

    async def vote_write(
        self, rank: int, owner: int, array: DigestSlotArray, slot: int,
        seq: int, digest: int,
    ) -> str:
        if not 0 <= seq <= array.MAX_SEQ:
            raise ValueError(f"vote seq {seq} exceeds 32-bit sequence space")
        if not 0 <= digest <= 0xFFFFFFFF:
            raise ValueError(f"digest {digest:#x} is not a 32-bit value")
        landed = await self._write(
            rank, owner, array.slot_offset(slot), _VOTE.pack(seq, digest),
            op="flag", site=f"{array.name}[{slot}]@core{owner}",
        )
        self.emit(
            f"core{rank}", "vote_write", array=array.name, owner=owner,
            slot=slot, seq=seq, digest=digest, landed=landed,
        )
        return landed

    async def vote_write_acked(
        self, rank: int, owner: int, array: DigestSlotArray, slot: int,
        seq: int, digest: int, *, max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> None:
        site = f"{array.name}[{slot}]@core{owner}"
        off = array.slot_offset(slot)
        delays = plan_delays(policy, rank, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                await self._backoff_pause(rank, site, delays[attempt - 1])
            await self.vote_write(rank, owner, array, slot, seq, digest)
            raw = await self._read(rank, owner, off, array.SLOT_BYTES, site=site)
            got_seq, got_digest = _VOTE.unpack(raw)
            if got_seq > seq or (got_seq == seq and got_digest == digest):
                if attempt:
                    self._ack_recovered(
                        rank, "vote_write_retry_ok", site,
                        f"vote re-sent x{attempt}", attempt + 1,
                        array=array.name, owner=owner, slot=slot,
                    )
                return
        raise SimTimeoutError(
            f"rank {rank}: vote write {array.name}[{slot}] to rank {owner} "
            f"un-acked after {len(delays) + 1} attempts at t={self.now:.4f}"
            f"{self._timeline_suffix()}",
            process=f"rank{rank}",
            sim_time=self.now,
            site=site,
        )

    async def vote_wait_quorum(
        self, rank: int, array: DigestSlotArray, seq: int, need: int,
        *, timeout: float, site: str = "",
    ) -> int:
        where = site or f"{array.name}.quorum(seq={seq})"

        def check() -> int | None:
            counts = array.tally(self.chip, rank, seq)
            best = None
            for digest, votes in sorted(counts.items()):
                if votes >= need and (best is None or votes > counts[best]):
                    best = digest
            return best

        return await self.wait_until(rank, check, timeout=timeout, site=where)

    # -- running programs ---------------------------------------------------

    def run(self, program: Callable[["AsyncioTransport"], Generator],
            *, return_exceptions: bool = False) -> list:
        """Run ``program(cc)`` (the same generator the SCC backend runs
        per core) on every rank; returns the per-rank return values.

        Single-shot: build a fresh network per run, like a fresh chip.
        """
        if self._ran:
            raise RuntimeError("an AsyncioNetwork runs exactly once")
        self._ran = True

        async def main() -> list:
            self._loop = asyncio.get_running_loop()
            self._active = self.size
            tasks = [
                self._loop.create_task(
                    self._runner(rank, program), name=f"rank{rank}"
                )
                for rank in range(self.size)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        if not return_exceptions:
            for res in results:
                if isinstance(res, BaseException):
                    raise res
        return list(results)

    async def _runner(self, rank: int, program) -> Any:
        try:
            return await self._drive(program(self.transport(rank)))
        finally:
            self._active -= 1
            self._maybe_advance()

    async def _drive(self, gen: Generator) -> Any:
        """Trampoline a protocol generator: every yielded item is an
        awaitable from this network; its result (or exception) is fed
        back into the generator frame, so protocol-level ``try/except``
        around ``yield from`` works exactly as on the SCC."""
        to_send: Any = None
        exc: BaseException | None = None
        while True:
            try:
                if exc is not None:
                    pending, exc = exc, None
                    item = gen.throw(pending)
                else:
                    item = gen.send(to_send)
            except StopIteration as stop:
                return stop.value
            to_send = None
            try:
                to_send = await item
            except Exception as caught:  # noqa: BLE001 - re-thrown into gen
                exc = caught


class AsyncioTransport:
    """Per-rank endpoint over :class:`AsyncioNetwork` (duck-types
    :class:`repro.rcce.comm.CoreComm`).

    Every generator method yields coroutines for the driving trampoline
    to await; protocol code cannot tell the difference from the SCC's
    simulator events.  The two-sided RCCE surface (``send``/``recv`` and
    the non-blocking variants) is SCC-only and raises
    ``NotImplementedError`` here.
    """

    def __init__(self, net: AsyncioNetwork, rank: int) -> None:
        self.comm = net
        self.net = net
        self.rank = rank
        self._mem = PrivateMemory(
            SimpleNamespace(private_mem_bytes=_PRIVATE_MEM_BYTES), rank
        )

    # -- identity / timing --------------------------------------------------

    @property
    def size(self) -> int:
        return self.net.size

    @property
    def core_id(self) -> int:
        return self.rank

    @property
    def now(self) -> float:
        return self.net.now

    @property
    def t_poll(self) -> float:
        return 0.25

    @property
    def tracer_enabled(self) -> bool:
        return self.net.tracer.enabled

    @property
    def has_faults(self) -> bool:
        return self.net.faults is not None

    # -- observability ------------------------------------------------------

    def trace(self, kind: str, **detail: object) -> None:
        tf = self.net.transport_faults
        if tf is not None:
            tf.on_trace(self.rank, kind, detail)
        self.net.emit(f"rank{self.rank}", kind, **detail)

    def metric_inc(self, name: str, n: int = 1) -> None:
        pass

    def metric_set(self, name: str, value: float) -> None:
        pass

    def observe_histogram(self, name: str, bounds, value: float) -> None:
        pass

    # -- fault/adversary hooks ----------------------------------------------

    def adversary_stage(self):
        faults = self.net.faults
        return None if faults is None else faults.adversary_stage(self.rank)

    def quorum_vote(self):
        faults = self.net.faults
        return None if faults is None else faults.quorum_vote(self.rank)

    def note_recovery(self, site: str, note: str = "") -> None:
        if self.net.faults is not None:
            self.net.faults.note_recovery(site, note=note)

    def first_fault_time(self) -> float | None:
        faults = self.net.faults
        if faults is not None and faults.injected:
            return faults.injected[0].time
        return None

    # -- memory / compute ---------------------------------------------------

    def alloc(self, nbytes: int) -> MemRef:
        return self._mem.alloc(nbytes)

    def compute(self, duration: float) -> Generator:
        yield self.net.sleep(self.rank, duration)

    def mem_read(self, ref: MemRef) -> Generator:
        self._own(ref, "mem_read")
        yield self.net.sleep(self.rank, 0.0, site="mem_read")

    def mem_write(self, ref: MemRef) -> Generator:
        self._own(ref, "mem_write")
        yield self.net.sleep(self.rank, 0.0, site="mem_write")

    def local_copy(self, dst: MemRef, src: MemRef, nbytes: int) -> Generator:
        if src.owner != self.rank or dst.owner != self.rank:
            raise ValueError("local_copy operates on this rank's memory only")
        if nbytes < 0 or nbytes > src.nbytes or nbytes > dst.nbytes:
            raise ValueError(f"bad local_copy length {nbytes}")
        if nbytes == 0:
            return
        yield from self.mem_read(src.sub(0, nbytes))
        yield from self.mem_write(dst.sub(0, nbytes))
        dst.sub(0, nbytes).write(src.sub(0, nbytes).read())

    def read_local(self, offset: int, nbytes: int) -> bytes:
        return self.net.stores[self.rank].read_bytes(offset, nbytes)

    def mpb_charge_local(self, lines: int, *, write: bool = False) -> Generator:
        yield self.net.sleep(self.rank, 0.0, site="mpb_local")

    def _own(self, ref: MemRef, what: str) -> None:
        if ref.owner != self.rank:
            raise ValueError(f"{what} operates on this rank's memory only")

    # -- one-sided RMA ------------------------------------------------------

    def _payload_of(self, src: "MemRef | int", nbytes: int) -> bytes:
        """Source bytes for a put: a private-memory buffer (must be this
        rank's) or an offset into this rank's own store (store-to-store
        forwarding, as in the one-sided ring)."""
        if isinstance(src, MemRef):
            self._own(src, "put")
            if nbytes > src.nbytes:
                raise ValueError(f"put of {nbytes} bytes from {src.nbytes}-byte buffer")
            return src.sub(0, nbytes).read()
        return self.net.stores[self.rank].read_bytes(src, nbytes)

    def put(
        self, dst_rank: int, dst_offset: int, src: "MemRef | int", nbytes: int
    ) -> Generator:
        dst = self.net.core_of(dst_rank)
        payload = self._payload_of(src, nbytes)
        landed = yield self.net._write(
            self.rank, dst, dst_offset, payload, op="data",
            site=f"mpb{dst}@{dst_offset}",
        )
        self.net.emit(
            f"core{self.rank}", "put", dst=dst, off=dst_offset, n=nbytes,
            landed=landed,
        )

    def get(
        self, src_rank: int, src_offset: int, dst: "MemRef | int", nbytes: int
    ) -> Generator:
        src = self.net.core_of(src_rank)
        payload = yield self.net._read(
            self.rank, src, src_offset, nbytes, site=f"mpb{src}@{src_offset}"
        )
        if isinstance(dst, MemRef):
            self._own(dst, "get")
            if nbytes > dst.nbytes:
                raise ValueError(f"get of {nbytes} bytes into {dst.nbytes}-byte buffer")
            dst.sub(0, nbytes).write(payload)
            landed = "ok"
        else:
            # Deposit into the own store: a protocol write, hence faultable
            # exactly like the SCC's own-MPB deposit path.
            landed = self.net.stores[self.rank].write_bytes(
                dst, payload, source=self.rank, op="data"
            )
            if landed != "dropped":
                self.net._wake(self.rank)
        self.net.emit(
            f"core{self.rank}", "get", src=src, off=src_offset, n=nbytes,
            landed=landed,
        )

    def put_acked(
        self, dst_rank: int, dst_offset: int, src: "MemRef | int", nbytes: int,
        *, max_retries: int = 3, policy: "RetryPolicy | None" = None,
    ) -> Generator:
        dst = self.net.core_of(dst_rank)
        site = f"mpb{dst}@{dst_offset}"
        payload = self._payload_of(src, nbytes)
        delays = plan_delays(policy, self.rank, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                yield self.net._backoff_pause(self.rank, site, delays[attempt - 1])
            yield from self.put(dst_rank, dst_offset, src, nbytes)
            got = yield self.net._read(self.rank, dst, dst_offset, nbytes, site=site)
            if got == payload:
                if attempt:
                    self.net._ack_recovered(
                        self.rank, "put_retry_ok", site,
                        f"{nbytes}B re-sent x{attempt}", attempt + 1,
                        dst=dst, off=dst_offset,
                    )
                return
        raise SimTimeoutError(
            f"rank {self.rank}: put of {nbytes} bytes to rank {dst} un-acked "
            f"after {len(delays) + 1} attempts at t={self.now:.4f}"
            f"{self.net._timeline_suffix()}",
            process=f"rank{self.rank}",
            sim_time=self.now,
            site=site,
        )

    def get_acked(
        self, src_rank: int, src_offset: int, dst: "MemRef | int", nbytes: int,
        *, max_retries: int = 3, policy: "RetryPolicy | None" = None,
    ) -> Generator:
        src = self.net.core_of(src_rank)
        site = f"mpb{src}@{src_offset}"
        delays = plan_delays(policy, self.rank, site, max_retries)
        for attempt in range(len(delays) + 1):
            if attempt and delays[attempt - 1] > 0.0:
                yield self.net._backoff_pause(self.rank, site, delays[attempt - 1])
            yield from self.get(src_rank, src_offset, dst, nbytes)
            want = yield self.net._read(self.rank, src, src_offset, nbytes, site=site)
            if isinstance(dst, MemRef):
                have = dst.sub(0, nbytes).read()
            else:
                have = self.net.stores[self.rank].read_bytes(dst, nbytes)
            if have == want:
                if attempt:
                    self.net._ack_recovered(
                        self.rank, "get_retry_ok", site,
                        f"{nbytes}B re-fetched x{attempt}", attempt + 1,
                        src=src, off=src_offset,
                    )
                return
        raise SimTimeoutError(
            f"rank {self.rank}: get of {nbytes} bytes from rank {src} "
            f"unverified after {len(delays) + 1} attempts at t={self.now:.4f}"
            f"{self.net._timeline_suffix()}",
            process=f"rank{self.rank}",
            sim_time=self.now,
            site=site,
        )

    def put_bytes(
        self, dst_rank: int, dst_offset: int, payload: bytes
    ) -> Generator[object, object, str]:
        if not payload:
            return "ok"
        dst = self.net.core_of(dst_rank)
        landed = yield self.net._write(
            self.rank, dst, dst_offset, bytes(payload), op="data",
            site=f"mpb{dst}@{dst_offset}",
        )
        self.net.emit(
            f"core{self.rank}", "put_bytes", dst=dst, off=dst_offset,
            n=len(payload), landed=landed,
        )
        return landed

    def get_bytes(
        self, src_rank: int, src_offset: int, nbytes: int
    ) -> Generator[object, object, bytes]:
        if nbytes <= 0:
            raise ValueError("get_bytes needs nbytes > 0")
        src = self.net.core_of(src_rank)
        payload = yield self.net._read(
            self.rank, src, src_offset, nbytes, site=f"mpb{src}@{src_offset}"
        )
        return payload

    # -- flags --------------------------------------------------------------

    def flag_set(self, owner_rank: int, flag: Flag, value: FlagValue) -> Generator:
        yield self.net.flag_write(self.rank, self.net.core_of(owner_rank), flag, value)

    def flag_set_acked(
        self, owner_rank: int, flag: Flag, value: FlagValue,
        *, max_retries: int = 3, policy: "RetryPolicy | None" = None,
    ) -> Generator[object, object, FlagValue]:
        got = yield self.net.flag_write_acked(
            self.rank, self.net.core_of(owner_rank), flag, value,
            max_retries=max_retries, policy=policy,
        )
        return got

    def flag_poll(self, flag: Flag) -> Generator[object, object, FlagValue]:
        yield self.net.sleep(self.rank, self.t_poll, site=flag.name)
        raw = self.net.stores[self.rank].read_bytes(flag.offset, CACHE_LINE)
        return FlagValue.decode(raw)

    def flag_peek(self, flag: Flag) -> FlagValue:
        return flag.peek(self.net.chip, self.rank)

    def wait_flags(
        self,
        flags: Sequence[Flag],
        predicate: Callable[[Sequence[FlagValue]], bool],
        *,
        sweep_flags: int | None = None,
        timeout: float | None = None,
        site: str = "",
    ) -> Generator[object, object, list[FlagValue]]:
        # sweep_flags shapes only the SCC's detection-delay charge.
        vals = yield self.net.wait_flags(
            self.rank, flags, predicate, timeout=timeout, site=site
        )
        return vals

    def wait_flag_equals(self, flag: Flag, value: FlagValue) -> Generator:
        yield from self.wait_flags([flag], lambda v: v[0] == value)

    def wait_flag_at_least(self, flag: Flag, tag: int, seq: int) -> Generator:
        yield from self.wait_flags(
            [flag], lambda v: v[0].tag == tag and v[0].seq >= seq
        )

    # -- slot arrays ---------------------------------------------------------

    def slot_write(
        self, array: FlagSlotArray, owner_rank: int, slot: int, value: int
    ) -> Generator:
        yield self.net.slot_write(
            self.rank, self.net.core_of(owner_rank), array, slot, value
        )

    def slot_write_acked(
        self, array: FlagSlotArray, owner_rank: int, slot: int, value: int,
        *, max_retries: int = 3, policy: "RetryPolicy | None" = None,
    ) -> Generator:
        yield self.net.slot_write_acked(
            self.rank, self.net.core_of(owner_rank), array, slot, value,
            max_retries=max_retries, policy=policy,
        )

    def slot_peek(self, array: FlagSlotArray, slot: int) -> int:
        return array.peek(self.net.chip, self.rank, slot)

    def slot_wait_at_least(
        self, array: FlagSlotArray, slot: int, value: int,
        *, timeout: float | None = None,
    ) -> Generator[object, object, int]:
        got = yield self.net.slot_wait_at_least(
            self.rank, array, slot, value, timeout=timeout
        )
        return got

    def slot_wait_any_at_least(
        self, array: FlagSlotArray, slots: Sequence[int], value: int,
        *, timeout: float, site: str = "",
    ) -> Generator[object, object, int]:
        got = yield self.net.slot_wait_any_at_least(
            self.rank, array, slots, value, timeout=timeout, site=site
        )
        return got

    # -- digest vote slots ----------------------------------------------------

    def vote_write(
        self, array: DigestSlotArray, owner_rank: int, slot: int, seq: int,
        digest: int,
    ) -> Generator:
        yield self.net.vote_write(
            self.rank, self.net.core_of(owner_rank), array, slot, seq, digest
        )

    def vote_write_acked(
        self, array: DigestSlotArray, owner_rank: int, slot: int, seq: int,
        digest: int, *, max_retries: int = 3,
        policy: "RetryPolicy | None" = None,
    ) -> Generator:
        yield self.net.vote_write_acked(
            self.rank, self.net.core_of(owner_rank), array, slot, seq, digest,
            max_retries=max_retries, policy=policy,
        )

    def vote_peek(self, array: DigestSlotArray, slot: int) -> tuple[int, int]:
        return array.peek(self.net.chip, self.rank, slot)

    def vote_wait_quorum(
        self, array: DigestSlotArray, seq: int, need: int,
        *, timeout: float, site: str = "",
    ) -> Generator[object, object, int]:
        got = yield self.net.vote_wait_quorum(
            self.rank, array, seq, need, timeout=timeout, site=site
        )
        return got

    # -- two-sided (SCC-only) --------------------------------------------------

    def send(self, dst_rank: int, src: MemRef, nbytes: int) -> Generator:
        raise NotImplementedError("two-sided send/recv is SCC-backend-only")

    def recv(self, src_rank: int, dst: MemRef, nbytes: int) -> Generator:
        raise NotImplementedError("two-sided send/recv is SCC-backend-only")

    def isend(self, dst_rank: int, src: MemRef, nbytes: int):
        raise NotImplementedError("non-blocking send is SCC-backend-only")

    def irecv(self, src_rank: int, dst: MemRef, nbytes: int):
        raise NotImplementedError("non-blocking recv is SCC-backend-only")

    def wait_all(self, requests) -> Generator:
        raise NotImplementedError("non-blocking progress is SCC-backend-only")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AsyncioTransport rank={self.rank}>"
