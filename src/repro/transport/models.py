"""Seeded delay/omission models for the asyncio transport backend.

The SCC backend derives every latency from the chip's calibrated LogP
constants; the asyncio backend has no hardware to imitate, so its timing
comes from a pluggable :class:`DelayModel` (shape borrowed from
reliability-style network simulators: a per-link delay distribution plus
an optional omission filter).

Determinism contract
--------------------
``reset(seed)`` rebuilds the model's RNG state; after a reset the model
replays the identical delay/delivery sequence for the identical call
sequence.  Every ``(src, dst)`` link owns an *independent* stream
(``random.Random(seed * 1_000_003 + src * 1009 + dst)``), so draws on
one link never perturb another link's sequence -- the property the
differential harness leans on when two backends interleave operations
differently.

All times are virtual microseconds, matching the SCC simulator.
"""

from __future__ import annotations

import random


class DelayModel:
    """Base model: zero delay, every write delivered.

    Subclasses override :meth:`delay` (per-operation latency) and/or
    :meth:`deliver` (omission filter for *remote writes*; reads are
    RMA pulls by the caller and are never dropped, matching the SCC
    substrate where only the unacknowledged store can be lost).
    """

    name = "none"

    def __init__(self) -> None:
        self._seed = 0
        self._streams: dict[tuple[int, int], random.Random] = {}

    def reset(self, seed: int) -> None:
        """Restore the model to a reproducible state for ``seed``."""
        self._seed = int(seed)
        self._streams = {}

    def link_rng(self, src: int, dst: int) -> random.Random:
        """The (lazily created) independent RNG stream of one link."""
        key = (src, dst)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(self._seed * 1_000_003 + src * 1009 + dst)
            self._streams[key] = rng
        return rng

    def delay(self, src: int, dst: int, *, op: str, nbytes: int) -> float:
        """Latency (us) of one operation from ``src`` against ``dst``'s
        store.  ``op`` is ``"flag"``/``"data"``/``"read"``."""
        return 0.0

    def deliver(self, src: int, dst: int, *, now: float) -> bool:
        """Whether a remote write from ``src`` to ``dst`` lands (local
        writes, ``src == dst``, bypass this -- a rank always reaches its
        own store)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} seed={self._seed}>"


class NoDelay(DelayModel):
    """Everything instantaneous and reliable (the scheduling-order-only
    baseline)."""

    name = "nodelay"


class UniformDelay(DelayModel):
    """Per-operation latency drawn uniformly from ``[lo, hi]`` us."""

    name = "uniform"

    def __init__(self, lo: float = 0.05, hi: float = 5.0) -> None:
        super().__init__()
        if lo < 0 or hi < lo:
            raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)

    def delay(self, src: int, dst: int, *, op: str, nbytes: int) -> float:
        return self.link_rng(src, dst).uniform(self.lo, self.hi)


class LinkDrop(DelayModel):
    """Drop each remote write independently with probability ``p``;
    optional uniform delay on everything else."""

    name = "linkdrop"

    def __init__(self, p: float, lo: float = 0.0, hi: float = 0.0) -> None:
        super().__init__()
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {p}")
        if lo < 0 or hi < lo:
            raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi}]")
        self.p = float(p)
        self.lo = float(lo)
        self.hi = float(hi)

    def delay(self, src: int, dst: int, *, op: str, nbytes: int) -> float:
        if self.hi == 0.0:
            return 0.0
        return self.link_rng(src, dst).uniform(self.lo, self.hi)

    def deliver(self, src: int, dst: int, *, now: float) -> bool:
        # p == 1.0 / 0.0 short-circuit without consuming randomness, so
        # the all-drop and no-drop edges stay stream-neutral.
        if self.p >= 1.0:
            return False
        if self.p <= 0.0:
            return True
        return self.link_rng(src, dst).random() >= self.p


class Partition(DelayModel):
    """A network partition that heals at a fixed virtual time.

    ``groups`` lists the rank sets that can reach each other while the
    partition holds (``now < heal_at``); cross-group remote writes are
    dropped.  Ranks not named in any group are unrestricted.  Healing is
    purely a function of virtual time, hence deterministic.
    """

    name = "partition"

    def __init__(self, groups, heal_at: float) -> None:
        super().__init__()
        if heal_at < 0:
            raise ValueError("heal_at must be >= 0")
        self.heal_at = float(heal_at)
        self._group_of: dict[int, int] = {}
        for gid, members in enumerate(groups):
            for rank in members:
                if rank in self._group_of:
                    raise ValueError(f"rank {rank} appears in two groups")
                self._group_of[rank] = gid

    def deliver(self, src: int, dst: int, *, now: float) -> bool:
        if now >= self.heal_at:
            return True
        gs = self._group_of.get(src)
        gd = self._group_of.get(dst)
        if gs is None or gd is None:
            return True
        return gs == gd
