"""The transport contract the protocol layer is written against.

Every protocol in this repo (OC-Bcast, the membership/election/RBC
services, the OC collectives) is a generator coroutine that talks to one
object: a *per-rank transport endpoint*.  On the SCC backend that object
is :class:`repro.rcce.comm.CoreComm`; on the asyncio backend it is
:class:`repro.transport.asyncio_backend.AsyncioTransport`.  Neither
inherits from the other -- the contract is structural (duck-typed), and
:class:`Transport` below documents it so a third backend knows exactly
what to provide.

A transport method is invoked as ``yield from cc.method(...)``; what the
generator yields underneath is backend-private (simulator events on the
SCC, awaitables on asyncio).  Protocol code must never assume anything
about the yielded items, only about arguments, return values and raised
exceptions (:class:`~repro.sim.errors.TimeoutError` carrying ``site``,
:class:`~repro.sim.errors.FaultInjected`, ``ValueError`` on misuse).
"""

from __future__ import annotations

from typing import Any, Generator, Protocol, Sequence, runtime_checkable

from ..sim.errors import FaultInjected


@runtime_checkable
class Transport(Protocol):
    """Structural interface of a per-rank transport endpoint.

    Attributes: ``rank``, ``size``, ``core_id``, ``now`` (virtual us),
    ``comm`` (the world object: ``flag(name)``, ``layout``, ``core_ids``,
    ``transport_faults``), ``tracer_enabled``, ``has_faults``.

    Groups of generator methods (all driven with ``yield from``):

    - local memory/compute: ``alloc``, ``compute``, ``mem_read``,
      ``mem_write``, ``local_copy``, ``read_local``, ``mpb_charge_local``
    - one-sided RMA: ``put``, ``get``, ``put_acked``, ``get_acked``,
      ``put_bytes``, ``get_bytes``
    - flags: ``flag_set``, ``flag_set_acked``, ``flag_poll``,
      ``flag_peek``, ``wait_flags``, ``wait_flag_equals``,
      ``wait_flag_at_least``
    - sequence-number slot arrays: ``slot_write``, ``slot_write_acked``,
      ``slot_peek``, ``slot_wait_at_least``, ``slot_wait_any_at_least``
    - digest vote arrays: ``vote_write``, ``vote_write_acked``,
      ``vote_peek``, ``vote_wait_quorum``
    - instrumentation/fault hooks: ``trace``, ``metric_inc``,
      ``metric_set``, ``observe_histogram``, ``note_recovery``,
      ``first_fault_time``, ``adversary_stage``, ``quorum_vote``

    Timing may differ arbitrarily between backends; *decisions* (the
    trace kinds listed in :mod:`repro.transport.decisions`) must not.
    """

    rank: int
    size: int

    def trace(self, kind: str, **detail: Any) -> None: ...

    def compute(self, duration: float) -> Generator: ...

    def wait_flags(
        self, flags: Sequence[Any], predicate: Any, **kw: Any
    ) -> Generator: ...


class CrashOnEvent:
    """Backend-agnostic crash coordinate: kill ``rank`` at its ``nth``
    emission of trace kind ``kind``.

    Installed as ``comm.transport_faults`` (SCC) or
    ``net.transport_faults`` (asyncio); both backends consult it from
    ``trace()`` *before* the record is emitted, so the crashing rank's
    streams are identical on both -- the event that kills it never
    appears.  The raised :class:`FaultInjected` unwinds the rank's
    program generator; scenario programs catch it and report
    ``"crashed"``.

    Naming an event instead of an operation count makes the coordinate
    portable: operation interleavings differ across backends, a rank's
    own trace stream (program order) does not.
    """

    def __init__(self, rank: int, kind: str, *, nth: int = 1) -> None:
        if nth < 1:
            raise ValueError("nth must be >= 1")
        self.rank = rank
        self.kind = kind
        self.nth = nth
        self.seen = 0
        self.fired = False

    def on_trace(self, rank: int, kind: str, detail: dict) -> None:
        if self.fired or rank != self.rank or kind != self.kind:
            return
        self.seen += 1
        if self.seen >= self.nth:
            self.fired = True
            site = f"rank{self.rank}@{self.kind}#{self.nth}"
            raise FaultInjected(
                f"rank {self.rank} crashed at its {self.nth}th "
                f"{self.kind!r} event",
                kind="core_crash",
                site=site,
            )
