"""Decision-trace extraction for differential testing.

Two backends running the same protocol with the same seed agree on
*decisions* -- what each rank committed, suspected, elected, voted and
returned -- while disagreeing on every latency and on how the per-rank
event streams interleave globally.  This module canonicalises a trace
into exactly the decision content:

- keep only the *decision kinds* below (protocol outcomes and state
  transitions), dropping span markers, wait bookkeeping, retry noise and
  core-level wire records whose counts are timing-dependent;
- keep only per-rank **program order**: records are grouped by their
  ``rank{r}`` source and concatenated in rank order, because the global
  interleaving is a timing artifact;
- strip timestamps: a canonical line is ``source<TAB>kind<TAB>detail``
  with the detail dict rendered in sorted-key order.

``decision_digest`` hashes the result, giving each (scenario, seed) a
single comparable fingerprint per backend.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..sim.trace import TraceRecord

#: Trace kinds that constitute protocol decisions.  Excluded on purpose:
#: ``oc.chunk.begin``/``end`` and ``oc.wait.*`` (span/wait bookkeeping),
#: ``oc.chunk_done`` (completion timing), ``oc.ft.renotify`` and
#: ``oc.integrity.*`` (retry noise -- masked recoveries must NOT change
#: the decision stream), ``member.install_unreachable`` /
#: ``member.claim_unreachable`` (delivery-timing observations), and all
#: core-level wire records (``flag_write``, ``put``, ...), whose counts
#: differ with backend timing.
DECISION_KINDS = frozenset(
    {
        # OC-Bcast data path
        "oc.chunk_staged",
        "oc.fetch",
        "oc.svc.commit",
        "oc.svc.commit_unknown",
        "oc.ft.child_dead",
        "oc.adv.equivocate",
        # broadcast service (coordination outcomes)
        "svc.attempt",
        "svc.attempt_failed",
        "svc.outcome",
        "svc.completion",
        "svc.step_down",
        "svc.self_evict",
        "svc.report_failed",
        "svc.refused",
        # membership
        "member.hb",
        "member.suspect",
        "member.view_install",
        "member.view_adopt",
        # election
        "member.elect.begin",
        "member.elect.won",
        "member.elect.follow",
        "member.elect.yield",
        "member.claim",
        # Byzantine reliable broadcast
        "rbc.echo",
        "rbc.amplify",
        "rbc.outcome",
        "rbc.no_quorum",
        "rbc.refetch",
        "rbc.refetch_failed",
    }
)


def decision_streams(
    records: Iterable[TraceRecord],
) -> dict[str, list[TraceRecord]]:
    """Per-rank decision records in program order, keyed by source
    (``rank0``, ``rank1``, ...)."""
    streams: dict[str, list[TraceRecord]] = {}
    for rec in records:
        if rec.kind in DECISION_KINDS and rec.source.startswith("rank"):
            streams.setdefault(rec.source, []).append(rec)
    return streams


def _rank_index(source: str) -> int:
    try:
        return int(source[4:])
    except ValueError:  # pragma: no cover - non-rank sources are filtered
        return -1


def canonical_decisions(records: Iterable[TraceRecord]) -> str:
    """The time-free canonical decision text of one run."""
    streams = decision_streams(records)
    lines: list[str] = []
    for source in sorted(streams, key=_rank_index):
        for rec in streams[source]:
            detail = ",".join(
                f"{k}={v!r}" for k, v in sorted(rec.detail.items())
            )
            lines.append(f"{source}\t{rec.kind}\t{detail}")
    return "\n".join(lines) + "\n"


def decision_digest(records: Iterable[TraceRecord]) -> str:
    """sha256 fingerprint of the canonical decision text."""
    return hashlib.sha256(canonical_decisions(records).encode()).hexdigest()
