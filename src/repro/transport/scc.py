"""The SCC chip-model backend, under its transport name.

The chip simulator *is* the reference transport: :class:`Comm` is the
world object and :class:`CoreComm` the per-rank endpoint, exactly as
they were before the transport extraction -- re-exported here so code
written against the transport layer can name both backends symmetrically
(``transport.scc.SccTransport`` vs
``transport.asyncio_backend.AsyncioTransport``).  Default SCC paths are
bit-identical to the pre-refactor tree; the golden trace digests pin
this.
"""

from __future__ import annotations

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..rcce.comm import Comm as SccNetwork, CoreComm as SccTransport
from ..scc.chip import SccChip, run_spmd
from ..scc.config import SccConfig
from ..sim.trace import Tracer

__all__ = [
    "SccNetwork",
    "SccTransport",
    "make_scc_world",
    "run_spmd",
]


def make_scc_world(
    nranks: int,
    *,
    mesh: tuple[int, int] | None = None,
    plan: FaultPlan | None = None,
    tracer_enabled: bool = True,
    watchdog: float | None = 100_000.0,
) -> tuple[SccChip, SccNetwork]:
    """Convenience builder mirroring ``AsyncioNetwork(...)``: a chip of
    ``nranks`` cores (``mesh`` as (cols, rows); inferred for square-ish
    meshes when omitted) with an attached injector and tracer."""
    if mesh is None:
        cols = 1
        while 2 * cols * cols < nranks:
            cols += 1
        rows = -(-nranks // (2 * cols))
        mesh = (cols, rows)
    cols, rows = mesh
    config = SccConfig(mesh_cols=cols, mesh_rows=rows)
    if config.num_cores != nranks:
        raise ValueError(
            f"mesh {mesh} gives {config.num_cores} cores, wanted {nranks}"
        )
    chip = SccChip(
        config,
        tracer=Tracer(enabled=tracer_enabled),
        faults=FaultInjector(plan) if plan is not None else None,
    )
    if watchdog is not None:
        chip.sim.start_watchdog(watchdog)
    return chip, SccNetwork(chip)
