"""Pluggable transport layer.

The protocol stack (OC-Bcast, membership, election, RBC, the OC
collectives) is written against a narrow per-rank transport surface
(:mod:`repro.transport.api`).  Two backends provide it:

- the **SCC backend** (:mod:`repro.transport.scc`): the chip simulator
  with its calibrated timing model -- the reference; default paths are
  bit-identical to the pre-extraction tree;
- the **asyncio backend** (:mod:`repro.transport.asyncio_backend`): an
  event-loop execution with seeded pluggable delay/omission models
  (:mod:`repro.transport.models`) and no chip model at all.

Same seed, two backends, same decisions -- that is the invariant the
differential harness (``tests/differential/``) checks, using the
canonical decision traces of :mod:`repro.transport.decisions` over the
shared scenarios of :mod:`repro.transport.scenarios`.
"""

from .api import CrashOnEvent, Transport
from .asyncio_backend import AsyncioNetwork, AsyncioTransport, RankStore
from .decisions import (
    DECISION_KINDS,
    canonical_decisions,
    decision_digest,
    decision_streams,
)
from .models import DelayModel, LinkDrop, NoDelay, Partition, UniformDelay
from .scc import SccNetwork, SccTransport, make_scc_world

__all__ = [
    "AsyncioNetwork",
    "AsyncioTransport",
    "CrashOnEvent",
    "DECISION_KINDS",
    "DelayModel",
    "LinkDrop",
    "NoDelay",
    "Partition",
    "RankStore",
    "SccNetwork",
    "SccTransport",
    "Transport",
    "UniformDelay",
    "canonical_decisions",
    "decision_digest",
    "decision_streams",
    "make_scc_world",
]
