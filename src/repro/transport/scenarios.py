"""Shared differential scenarios: one protocol program, two backends.

Each scenario is a seeded, deterministic run of the fault-tolerant
broadcast service -- the *same* generator program handed to the SCC
simulator (``run_spmd`` over a chip) and to the asyncio backend
(``AsyncioNetwork.run``).  The differential harness replays a scenario
with the same seed on both backends and asserts that the canonical
decision traces (:mod:`repro.transport.decisions`) are identical while
latencies diverge freely.

Scenario determinism rests on margins, not luck: the delay models used
here draw latencies of at most a few microseconds per operation, two
orders of magnitude under the smallest protocol budget (the 300-us
doneFlag timeout), so no timeout can fire on one backend and not the
other.  Fault coordinates are occurrence-based (the injector's nth
matching write into one destination store, or a
:class:`~repro.transport.api.CrashOnEvent` trace coordinate), which are
functions of per-rank program order, not of global timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Generator

from ..faults.injector import FaultInjector
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..member.heartbeat import MembershipConfig
from ..member.service import DEFAULT_SERVICE_OC, OcBcastService
from ..rcce.comm import Comm
from ..resilience import DetectorConfig, RetryPolicy
from ..scc.chip import SccChip, run_spmd
from ..scc.config import CACHE_LINE, SccConfig
from ..sim.errors import FaultInjected
from ..sim.trace import TraceRecord, Tracer
from .api import CrashOnEvent
from .asyncio_backend import AsyncioNetwork
from .decisions import canonical_decisions, decision_digest
from .models import DelayModel, UniformDelay

CHUNK_BYTES = 96 * CACHE_LINE  # the service's default chunk


@dataclass(frozen=True)
class Scenario:
    """One differential scenario (backend-agnostic description)."""

    name: str
    nranks: int
    mesh: tuple[int, int]  # (cols, rows); cores = 2 * cols * rows
    chunks: int
    byz: bool = False
    #: Injector plan riding the transport's write hooks (both backends).
    plan_specs: tuple[FaultSpec, ...] = ()
    #: (rank, trace kind, nth) for a CrashOnEvent, or None.
    crash: tuple[int, str, int] | None = None
    #: Run the service with the adaptive resilience configuration:
    #: seeded-backoff :class:`repro.resilience.RetryPolicy` pacing on the
    #: heartbeat / view / FT write paths and phi-accrual suspicion.  The
    #: policy's virtual-time pauses are a pure function of (rank, site,
    #: seed), so the schedule is identical on both backends; phi history
    #: differs freely (``resilience.*`` kinds are not decision records).
    adaptive: bool = False

    @property
    def nbytes(self) -> int:
        return self.chunks * CHUNK_BYTES

    def plan(self) -> FaultPlan | None:
        if not self.plan_specs:
            return None
        return FaultPlan(self.plan_specs, label=self.name, num_cores=self.nranks)

    def crash_hook(self) -> CrashOnEvent | None:
        if self.crash is None:
            return None
        rank, kind, nth = self.crash
        return CrashOnEvent(rank, kind, nth=nth)


SCENARIOS: dict[str, Scenario] = {
    # Plain FT broadcast, fault-free: the decision baseline.
    "ft_broadcast": Scenario(
        name="ft_broadcast", nranks=8, mesh=(2, 2), chunks=2
    ),
    # The source crashes at its first chunk staging; survivors time out,
    # report, elect rank 1, find no chunk holders and abort.
    "root_crash_election": Scenario(
        name="root_crash_election", nranks=8, mesh=(2, 2), chunks=1,
        crash=(0, "oc.chunk.begin", 1),
    ),
    # Byzantine quorum: core 5 lies in its first vote round; 11 honest
    # echoes still clear the quorum of 8, everyone commits.
    "byz_quorum": Scenario(
        name="byz_quorum", nranks=12, mesh=(3, 2), chunks=1, byz=True,
        plan_specs=(FaultSpec(FaultKind.LIE_IN_QUORUM, core=5, nth=1),),
    ),
    # A dropped doneFlag-path write into rank 3's store, masked by the
    # acked re-send: decisions must equal the fault-free run.
    "drop_flag": Scenario(
        name="drop_flag", nranks=8, mesh=(2, 2), chunks=1,
        plan_specs=(FaultSpec(FaultKind.DROP_FLAG_WRITE, core=3, nth=1),),
    ),
    # A sustained regime under the adaptive configuration: rank 3's MPB
    # port flaps on a 300-us duty cycle from its first access.  Down
    # phases (45 us) swallow protocol writes silently; the seeded backoff
    # schedule straddles them on both backends, so every acked write
    # lands well inside its protocol deadline and the decision stream
    # equals the fault-free run's.  The flap anchor is nth=1 -- the only
    # ``mpb_access`` occurrence number portable across backends (the SCC
    # mesh counts line batches, asyncio counts operations).  Three chunks
    # (vs ft_broadcast's two) so the pinned digest is its own stream, not
    # an alias of the fault-free baseline's.
    "flapping_link": Scenario(
        name="flapping_link", nranks=8, mesh=(2, 2), chunks=3,
        adaptive=True,
        plan_specs=(FaultSpec(
            FaultKind.FLAPPING_LINK, core=3, nth=1,
            duration=900.0, period=300.0, duty=0.15,
        ),),
    ),
}

#: The scenarios whose decision digests are pinned as goldens and swept
#: across seeds by the equivalence suite (drop_flag is exercised by the
#: fault-parity tests instead).
DIFFERENTIAL_NAMES = (
    "ft_broadcast", "root_crash_election", "byz_quorum", "flapping_link",
)

#: The adaptive scenarios' retry pacing: total worst-case pause ~1.9 ms,
#: far under the 6 ms heartbeat deadline, with single pauses capped well
#: under the 2.5 ms commit-notify wait.  Seeded independently of the
#: payload seed so sweeping scenario seeds never reshuffles the pacing.
_ADAPTIVE_POLICY = RetryPolicy.backoff(
    max_retries=6, base=40.0, factor=2.0, cap=600.0, jitter=0.1, seed=20,
)


def _service_for(transport, sc: Scenario) -> OcBcastService:
    """The scenario's service, identical on both backends."""
    oc_config = replace(DEFAULT_SERVICE_OC, byz=True) if sc.byz \
        else DEFAULT_SERVICE_OC
    member_config = None
    if sc.adaptive:
        oc_config = replace(oc_config, ft_retry=_ADAPTIVE_POLICY)
        member_config = MembershipConfig(
            hb_retry=_ADAPTIVE_POLICY,
            view_retry=_ADAPTIVE_POLICY,
            detector=DetectorConfig(
                threshold=8.0, window=32, min_std=50.0,
                min_samples=4, floor=4_000.0,
            ),
        )
    return OcBcastService(
        transport, oc_config=oc_config, member_config=member_config
    )


def payload_for(scenario: Scenario, seed: int) -> bytes:
    """The seeded broadcast payload (identical on both backends)."""
    return random.Random(seed * 9176 + 11).randbytes(scenario.nbytes)


def _program(
    svc: OcBcastService, payload: bytes, nbytes: int
) -> Callable[[object], Generator]:
    """The per-rank protocol program, shared verbatim by both backends:
    it sees only the transport surface."""

    def body(cc) -> Generator:
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(payload)
        try:
            status = yield from svc.bcast(cc, buf, nbytes)
        except FaultInjected:
            return "crashed"
        return status

    return body


@dataclass
class RunResult:
    """One backend execution of one scenario."""

    backend: str
    records: list[TraceRecord]
    outcomes: tuple
    faults: FaultInjector | None

    @property
    def decisions(self) -> str:
        return canonical_decisions(self.records)

    @property
    def digest(self) -> str:
        return decision_digest(self.records)


def run_scc(
    scenario: Scenario | str, seed: int, *, with_plan: bool = True
) -> RunResult:
    """Run the scenario on the SCC chip-model backend."""
    sc = SCENARIOS[scenario] if isinstance(scenario, str) else scenario
    cols, rows = sc.mesh
    config = SccConfig(mesh_cols=cols, mesh_rows=rows)
    if config.num_cores != sc.nranks:
        raise ValueError(f"mesh {sc.mesh} gives {config.num_cores} cores, "
                         f"scenario wants {sc.nranks}")
    plan = sc.plan() if with_plan else None
    chip = SccChip(
        config,
        tracer=Tracer(enabled=True),
        faults=FaultInjector(plan) if plan is not None else None,
    )
    comm = Comm(chip)
    comm.transport_faults = sc.crash_hook()
    svc = _service_for(comm, sc)
    body = _program(svc, payload_for(sc, seed), sc.nbytes)

    def prog(core):
        return body(comm.attach(core))

    chip.sim.start_watchdog(100_000.0)
    result = run_spmd(chip, prog)
    return RunResult("scc", list(chip.tracer.records), result.values, chip.faults)


def run_asyncio(
    scenario: Scenario | str,
    seed: int,
    *,
    model: DelayModel | None = None,
    with_plan: bool = True,
) -> RunResult:
    """Run the scenario on the asyncio event-loop backend.  The default
    model draws per-operation latencies uniformly from [0.05, 5] us --
    nothing like the SCC's calibrated timings, which is the point."""
    sc = SCENARIOS[scenario] if isinstance(scenario, str) else scenario
    net = AsyncioNetwork(
        sc.nranks,
        model=model if model is not None else UniformDelay(0.05, 5.0),
        seed=seed,
        plan=sc.plan() if with_plan else None,
        time_limit=1_000_000.0,
    )
    net.transport_faults = sc.crash_hook()
    svc = _service_for(net, sc)
    body = _program(svc, payload_for(sc, seed), sc.nbytes)
    outcomes = tuple(net.run(body))
    return RunResult("asyncio", list(net.tracer.records), outcomes, net.faults)


def run_backend(
    backend: str, scenario: Scenario | str, seed: int, *, with_plan: bool = True
) -> RunResult:
    if backend == "scc":
        return run_scc(scenario, seed, with_plan=with_plan)
    if backend == "asyncio":
        return run_asyncio(scenario, seed, with_plan=with_plan)
    raise ValueError(f"unknown backend {backend!r}")


@lru_cache(maxsize=None)
def cached_decisions(
    backend: str, name: str, seed: int, with_plan: bool = True
) -> tuple[str, str, tuple, int, int]:
    """Memoised (decision text, digest, outcomes, n_injected,
    n_recoveries) -- several test modules replay the same runs."""
    res = run_backend(backend, name, seed, with_plan=with_plan)
    injected = 0 if res.faults is None else res.faults.n_injected
    recovered = 0 if res.faults is None else len(res.faults.recoveries)
    return res.decisions, res.digest, res.outcomes, injected, recovered
