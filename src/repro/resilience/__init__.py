"""Adaptive resilience: retry pacing and accrual failure detection.

PRs 1-9 hard-code every robustness time constant: acked writes re-send
immediately with a fixed bounded count, and membership suspicion is one
shared poll deadline.  Those constants are sized for a single dropped
flag; under *sustained* fault regimes (flapping links, repeated
crashes, congestion storms) they either hammer a congested mesh with
synchronized retries or false-evict healthy members.  This package
makes the time constants adaptive:

- :class:`RetryPolicy` -- one declarative pacing policy (immediate /
  exponential backoff with seeded jitter / budget-capped) threaded
  through every bounded-retry site of :mod:`repro.rcce` and
  :mod:`repro.member`.  Deterministic: delays come from a per
  ``(rank, site)`` seeded stream, never from wall clock, so faulted
  runs stay byte-identical and the default (no policy) paths are
  bit-identical to the pre-policy traces.
- :class:`PhiAccrualDetector` -- a phi-accrual failure detector
  [Hayashibara 04] adapted to the round-solicited heartbeats of
  :class:`repro.member.heartbeat.MembershipService`: per-member
  response-delay history, a suspicion level phi from the empirical
  distribution, and a threshold trading detection time against false
  positives.
- :class:`OverloadError` -- the structured REFUSE signal of the
  service's graceful degradation: when a message's retry budget is
  exhausted the service refuses deterministically instead of
  re-attempting unboundedly.
"""

from .detector import DetectorConfig, PhiAccrualDetector
from .policy import (
    IMMEDIATE,
    OverloadError,
    RetryPolicy,
    plan_delays,
)

__all__ = [
    "DetectorConfig",
    "IMMEDIATE",
    "OverloadError",
    "PhiAccrualDetector",
    "RetryPolicy",
    "plan_delays",
]
