"""Phi-accrual failure detector for round-solicited heartbeats.

The classic phi-accrual detector [Hayashibara et al. 2004] watches a
*periodic* heartbeat stream and asks: given the empirical distribution
of inter-arrival times, how implausible is the current silence?  The
suspicion level is

    phi(t) = -log10( P_later(t) )

where ``P_later(t)`` is the probability that a heartbeat arrives later
than ``t`` under the fitted distribution (here: normal tail, the
common practical choice).  phi == 1 means ~10% chance the member is
alive and merely slow, phi == 3 means ~0.1%, and so on; a threshold on
phi trades detection time against false positives.

The SCC membership protocol does not have periodic heartbeats: the
coordinator *solicits* one heartbeat per recovery round
(:meth:`repro.member.heartbeat.MembershipService.collect`).  The
quantity with a stable distribution is therefore the per-round
*response delay* -- heartbeat arrival time minus collect start -- and
that is what this detector models per member.  Observed delays absorb
mesh congestion, flag-retry backoff, and scheduling jitter, so the
suspicion timeout self-tunes: a congested mesh widens the window; a
quiet mesh tightens it toward the floor.

Determinism: the detector is pure state over observed virtual-clock
delays -- no wall clock, no RNG -- so identical runs produce identical
phi values and timeouts on both transport backends.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Tuple

__all__ = ["DetectorConfig", "PhiAccrualDetector"]

# Probability floor: avoids -log10(0) when the silence is far out in
# the fitted tail.  Corresponds to phi = 300.
_MIN_P = 1e-300


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning for :class:`PhiAccrualDetector`.

    ``threshold``
        Suspicion level phi at which a member is declared suspect.
        8.0 (p ~ 1e-8) is conservative; lower detects faster but
        false-positives more under jitter.
    ``window``
        Number of most-recent response-delay samples kept per member.
    ``min_std``
        Lower bound on the fitted standard deviation (us).  Guards
        against a degenerate distribution when observed delays are
        near-constant (the deterministic SCC backend produces exactly
        repeating delays).
    ``min_samples``
        Below this many samples the detector abstains and the caller
        falls back to the configured fixed deadline.
    ``floor`` / ``cap``
        Clamp on the adaptive timeout (us).  The floor keeps a quiet
        mesh from tightening into false positives; the cap bounds
        detection time no matter how congested the history looks
        (0.0 = uncapped).
    """

    threshold: float = 8.0
    window: int = 32
    min_std: float = 25.0
    min_samples: int = 3
    floor: float = 500.0
    cap: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError("phi threshold must be > 0")
        if self.window < 2:
            raise ValueError("window must hold at least 2 samples")
        if self.min_std <= 0.0:
            raise ValueError("min_std must be > 0")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if self.floor < 0.0:
            raise ValueError("floor must be >= 0")
        if self.cap < 0.0:
            raise ValueError("cap must be >= 0")
        if self.cap and self.cap < self.floor:
            raise ValueError("cap must be >= floor when set")


class PhiAccrualDetector:
    """Per-member suspicion accrual over heartbeat response delays.

    One instance belongs to one observing rank (the recovery-round
    coordinator); state is keyed by observed member id.
    """

    def __init__(self, config: DetectorConfig | None = None):
        self.config = config or DetectorConfig()
        self._samples: Dict[int, Deque[float]] = {}
        self.observations = 0

    # -- recording ---------------------------------------------------

    def observe(self, member: int, delay: float) -> None:
        """Record one response delay (us) for ``member``."""
        if delay < 0.0:
            raise ValueError("response delay must be >= 0")
        dq = self._samples.get(member)
        if dq is None:
            dq = self._samples[member] = deque(maxlen=self.config.window)
        dq.append(delay)
        self.observations += 1

    def samples(self, member: int) -> Tuple[float, ...]:
        return tuple(self._samples.get(member, ()))

    def forget(self, member: int) -> None:
        """Drop history for an evicted member (slot ids get reused)."""
        self._samples.pop(member, None)

    # -- the fitted distribution ------------------------------------

    def _fit(self, member: int) -> Tuple[float, float] | None:
        """(mean, std) of the member's delay history, or None if the
        history is too short for the detector to have an opinion."""
        dq = self._samples.get(member)
        if dq is None or len(dq) < self.config.min_samples:
            return None
        n = len(dq)
        mean = sum(dq) / n
        var = sum((x - mean) ** 2 for x in dq) / n
        std = max(math.sqrt(var), self.config.min_std)
        return mean, std

    def phi(self, member: int, silence: float) -> float | None:
        """Suspicion level after ``silence`` us without a response.

        Returns ``None`` while the member's history is shorter than
        ``min_samples`` (caller should fall back to its fixed
        deadline).  Monotonically non-decreasing in ``silence``.
        """
        fit = self._fit(member)
        if fit is None:
            return None
        mean, std = fit
        # Normal upper-tail probability that a response arrives later
        # than `silence`.
        z = (silence - mean) / (std * math.sqrt(2.0))
        p = max(0.5 * math.erfc(z), _MIN_P)
        return -math.log10(p)

    def timeout(self, member: int, fallback: float) -> float:
        """Silence duration at which phi crosses the threshold.

        This is the adaptive replacement for the fixed suspicion
        deadline: wait this long for ``member`` before suspecting it.
        Falls back to ``fallback`` (the configured fixed deadline)
        while history is insufficient; the result is clamped to
        ``[floor, cap]``.

        stdlib has no inverse erfc, so the crossing is solved by
        bisection on the (monotone) phi curve -- a few dozen
        iterations on floats, negligible next to a simulated RMA
        round-trip.
        """
        cfg = self.config
        fit = self._fit(member)
        if fit is None:
            t = fallback
        else:
            mean, std = fit
            lo = mean
            hi = mean + 40.0 * std  # phi(hi) >> any practical threshold
            phi_hi = self.phi(member, hi)
            if phi_hi is not None and phi_hi < cfg.threshold:
                t = hi
            else:
                for _ in range(80):
                    mid = 0.5 * (lo + hi)
                    p = self.phi(member, mid)
                    if p is None or p < cfg.threshold:
                        lo = mid
                    else:
                        hi = mid
                t = hi
        t = max(t, cfg.floor)
        if cfg.cap > 0.0:
            t = min(t, cfg.cap)
        return t
