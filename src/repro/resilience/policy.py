"""Unified retry pacing policies for bounded-retry sites.

Every acked/verified operation in the stack (flag, slot, and vote
writes in :mod:`repro.rcce.flags`, verified put/get in
:mod:`repro.rcce.onesided`, heartbeat reports and view installs in
:mod:`repro.member`, election claim re-casts, RBC vote re-casts)
retries a bounded number of times.  Before this module each site
hard-coded *immediate* re-send: correct for a single dropped flag, but
under sustained congestion every rank re-hammers the mesh in lockstep.

:class:`RetryPolicy` makes the pacing declarative.  A policy is an
immutable schedule description; :meth:`RetryPolicy.delays` expands it
into the concrete tuple of pauses (microseconds) inserted *before*
each re-send at one call site.  Determinism contract:

- no wall clock, no global RNG -- jitter comes from a
  ``random.Random`` seeded from ``(policy.seed, rank, site)``, so the
  same run replays the same delays and two sites on the same rank get
  independent streams;
- ``policy=None`` at a call site means "no policy": the site executes
  the exact pre-policy code path (immediate re-sends, no extra
  simulator events), keeping default traces bit-identical;
- a zero delay inserts *no* simulator event at all -- only strictly
  positive pauses are yielded by the call sites -- so
  ``RetryPolicy.immediate()`` is also trace-identical to ``None``
  apart from the site honouring its ``max_retries``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Optional, Tuple

__all__ = ["IMMEDIATE", "OverloadError", "RetryPolicy", "plan_delays"]


class OverloadError(RuntimeError):
    """Deterministic REFUSE: a message's retry budget is exhausted.

    Raised by :class:`repro.member.service.OcBcastService` when the
    per-message recovery budget (``MembershipConfig.retry_budget``) is
    spent.  Carries structured fields so campaigns and chaos runners
    can classify the refusal without parsing the message text.
    """

    def __init__(self, *, msg_id: int, rank: int, epoch: int, spent: int, budget: int):
        self.msg_id = msg_id
        self.rank = rank
        self.epoch = epoch
        self.spent = spent
        self.budget = budget
        super().__init__(
            f"msg {msg_id} refused at rank {rank} (epoch {epoch}): "
            f"retry budget exhausted ({spent}/{budget} recovery rounds)"
        )


def _stream_seed(seed: int, rank: int, site: str) -> int:
    """Mix (seed, rank, site) into one deterministic stream seed."""
    return (seed * 0x9E3779B1 + zlib.crc32(f"{rank}:{site}".encode())) & 0xFFFFFFFF


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative pacing for one bounded-retry site.

    ``max_retries``
        Re-send attempts after the first send (mirrors the legacy
        ``max_retries`` arguments).
    ``base``
        Pause before the first re-send, in microseconds.  ``0.0``
        means immediate re-send (no pause events at all).
    ``factor``
        Multiplier applied per subsequent re-send (exponential
        backoff when > 1).
    ``cap``
        Upper bound on any single pause; ``0.0`` = uncapped.
    ``jitter``
        Fraction of each pause drawn uniformly from
        ``[-jitter, +jitter]`` relative to the nominal value, from the
        per-(rank, site) seeded stream.  Desynchronizes ranks that
        would otherwise re-send in lockstep.
    ``budget``
        Total pause time allowed across the schedule, in
        microseconds; ``0.0`` = unlimited.  A budget truncates the
        schedule: re-sends whose cumulative pause would exceed the
        budget are dropped, so the site fails (or refuses) earlier
        rather than stalling arbitrarily long.
    ``seed``
        Mixed with ``(rank, site)`` to seed the jitter stream.
    """

    max_retries: int = 3
    base: float = 0.0
    factor: float = 2.0
    cap: float = 0.0
    jitter: float = 0.0
    budget: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base < 0.0:
            raise ValueError("base pause must be >= 0")
        if self.factor <= 0.0:
            raise ValueError("backoff factor must be > 0")
        if self.cap < 0.0:
            raise ValueError("cap must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.budget < 0.0:
            raise ValueError("budget must be >= 0")

    @classmethod
    def immediate(cls, max_retries: int = 3) -> "RetryPolicy":
        """Legacy behaviour: bounded immediate re-sends, no pauses."""
        return cls(max_retries=max_retries)

    @classmethod
    def backoff(
        cls,
        max_retries: int = 3,
        base: float = 50.0,
        factor: float = 2.0,
        cap: float = 0.0,
        jitter: float = 0.1,
        budget: float = 0.0,
        seed: int = 0,
    ) -> "RetryPolicy":
        """Exponential backoff with seeded jitter."""
        return cls(
            max_retries=max_retries,
            base=base,
            factor=factor,
            cap=cap,
            jitter=jitter,
            budget=budget,
            seed=seed,
        )

    def _nominal(self, attempt: int) -> float:
        """Jitter-free pause before re-send number ``attempt`` (1-based)."""
        if self.base <= 0.0:
            return 0.0
        d = self.base * (self.factor ** (attempt - 1))
        if self.cap > 0.0:
            d = min(d, self.cap)
        return d

    def delays(self, rank: int, site: str) -> Tuple[float, ...]:
        """Concrete pause schedule for one call site.

        Returns one pause (us, possibly 0.0) per allowed re-send, in
        order.  The length is at most ``max_retries``; a budget may
        truncate it.  Deterministic in ``(self, rank, site)``.
        """
        if self.max_retries == 0:
            return ()
        rng = Random(_stream_seed(self.seed, rank, site)) if self.jitter > 0.0 else None
        out = []
        spent = 0.0
        for attempt in range(1, self.max_retries + 1):
            d = self._nominal(attempt)
            if rng is not None and d > 0.0:
                d *= 1.0 + rng.uniform(-self.jitter, self.jitter)
            if self.budget > 0.0 and spent + d > self.budget:
                break
            spent += d
            out.append(d)
        return tuple(out)

    def max_total_pause(self) -> float:
        """Worst-case cumulative pause across the schedule (any rank/site).

        Used by config coherence checks (e.g. the membership suspicion
        window must exceed one heartbeat period plus this bound plus
        the per-attempt operation cost).
        """
        total = 0.0
        for attempt in range(1, self.max_retries + 1):
            d = self._nominal(attempt) * (1.0 + self.jitter)
            if self.budget > 0.0 and total + d > self.budget:
                break
            total += d
        return total


IMMEDIATE = RetryPolicy.immediate()


def plan_delays(
    policy: Optional[RetryPolicy],
    rank: int,
    site: str,
    default_retries: int,
) -> Tuple[float, ...]:
    """Expand an optional policy at a call site.

    ``None`` reproduces the legacy contract: ``default_retries``
    immediate re-sends (all-zero pauses), so sites that thread a
    ``policy=None`` default stay bit-identical to their pre-policy
    behaviour.
    """
    if policy is None:
        return (0.0,) * default_retries
    return policy.delays(rank, site)
