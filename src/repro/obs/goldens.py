"""Canonical trace serialization and digests for golden-trace fixtures.

A golden trace pins the *entire* event-level behaviour of a scenario to
one sha256 digest: any engine or protocol change that moves, retimes,
reorders, adds or drops a single trace record changes the digest and
fails ``tests/test_golden_traces.py`` loudly.  That is the point -- an
intentional behaviour change must re-record the goldens (see the test
module for how), an unintentional one is caught.

The serialization is canonical and version-stable:

- one line per record: ``repr(time)<TAB>source<TAB>kind<TAB>details``;
- ``repr`` of the float time preserves full precision (bit-identity,
  not round-tripped through a format width);
- details are ``key=repr(value)`` pairs sorted by key, so dict insertion
  order (an implementation detail of the emitting site) cannot leak in.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..sim.trace import TraceRecord


def canonical_trace(records: Iterable[TraceRecord]) -> bytes:
    """The canonical byte serialization of a record stream."""
    lines = []
    for rec in records:
        detail = ",".join(
            f"{k}={v!r}" for k, v in sorted(rec.detail.items())
        )
        lines.append(f"{rec.time!r}\t{rec.source}\t{rec.kind}\t{detail}")
    return ("\n".join(lines) + "\n").encode()


def trace_digest(records: Iterable[TraceRecord]) -> str:
    """sha256 hex digest of :func:`canonical_trace`."""
    return hashlib.sha256(canonical_trace(records)).hexdigest()
