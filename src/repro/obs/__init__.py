"""Observability: metrics, Chrome-trace export, online invariant checking.

The layer every future perf PR profiles with and every protocol PR is
checked against:

- :class:`MetricsRegistry` -- counters/gauges/histograms.  Protocol code
  feeds counters behind a single ``chip.metrics is not None`` branch;
  everything structural (port/link occupancy, queue depths, per-core
  busy/idle/poll time, engine event counts) is harvested *passively*
  from existing statistics by :func:`collect_chip_metrics` after a run,
  so enabling metrics never schedules an event and virtual-time results
  stay bit-identical (asserted by ``tests/test_observability.py``).
- :func:`to_chrome_trace` / :func:`write_chrome_trace` -- render
  :class:`repro.sim.TraceRecord` streams as Chrome trace-event JSON
  (loads in Perfetto / ``chrome://tracing``) with one track per core.
- :class:`InvariantChecker` -- subscribes to a :class:`repro.sim.Tracer`
  and asserts OC-Bcast protocol invariants online (notify-before-fetch,
  per-writer flag FIFO, no buffer-slot reuse before ack, no lost writes
  in lossless runs), raising :class:`InvariantViolation` with the
  offending record window.
- :func:`canonical_trace` / :func:`trace_digest` -- stable trace
  serialization for the golden-trace regression fixtures.

See docs/OBSERVABILITY.md for the metric catalogue and workflows.
"""

from .chrometrace import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .goldens import canonical_trace, trace_digest
from .invariants import InvariantChecker, InvariantViolation
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_chip_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRegistry",
    "canonical_trace",
    "collect_chip_metrics",
    "to_chrome_trace",
    "trace_digest",
    "validate_chrome_trace",
    "write_chrome_trace",
]
