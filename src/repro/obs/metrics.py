"""Counters, gauges and histograms + passive chip harvesting.

Two feeding modes, chosen for zero schedule perturbation:

- *Hot-path counters*: protocol layers (``rcce.flags``, ``rcce.onesided``,
  ``core.ocbcast``) bump registry counters behind one
  ``chip.metrics is not None`` branch.  Counter bumps are plain float
  adds -- they cannot create, reorder or retime simulation events.
- *Passive harvest*: :func:`collect_chip_metrics` reads the statistics
  the models already keep (``Resource`` port/link counters,
  ``CoreStats`` accruals, the kernel's sequence counter) after a run.
  This is where per-link occupancy, MPB queue depths and per-core
  busy/idle/poll breakdowns come from, at zero per-event cost.

The only in-run structure a registry attaches is a shared wait
:class:`Histogram` on each MPB port / mesh link (``SccChip.__init__``),
observed at grant time -- one ``is not None`` branch per grant, no
events.
"""

from __future__ import annotations

import bisect
import json
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.chip import SccChip

#: Default histogram bucket upper bounds (microseconds of virtual time);
#: geometric, spanning sub-cycle waits to pathological stalls.
DEFAULT_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time sampled value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper edges; one overflow bucket is added.
    ``observe_zeros`` batches the n zero-wait grants of a coalesced
    resource run in O(1) (see ``Resource``/``_CoalescedRun``).
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, x)] += 1
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def observe_zeros(self, n: int) -> None:
        if n <= 0:
            return
        self.buckets[bisect.bisect_left(self.bounds, 0.0)] += n
        self.count += n
        if self.min > 0.0:
            self.min = 0.0
        if self.max < 0.0:
            self.max = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4g}>"


class MetricsRegistry:
    """Get-or-create home of every metric of one run."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    # -- conveniences ------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        """Hot-path counter bump (the one-liner protocol code calls)."""
        self.counter(name).inc(n)

    def set(self, name: str, v: float) -> None:
        self.gauge(name).set(v)

    # -- export ------------------------------------------------------------

    def flat(self) -> dict[str, float]:
        """Every metric as a flat name -> value mapping, sorted by name.

        Histograms contribute ``<name>.count/.sum/.mean/.min/.max`` plus
        one ``<name>.le_<bound>`` entry per bucket.
        """
        out: dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, g in self.gauges.items():
            out[name] = g.value
        for name, h in self.histograms.items():
            for stat, v in h.summary().items():
                out[f"{name}.{stat}"] = v
            for bound, n in zip(h.bounds, h.buckets):
                out[f"{name}.le_{bound:g}"] = float(n)
            out[f"{name}.le_inf"] = float(h.buckets[-1])
        return dict(sorted(out.items()))

    def as_dict(self) -> dict[str, dict]:
        """Structured export: one section per metric family."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    **h.summary(),
                    "bounds": list(h.bounds),
                    "buckets": list(h.buckets),
                }
                for n, h in sorted(self.histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """``metric,value`` rows (header included) from :meth:`flat`."""
        lines = ["metric,value"]
        lines += [f"{k},{v:.6g}" for k, v in self.flat().items()]
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


def _harvest_resources(
    registry: MetricsRegistry,
    prefix: str,
    named: Iterable[tuple[str, object]],
    *,
    per_entity: bool,
) -> None:
    """Fold Resource.stats() of a group into aggregate (+ optional
    per-entity) gauges."""
    agg: dict[str, float] = {}
    maxed = ("utilisation", "max_queue", "mean_queue_depth")
    for label, res in named:
        stats = res.stats()  # type: ignore[attr-defined]
        for key, v in stats.items():
            if key in maxed:
                agg[key] = max(agg.get(key, 0.0), v)
            else:
                agg[key] = agg.get(key, 0.0) + v
        if per_entity:
            registry.set(f"{prefix}.{label}.busy_time", stats["busy_time"])
            registry.set(f"{prefix}.{label}.wait_time", stats["wait_time"])
            registry.set(f"{prefix}.{label}.utilisation", stats["utilisation"])
            registry.set(f"{prefix}.{label}.max_queue", stats["max_queue"])
    for key, v in agg.items():
        suffix = "max" if key in maxed else "total"
        registry.set(f"{prefix}.{key}.{suffix}", v)


def collect_chip_metrics(
    chip: "SccChip",
    registry: MetricsRegistry | None = None,
    *,
    per_entity: bool = True,
) -> MetricsRegistry:
    """Harvest a chip's accumulated statistics into a registry.

    Reads only -- safe at any point, typically after ``run_spmd``.  Uses
    the chip's attached registry when one exists (so hot-path counters
    and harvested gauges land together); pass ``registry`` to override.
    ``per_entity=False`` keeps only chip-wide aggregates (compact CSVs
    for big sweeps).
    """
    reg = registry if registry is not None else chip.metrics
    if reg is None:
        reg = MetricsRegistry()

    for key, v in chip.sim.stats().items():
        reg.set(f"sim.{key}", v)
    reg.set("trace.records", float(len(chip.tracer.records)))

    _harvest_resources(
        reg, "mpb.port",
        ((str(mpb.owner), mpb.port) for mpb in chip.mpbs),
        per_entity=per_entity,
    )
    link_items = chip.mesh.link_items()
    if link_items:
        _harvest_resources(
            reg, "mesh.link",
            ((f"{src}-{dst}".replace(" ", ""), res)
             for (src, dst), res in link_items),
            per_entity=per_entity,
        )

    now = chip.sim.now
    totals = {"compute_time": 0.0, "mpb_time": 0.0, "mem_time": 0.0,
              "poll_time": 0.0, "mpb_lines": 0.0, "mem_lines": 0.0,
              "polls": 0.0}
    for core in chip.cores:
        s = core.stats
        busy = s.compute_time + s.mpb_time + s.mem_time
        for key in totals:
            totals[key] += getattr(s, key)
        if per_entity:
            reg.set(f"core.{core.id}.compute_time", s.compute_time)
            reg.set(f"core.{core.id}.mpb_time", s.mpb_time)
            reg.set(f"core.{core.id}.mem_time", s.mem_time)
            reg.set(f"core.{core.id}.poll_time", s.poll_time)
            reg.set(f"core.{core.id}.idle_time", max(0.0, now - busy))
    for key, v in totals.items():
        reg.set(f"core.{key}.total", v)
    busy_total = (totals["compute_time"] + totals["mpb_time"]
                  + totals["mem_time"])
    reg.set("core.idle_time.total",
            max(0.0, now * len(chip.cores) - busy_total))
    return reg
